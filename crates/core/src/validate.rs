//! Static pipeline validation.
//!
//! Pipelines are data, so they can be checked before execution — the
//! prompt-level analogue of semantic analysis in a query compiler. The
//! validator walks a pipeline against a runtime's registries and reports:
//!
//! - references to unregistered refiners, views, retrievers, or agents,
//! - operators reading prompt keys that no reachable path has created,
//! - MERGE sources that cannot exist yet,
//! - GEN without an LLM configured.
//!
//! Keys created inside CHECK branches are treated optimistically (defined
//! if *either* branch defines them): the validator flags definite
//! mistakes, not conservative may-issues — runtime errors still catch the
//! rest. Keys already present in a caller-provided starting state can be
//! declared via [`Validator::assume_prompt`].

use std::collections::BTreeSet;
use std::fmt;

use crate::ops::{Op, PayloadSpec, PromptRef};
use crate::pipeline::Pipeline;
use crate::runtime::Runtime;

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationIssue {
    /// Which operator (by `describe()` rendering) the issue is on.
    pub op: String,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.op, self.message)
    }
}

/// Pipeline validator over a runtime's registries.
pub struct Validator<'a> {
    runtime: &'a Runtime,
    assumed_prompts: BTreeSet<String>,
}

impl<'a> Validator<'a> {
    /// Validate against `runtime`'s registries.
    #[must_use]
    pub fn new(runtime: &'a Runtime) -> Self {
        Self {
            runtime,
            assumed_prompts: BTreeSet::new(),
        }
    }

    /// Declare a prompt key that exists in the starting state.
    #[must_use]
    pub fn assume_prompt(mut self, key: impl Into<String>) -> Self {
        self.assumed_prompts.insert(key.into());
        self
    }

    /// Run validation; an empty result means the pipeline is statically
    /// sound against this runtime.
    #[must_use]
    pub fn validate(&self, pipeline: &Pipeline) -> Vec<ValidationIssue> {
        let mut issues = Vec::new();
        let mut prompts = self.assumed_prompts.clone();
        self.walk(&pipeline.ops, &mut prompts, &mut issues);
        issues
    }

    fn check_view(&self, op: &Op, name: &str, issues: &mut Vec<ValidationIssue>) {
        if !self.runtime.views().contains(name) {
            issues.push(ValidationIssue {
                op: op.describe(),
                message: format!("view {name:?} is not registered"),
            });
        }
    }

    fn walk(&self, ops: &[Op], prompts: &mut BTreeSet<String>, issues: &mut Vec<ValidationIssue>) {
        for op in ops {
            match op {
                Op::Ret { source, prompt, .. } => {
                    if self
                        .runtime
                        .retriever_sources()
                        .binary_search(source)
                        .is_err()
                    {
                        issues.push(ValidationIssue {
                            op: op.describe(),
                            message: format!("retriever source {source:?} is not registered"),
                        });
                    }
                    if let Some(key) = prompt {
                        if !prompts.contains(key) {
                            issues.push(ValidationIssue {
                                op: op.describe(),
                                message: format!(
                                    "retrieval prompt P[{key:?}] is never created before this RET"
                                ),
                            });
                        }
                    }
                }
                Op::Gen { prompt, .. } => {
                    if self.runtime.llm().is_none() {
                        issues.push(ValidationIssue {
                            op: op.describe(),
                            message: "runtime has no LLM configured".to_string(),
                        });
                    }
                    match prompt {
                        PromptRef::Key(key) => {
                            if !prompts.contains(key) {
                                issues.push(ValidationIssue {
                                    op: op.describe(),
                                    message: format!("P[{key:?}] is never created before this GEN"),
                                });
                            }
                        }
                        PromptRef::View { name, .. } => self.check_view(op, name, issues),
                        PromptRef::Inline(_) | PromptRef::Lowered { .. } => {}
                    }
                }
                Op::Ref {
                    target,
                    action,
                    refiner,
                    args,
                    ..
                } => {
                    if self.runtime.refiner_names().binary_search(refiner).is_err() {
                        issues.push(ValidationIssue {
                            op: op.describe(),
                            message: format!("refiner {refiner:?} is not registered"),
                        });
                    }
                    if refiner == "from_view" {
                        if let Some(name) = args
                            .as_map()
                            .and_then(|m| m.get("view"))
                            .and_then(|v| v.as_str())
                        {
                            self.check_view(op, name, issues);
                        }
                    }
                    let creates = *action == crate::history::RefAction::Create;
                    if !creates && !prompts.contains(target) {
                        issues.push(ValidationIssue {
                            op: op.describe(),
                            message: format!(
                                "P[{target:?}] is refined ({action}) before any CREATE"
                            ),
                        });
                    }
                    prompts.insert(target.clone());
                }
                Op::Check {
                    then_ops, else_ops, ..
                } => {
                    // Optimistic branch semantics: a key defined in either
                    // branch counts as defined afterwards.
                    let mut then_prompts = prompts.clone();
                    self.walk(then_ops, &mut then_prompts, issues);
                    let mut else_prompts = prompts.clone();
                    self.walk(else_ops, &mut else_prompts, issues);
                    prompts.extend(then_prompts);
                    prompts.extend(else_prompts);
                }
                Op::Merge {
                    left, right, into, ..
                } => {
                    for side in [left, right] {
                        if !prompts.contains(side) {
                            issues.push(ValidationIssue {
                                op: op.describe(),
                                message: format!("MERGE source P[{side:?}] is never created"),
                            });
                        }
                    }
                    prompts.insert(into.clone());
                }
                Op::Delegate { agent, payload, .. } => {
                    if self.runtime.agent_names().binary_search(agent).is_err() {
                        issues.push(ValidationIssue {
                            op: op.describe(),
                            message: format!("agent {agent:?} is not registered"),
                        });
                    }
                    if let PayloadSpec::PromptKey(key) = payload {
                        if !prompts.contains(key) {
                            issues.push(ValidationIssue {
                                op: op.describe(),
                                message: format!("payload prompt P[{key:?}] is never created"),
                            });
                        }
                    }
                }
            }
        }
    }
}

impl Runtime {
    /// Statically validate `pipeline` against this runtime's registries.
    /// See [`Validator`] for the checks performed; use [`Validator`]
    /// directly to declare pre-existing prompt keys.
    #[must_use]
    pub fn validate(&self, pipeline: &Pipeline) -> Vec<ValidationIssue> {
        Validator::new(self).validate(pipeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Cond;
    use crate::history::{RefAction, RefinementMode};
    use crate::llm::EchoLlm;
    use crate::ops::MergePolicy;
    use crate::retriever::InMemoryRetriever;
    use crate::value::Value;
    use crate::view::ViewDef;
    use std::sync::Arc;

    fn runtime() -> Runtime {
        let views = crate::view::ViewCatalog::new();
        views.register(ViewDef::new("known_view", "template"));
        Runtime::builder()
            .llm(Arc::new(EchoLlm::default()))
            .retriever(
                "notes",
                Arc::new(InMemoryRetriever::from_texts([("a", "x")])),
            )
            .agent(
                "scorer",
                Arc::new(crate::agent::FnAgent(
                    |p: &Value, _: &crate::context::Context| Ok(p.clone()),
                )),
            )
            .views(views)
            .build()
    }

    #[test]
    fn sound_pipeline_has_no_issues() {
        let rt = runtime();
        let p = Pipeline::builder("ok")
            .ret("notes", "docs", 5)
            .create_from_view("prompt", "known_view", Default::default())
            .gen("answer", "prompt")
            .check(Cond::low_confidence(0.7), |b| b.expand("prompt", "hint"))
            .delegate("scorer", PayloadSpec::PromptKey("prompt".into()), "score")
            .build();
        assert_eq!(rt.validate(&p), vec![]);
    }

    #[test]
    fn catches_use_before_create() {
        let rt = runtime();
        let p = Pipeline::builder("bad")
            .gen("answer", "ghost_prompt")
            .expand("other_ghost", "text")
            .build();
        let issues = rt.validate(&p);
        assert_eq!(issues.len(), 2);
        assert!(issues[0].message.contains("never created"));
        assert!(issues[1].message.contains("before any CREATE"));
    }

    #[test]
    fn catches_unknown_registry_entries() {
        let rt = runtime();
        let p = Pipeline::builder("bad")
            .ret("ghost_source", "docs", 5)
            .create_from_view("p", "ghost_view", Default::default())
            .refine(
                "p",
                RefAction::Update,
                "ghost_refiner",
                Value::Null,
                RefinementMode::Manual,
            )
            .delegate("ghost_agent", PayloadSpec::Lit(Value::Null), "out")
            .build();
        let issues = rt.validate(&p);
        let messages: Vec<&str> = issues.iter().map(|i| i.message.as_str()).collect();
        assert!(messages.iter().any(|m| m.contains("retriever source")));
        assert!(messages.iter().any(|m| m.contains("view \"ghost_view\"")));
        assert!(messages
            .iter()
            .any(|m| m.contains("refiner \"ghost_refiner\"")));
        assert!(messages.iter().any(|m| m.contains("agent \"ghost_agent\"")));
    }

    #[test]
    fn branch_definitions_are_optimistic() {
        let rt = runtime();
        let p = Pipeline::builder("branchy")
            .check_else(
                Cond::Always,
                |b| b.create_text("p", "then text", RefinementMode::Manual),
                |b| b.create_text("p", "else text", RefinementMode::Manual),
            )
            .gen("answer", "p")
            .build();
        assert_eq!(rt.validate(&p), vec![]);
    }

    #[test]
    fn merge_sources_are_checked() {
        let rt = runtime();
        let p = Pipeline::builder("m")
            .create_text("left", "x", RefinementMode::Manual)
            .merge("left", "missing_right", "out", MergePolicy::PreferLeft)
            .gen("a", "out")
            .build();
        let issues = rt.validate(&p);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].message.contains("missing_right"));
    }

    #[test]
    fn assumed_prompts_suppress_false_positives() {
        let rt = runtime();
        let p = Pipeline::builder("pre")
            .gen("answer", "preexisting")
            .build();
        assert_eq!(rt.validate(&p).len(), 1);
        let issues = Validator::new(&rt)
            .assume_prompt("preexisting")
            .validate(&p);
        assert_eq!(issues, vec![]);
    }

    #[test]
    fn gen_without_llm_is_flagged() {
        let rt = Runtime::builder().build();
        let p = Pipeline::builder("no_llm")
            .create_text("p", "x", RefinementMode::Manual)
            .gen("a", "p")
            .build();
        let issues = rt.validate(&p);
        assert!(issues.iter().any(|i| i.message.contains("no LLM")));
    }

    #[test]
    fn issue_display_names_the_operator() {
        let rt = runtime();
        let p = Pipeline::builder("bad").gen("a", "ghost").build();
        let issue = &rt.validate(&p)[0];
        let s = issue.to_string();
        assert!(s.contains("GEN"));
        assert!(s.contains("ghost"));
    }
}
