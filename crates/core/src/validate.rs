//! Static pipeline validation.
//!
//! Pipelines are data, so they can be checked before execution — the
//! prompt-level analogue of semantic analysis in a query compiler. The
//! validator reports:
//!
//! - references to unregistered refiners, views, retrievers, or agents,
//! - operators reading prompt keys that no reachable path has created,
//! - MERGE sources that cannot exist yet,
//! - GEN without an LLM configured.
//!
//! Keys created inside CHECK branches are treated optimistically (defined
//! if *either* branch defines them): the validator flags definite
//! mistakes, not conservative may-issues — runtime errors still catch the
//! rest. Keys already present in a caller-provided starting state can be
//! declared via [`Validator::assume_prompt`].
//!
//! Since the IR-level verifier landed ([`crate::analysis`]), this module
//! is a thin wrapper: the pipeline is lowered and the checks run as
//! dataflow passes over the slot program (where the union join at branch
//! merges *is* the optimistic semantics). Tree-facing callers keep the
//! same API and the same messages in the same program order; IR-facing
//! callers (optimizer plans, serve admission) use
//! [`crate::analysis::Verifier`] directly and additionally get the
//! structural, budget, and affinity lints.

use std::collections::BTreeSet;
use std::fmt;

use crate::analysis::Verifier;
use crate::pipeline::Pipeline;
use crate::runtime::Runtime;

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationIssue {
    /// Which operator (by `describe()` rendering) the issue is on.
    pub op: String,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.op, self.message)
    }
}

/// Pipeline validator over a runtime's registries.
pub struct Validator<'a> {
    runtime: &'a Runtime,
    assumed_prompts: BTreeSet<String>,
}

impl<'a> Validator<'a> {
    /// Validate against `runtime`'s registries.
    #[must_use]
    pub fn new(runtime: &'a Runtime) -> Self {
        Self {
            runtime,
            assumed_prompts: BTreeSet::new(),
        }
    }

    /// Declare a prompt key that exists in the starting state.
    #[must_use]
    pub fn assume_prompt(mut self, key: impl Into<String>) -> Self {
        self.assumed_prompts.insert(key.into());
        self
    }

    /// Run validation; an empty result means the pipeline is statically
    /// sound against this runtime.
    ///
    /// Lowers the pipeline and runs the IR verifier's error-severity
    /// passes; because lowering emits then-branches before else-branches,
    /// slot order is program order and the issues come back in the same
    /// order the old tree walk produced.
    #[must_use]
    pub fn validate(&self, pipeline: &Pipeline) -> Vec<ValidationIssue> {
        let plan = match crate::plan::lower(pipeline) {
            Ok(plan) => plan,
            // Lowering itself fails closed; report its diagnostics the
            // same way instead of panicking in a diagnostics API.
            Err(crate::error::SpearError::InvalidPlan { diagnostics, .. }) => {
                return diagnostics
                    .into_iter()
                    .map(|d| ValidationIssue {
                        op: d.op,
                        message: d.message,
                    })
                    .collect();
            }
            Err(e) => {
                return vec![ValidationIssue {
                    op: String::new(),
                    message: e.to_string(),
                }];
            }
        };
        let mut verifier = Verifier::with_runtime(self.runtime);
        for key in &self.assumed_prompts {
            verifier = verifier.assume_prompt(key.clone());
        }
        verifier
            .verify(&plan)
            .into_iter()
            .filter(crate::analysis::Diagnostic::is_error)
            .map(|d| ValidationIssue {
                op: d.op,
                message: d.message,
            })
            .collect()
    }
}

impl Runtime {
    /// Statically validate `pipeline` against this runtime's registries.
    /// See [`Validator`] for the checks performed; use [`Validator`]
    /// directly to declare pre-existing prompt keys.
    #[must_use]
    pub fn validate(&self, pipeline: &Pipeline) -> Vec<ValidationIssue> {
        Validator::new(self).validate(pipeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Cond;
    use crate::history::{RefAction, RefinementMode};
    use crate::llm::EchoLlm;
    use crate::ops::{MergePolicy, PayloadSpec};
    use crate::retriever::InMemoryRetriever;
    use crate::value::Value;
    use crate::view::ViewDef;
    use std::sync::Arc;

    fn runtime() -> Runtime {
        let views = crate::view::ViewCatalog::new();
        views.register(ViewDef::new("known_view", "template"));
        Runtime::builder()
            .llm(Arc::new(EchoLlm::default()))
            .retriever(
                "notes",
                Arc::new(InMemoryRetriever::from_texts([("a", "x")])),
            )
            .agent(
                "scorer",
                Arc::new(crate::agent::FnAgent(
                    |p: &Value, _: &crate::context::Context| Ok(p.clone()),
                )),
            )
            .views(views)
            .build()
    }

    #[test]
    fn sound_pipeline_has_no_issues() {
        let rt = runtime();
        let p = Pipeline::builder("ok")
            .ret("notes", "docs", 5)
            .create_from_view("prompt", "known_view", Default::default())
            .gen("answer", "prompt")
            .check(Cond::low_confidence(0.7), |b| b.expand("prompt", "hint"))
            .delegate("scorer", PayloadSpec::PromptKey("prompt".into()), "score")
            .build();
        assert_eq!(rt.validate(&p), vec![]);
    }

    #[test]
    fn catches_use_before_create() {
        let rt = runtime();
        let p = Pipeline::builder("bad")
            .gen("answer", "ghost_prompt")
            .expand("other_ghost", "text")
            .build();
        let issues = rt.validate(&p);
        assert_eq!(issues.len(), 2);
        assert!(issues[0].message.contains("never created"));
        assert!(issues[1].message.contains("before any CREATE"));
    }

    #[test]
    fn catches_unknown_registry_entries() {
        let rt = runtime();
        let p = Pipeline::builder("bad")
            .ret("ghost_source", "docs", 5)
            .create_from_view("p", "ghost_view", Default::default())
            .refine(
                "p",
                RefAction::Update,
                "ghost_refiner",
                Value::Null,
                RefinementMode::Manual,
            )
            .delegate("ghost_agent", PayloadSpec::Lit(Value::Null), "out")
            .build();
        let issues = rt.validate(&p);
        let messages: Vec<&str> = issues.iter().map(|i| i.message.as_str()).collect();
        assert!(messages.iter().any(|m| m.contains("retriever source")));
        assert!(messages.iter().any(|m| m.contains("view \"ghost_view\"")));
        assert!(messages
            .iter()
            .any(|m| m.contains("refiner \"ghost_refiner\"")));
        assert!(messages.iter().any(|m| m.contains("agent \"ghost_agent\"")));
    }

    #[test]
    fn branch_definitions_are_optimistic() {
        let rt = runtime();
        let p = Pipeline::builder("branchy")
            .check_else(
                Cond::Always,
                |b| b.create_text("p", "then text", RefinementMode::Manual),
                |b| b.create_text("p", "else text", RefinementMode::Manual),
            )
            .gen("answer", "p")
            .build();
        assert_eq!(rt.validate(&p), vec![]);
    }

    #[test]
    fn merge_sources_are_checked() {
        let rt = runtime();
        let p = Pipeline::builder("m")
            .create_text("left", "x", RefinementMode::Manual)
            .merge("left", "missing_right", "out", MergePolicy::PreferLeft)
            .gen("a", "out")
            .build();
        let issues = rt.validate(&p);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].message.contains("missing_right"));
    }

    #[test]
    fn assumed_prompts_suppress_false_positives() {
        let rt = runtime();
        let p = Pipeline::builder("pre")
            .gen("answer", "preexisting")
            .build();
        assert_eq!(rt.validate(&p).len(), 1);
        let issues = Validator::new(&rt)
            .assume_prompt("preexisting")
            .validate(&p);
        assert_eq!(issues, vec![]);
    }

    #[test]
    fn gen_without_llm_is_flagged() {
        let rt = Runtime::builder().build();
        let p = Pipeline::builder("no_llm")
            .create_text("p", "x", RefinementMode::Manual)
            .gen("a", "p")
            .build();
        let issues = rt.validate(&p);
        assert!(issues.iter().any(|i| i.message.contains("no LLM")));
    }

    #[test]
    fn issue_display_names_the_operator() {
        let rt = runtime();
        let p = Pipeline::builder("bad").gen("a", "ghost").build();
        let issue = &rt.validate(&p)[0];
        let s = issue.to_string();
        assert!(s.contains("GEN"));
        assert!(s.contains("ghost"));
    }
}
