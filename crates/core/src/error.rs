//! Error types for the SPEAR core.

use std::fmt;

/// Convenience alias used throughout `spear-core`.
pub type Result<T> = std::result::Result<T, SpearError>;

/// Errors produced by the prompt algebra and runtime.
#[derive(Debug)]
pub enum SpearError {
    /// A prompt key was not found in P.
    PromptNotFound(String),
    /// A prompt version was not found in an entry's history.
    PromptVersionNotFound {
        /// Prompt key.
        key: String,
        /// Requested version.
        version: u64,
    },
    /// A named view was not found in the catalog.
    ViewNotFound(String),
    /// View instantiation recursed through a cycle.
    ViewCycle(Vec<String>),
    /// A required view parameter was not supplied.
    MissingViewParam {
        /// View name.
        view: String,
        /// Parameter name.
        param: String,
    },
    /// A template referenced a placeholder that could not be resolved.
    UnboundPlaceholder {
        /// The placeholder name, e.g. `drug` for `{{drug}}`.
        placeholder: String,
        /// The template (or its head) for diagnostics.
        template: String,
    },
    /// A template was syntactically malformed (e.g. unclosed `{{`).
    MalformedTemplate(String),
    /// A named refiner was not registered.
    RefinerNotFound(String),
    /// A refiner was invoked with invalid arguments.
    RefinerArgs {
        /// Refiner name.
        refiner: String,
        /// What was wrong.
        reason: String,
    },
    /// A refiner that needs an LLM ran in a runtime without one.
    LlmUnavailable {
        /// Who needed the LLM.
        requested_by: String,
    },
    /// The LLM backend failed.
    Llm(String),
    /// A named retriever was not registered.
    RetrieverNotFound(String),
    /// The retrieval backend failed.
    Retrieval(String),
    /// A named agent was not registered.
    AgentNotFound(String),
    /// A delegated agent failed.
    Agent {
        /// Agent name.
        agent: String,
        /// Failure description.
        reason: String,
    },
    /// A CHECK condition could not be evaluated.
    Condition(String),
    /// MERGE failed (e.g. a source prompt is missing).
    Merge(String),
    /// The executor hit its configured op budget (guards unrolled retries).
    OpBudgetExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// The execution exceeded its token budget (paper §5: "task-specific
    /// constraints (e.g., token budgets or latency thresholds)").
    TokenBudgetExceeded {
        /// The configured limit.
        limit: u64,
        /// Tokens actually consumed when the budget tripped.
        used: u64,
    },
    /// The execution exceeded its latency budget.
    LatencyBudgetExceeded {
        /// The configured limit, µs.
        limit_us: u64,
        /// Accumulated latency when the budget tripped, µs.
        used_us: u64,
    },
    /// Execution was cooperatively cancelled between operators — either an
    /// external [`crate::cancel::CancelToken`] tripped, or the state's
    /// per-request virtual deadline passed (serving-layer timeouts).
    Cancelled {
        /// Why the execution was cancelled (e.g. `"deadline"`).
        reason: String,
        /// Accumulated virtual latency (µs) when the cancellation was
        /// observed.
        after_us: u64,
    },
    /// Replay input was inconsistent with the recorded history.
    Replay(String),
    /// A persisted trace (JSON Lines) failed to parse.
    TraceParse {
        /// 1-based line number within the JSONL input.
        line: usize,
        /// Parser diagnostic.
        reason: String,
    },
    /// Error from the KV substrate.
    Kv(spear_kv::KvError),
    /// Catch-all for invalid pipeline construction.
    InvalidPipeline(String),
    /// A lowered plan failed static verification (see [`crate::analysis`]).
    /// Carries the verifier's diagnostics so callers can render them.
    InvalidPlan {
        /// Name of the rejected plan.
        plan: String,
        /// The diagnostics that caused the rejection (at least one of them
        /// is an error).
        diagnostics: Vec<crate::analysis::Diagnostic>,
    },
    /// A batch worker thread panicked; the jobs it was assigned report
    /// this instead of poisoning the whole batch.
    WorkerPanicked {
        /// The worker lane that panicked.
        lane: usize,
    },
    /// An internal invariant was violated (a bug in this crate, not in the
    /// caller's pipeline).
    Internal(String),
}

impl fmt::Display for SpearError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpearError::PromptNotFound(k) => write!(f, "prompt not found in P: {k:?}"),
            SpearError::PromptVersionNotFound { key, version } => {
                write!(f, "version {version} of prompt {key:?} not found")
            }
            SpearError::ViewNotFound(v) => write!(f, "view not found: {v:?}"),
            SpearError::ViewCycle(path) => {
                write!(f, "view composition cycle: {}", path.join(" -> "))
            }
            SpearError::MissingViewParam { view, param } => {
                write!(f, "view {view:?} requires parameter {param:?}")
            }
            SpearError::UnboundPlaceholder {
                placeholder,
                template,
            } => write!(
                f,
                "unbound placeholder {{{{{placeholder}}}}} in template {template:?}"
            ),
            SpearError::MalformedTemplate(t) => write!(f, "malformed template: {t:?}"),
            SpearError::RefinerNotFound(r) => write!(f, "refiner not found: {r:?}"),
            SpearError::RefinerArgs { refiner, reason } => {
                write!(f, "invalid arguments for refiner {refiner:?}: {reason}")
            }
            SpearError::LlmUnavailable { requested_by } => {
                write!(f, "no LLM client configured (needed by {requested_by})")
            }
            SpearError::Llm(e) => write!(f, "llm error: {e}"),
            SpearError::RetrieverNotFound(r) => write!(f, "retriever not found: {r:?}"),
            SpearError::Retrieval(e) => write!(f, "retrieval error: {e}"),
            SpearError::AgentNotFound(a) => write!(f, "agent not found: {a:?}"),
            SpearError::Agent { agent, reason } => {
                write!(f, "agent {agent:?} failed: {reason}")
            }
            SpearError::Condition(e) => write!(f, "condition error: {e}"),
            SpearError::Merge(e) => write!(f, "merge error: {e}"),
            SpearError::OpBudgetExceeded { limit } => {
                write!(f, "operator budget exceeded (limit {limit})")
            }
            SpearError::TokenBudgetExceeded { limit, used } => {
                write!(f, "token budget exceeded: used {used} of {limit}")
            }
            SpearError::LatencyBudgetExceeded { limit_us, used_us } => write!(
                f,
                "latency budget exceeded: used {:.1} ms of {:.1} ms",
                *used_us as f64 / 1e3,
                *limit_us as f64 / 1e3
            ),
            SpearError::Cancelled { reason, after_us } => write!(
                f,
                "execution cancelled ({reason}) after {:.1} ms of virtual time",
                *after_us as f64 / 1e3
            ),
            SpearError::Replay(e) => write!(f, "replay error: {e}"),
            SpearError::TraceParse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
            SpearError::Kv(e) => write!(f, "kv substrate error: {e}"),
            SpearError::InvalidPipeline(e) => write!(f, "invalid pipeline: {e}"),
            SpearError::InvalidPlan { plan, diagnostics } => {
                let errors = diagnostics
                    .iter()
                    .filter(|d| d.severity == crate::analysis::Severity::Error)
                    .count();
                write!(f, "invalid plan {plan:?}: {errors} error(s)")?;
                if let Some(first) = diagnostics.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            SpearError::WorkerPanicked { lane } => {
                write!(f, "batch worker on lane {lane} panicked")
            }
            SpearError::Internal(e) => write!(f, "internal error: {e}"),
        }
    }
}

impl std::error::Error for SpearError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpearError::Kv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<spear_kv::KvError> for SpearError {
    fn from(e: spear_kv::KvError) -> Self {
        SpearError::Kv(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_details() {
        let e = SpearError::UnboundPlaceholder {
            placeholder: "drug".into(),
            template: "Summarize {{drug}}".into(),
        };
        assert!(e.to_string().contains("{{drug}}"));

        let e = SpearError::ViewCycle(vec!["a".into(), "b".into(), "a".into()]);
        assert!(e.to_string().contains("a -> b -> a"));
    }

    #[test]
    fn kv_error_is_wrapped_with_source() {
        use std::error::Error;
        let e = SpearError::from(spear_kv::KvError::KeyNotFound("k".into()));
        assert!(e.source().is_some());
    }
}
