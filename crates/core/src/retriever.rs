//! The retrieval boundary used by RET.
//!
//! RET "retrieves raw input or supporting data (e.g., from documents,
//! databases, or APIs) and places it into C" (paper §3.3), and supports both
//! structured retrieval (filters) and **prompt-based retrieval**, "where the
//! retrieval intent is expressed as a natural language prompt" that can be
//! refined with REF just like generation prompts. `spear-core` defines the
//! interface plus a small in-memory implementation; `spear-retrieval`
//! provides the BM25 engine.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::error::{Result, SpearError};
use crate::value::Value;

/// How RET expresses what to fetch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum RetrievalQuery {
    /// Everything in the source (bounded by the request limit).
    #[default]
    All,
    /// Structured retrieval: field filters such as source, time window, or
    /// patient id. Semantics of each filter key are retriever-defined.
    Structured(BTreeMap<String, Value>),
    /// Prompt-based retrieval: natural-language intent, rendered from a
    /// (refinable) prompt entry in P.
    Prompt(String),
}

/// One retrieved item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievedDoc {
    /// Source-local document id.
    pub id: String,
    /// Document text.
    pub text: String,
    /// Relevance score (higher is better; 0 for unranked retrieval).
    pub score: f64,
    /// Structured fields (tags, timestamps, note type, …).
    pub fields: BTreeMap<String, Value>,
}

impl RetrievedDoc {
    /// Convert to a context [`Value`] (a map).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("id".to_string(), Value::from(self.id.clone()));
        m.insert("text".to_string(), Value::from(self.text.clone()));
        m.insert("score".to_string(), Value::from(self.score));
        m.insert("fields".to_string(), Value::Map(self.fields.clone()));
        Value::Map(m)
    }
}

/// A retrieval request dispatched by the RET operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievalRequest {
    /// Logical source name (e.g. `"initial_notes"`, `"order_lookup"`).
    pub source: String,
    /// The query.
    pub query: RetrievalQuery,
    /// Maximum number of documents to return.
    pub limit: usize,
}

/// A retrieval backend.
pub trait Retriever: Send + Sync {
    /// Execute a retrieval.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError::Retrieval`] on backend failure.
    fn retrieve(&self, request: &RetrievalRequest) -> Result<Vec<RetrievedDoc>>;
}

/// Named registry of retrievers; RET resolves `source` names here.
#[derive(Clone, Default)]
pub struct RetrieverRegistry {
    inner: Arc<RwLock<BTreeMap<String, Arc<dyn Retriever>>>>,
}

impl RetrieverRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `retriever` under `source` (replacing any previous one).
    pub fn register(&self, source: impl Into<String>, retriever: Arc<dyn Retriever>) {
        self.inner.write().insert(source.into(), retriever);
    }

    /// Resolve a source name.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError::RetrieverNotFound`] when absent.
    pub fn resolve(&self, source: &str) -> Result<Arc<dyn Retriever>> {
        self.inner
            .read()
            .get(source)
            .cloned()
            .ok_or_else(|| SpearError::RetrieverNotFound(source.to_string()))
    }

    /// Registered source names, sorted.
    #[must_use]
    pub fn sources(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }
}

impl std::fmt::Debug for RetrieverRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetrieverRegistry")
            .field("sources", &self.sources())
            .finish()
    }
}

/// Simple in-memory retriever over a fixed document list.
///
/// - `All` returns documents in insertion order.
/// - `Structured` keeps documents whose `fields` contain every filter key
///   with an equal value.
/// - `Prompt` scores documents by case-insensitive word overlap with the
///   prompt text (a miniature of what `spear-retrieval` does with BM25).
#[derive(Debug, Default)]
pub struct InMemoryRetriever {
    docs: Vec<RetrievedDoc>,
}

impl InMemoryRetriever {
    /// Build from documents.
    #[must_use]
    pub fn new(docs: Vec<RetrievedDoc>) -> Self {
        Self { docs }
    }

    /// Convenience: build from `(id, text)` pairs.
    #[must_use]
    pub fn from_texts<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Self {
        Self {
            docs: pairs
                .into_iter()
                .map(|(id, text)| RetrievedDoc {
                    id: id.to_string(),
                    text: text.to_string(),
                    score: 0.0,
                    fields: BTreeMap::new(),
                })
                .collect(),
        }
    }
}

impl Retriever for InMemoryRetriever {
    fn retrieve(&self, request: &RetrievalRequest) -> Result<Vec<RetrievedDoc>> {
        let mut out: Vec<RetrievedDoc> = match &request.query {
            RetrievalQuery::All => self.docs.clone(),
            RetrievalQuery::Structured(filters) => self
                .docs
                .iter()
                .filter(|d| filters.iter().all(|(k, v)| d.fields.get(k) == Some(v)))
                .cloned()
                .collect(),
            RetrievalQuery::Prompt(prompt) => {
                let query_words: Vec<String> = prompt
                    .split(|c: char| !c.is_alphanumeric())
                    .filter(|w| w.len() > 2)
                    .map(str::to_lowercase)
                    .collect();
                let mut scored: Vec<RetrievedDoc> = self
                    .docs
                    .iter()
                    .map(|d| {
                        let text = d.text.to_lowercase();
                        let score = query_words
                            .iter()
                            .filter(|w| text.contains(w.as_str()))
                            .count() as f64;
                        let mut d = d.clone();
                        d.score = score;
                        d
                    })
                    .filter(|d| d.score > 0.0)
                    .collect();
                scored.sort_by(|a, b| {
                    b.score
                        .partial_cmp(&a.score)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.id.cmp(&b.id))
                });
                scored
            }
        };
        out.truncate(request.limit);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: &str, text: &str, fields: &[(&str, Value)]) -> RetrievedDoc {
        RetrievedDoc {
            id: id.to_string(),
            text: text.to_string(),
            score: 0.0,
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        }
    }

    fn corpus() -> InMemoryRetriever {
        InMemoryRetriever::new(vec![
            doc(
                "n1",
                "Patient started on enoxaparin 40 mg daily for DVT prophylaxis",
                &[("type", Value::from("discharge"))],
            ),
            doc(
                "n2",
                "CT angiogram negative for pulmonary embolism",
                &[("type", Value::from("radiology"))],
            ),
            doc(
                "n3",
                "Enoxaparin held before procedure; resumed after 24 hours",
                &[("type", Value::from("nursing"))],
            ),
        ])
    }

    #[test]
    fn retrieve_all_respects_limit() {
        let r = corpus();
        let req = RetrievalRequest {
            source: "notes".into(),
            query: RetrievalQuery::All,
            limit: 2,
        };
        assert_eq!(r.retrieve(&req).unwrap().len(), 2);
    }

    #[test]
    fn structured_filters_match_fields_exactly() {
        let r = corpus();
        let mut filters = BTreeMap::new();
        filters.insert("type".to_string(), Value::from("radiology"));
        let req = RetrievalRequest {
            source: "notes".into(),
            query: RetrievalQuery::Structured(filters),
            limit: 10,
        };
        let docs = r.retrieve(&req).unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].id, "n2");
    }

    #[test]
    fn prompt_query_ranks_by_overlap() {
        let r = corpus();
        let req = RetrievalRequest {
            source: "notes".into(),
            query: RetrievalQuery::Prompt("enoxaparin dosing".into()),
            limit: 10,
        };
        let docs = r.retrieve(&req).unwrap();
        assert_eq!(docs.len(), 2, "only enoxaparin notes match");
        assert!(docs.iter().all(|d| d.score > 0.0));
        assert!(docs
            .iter()
            .all(|d| d.text.to_lowercase().contains("enoxaparin")));
    }

    #[test]
    fn registry_resolves_and_errors() {
        let reg = RetrieverRegistry::new();
        reg.register("notes", Arc::new(corpus()));
        assert!(reg.resolve("notes").is_ok());
        assert!(matches!(
            reg.resolve("other"),
            Err(SpearError::RetrieverNotFound(_))
        ));
        assert_eq!(reg.sources(), vec!["notes".to_string()]);
    }

    #[test]
    fn doc_to_value_is_structured() {
        let d = doc("n1", "text", &[("type", Value::from("discharge"))]);
        let v = d.to_value();
        assert_eq!(v.path("id").unwrap().as_str(), Some("n1"));
        assert_eq!(v.path("fields.type").unwrap().as_str(), Some("discharge"));
    }
}
