//! Differential testing of the executors: random small pipelines must
//! produce **byte-identical** traces and reports whether they run
//! through the reference tree walk (`Runtime::execute_tree`), the lowered
//! IR interpreter (`Runtime::execute_lowered_interpreted`), the
//! compiled bytecode VM (`Runtime::execute_lowered`), or the *optimized*
//! bytecode VM (`vm::optimize` + `Runtime::execute_program`) — including
//! pipelines
//! that fail mid-run, whose error unwind (one `Error` trace event per
//! enclosing CHECK) both lowered spines replay from their baked-in frames;
//! pipelines aborted mid-run by an operator budget; and pipelines entered
//! with an already-cancelled token. A second property pins batch
//! determinism: running the lowered plan on a [`BatchRunner`] returns the
//! same per-job bytes at 1, 4, and 8 workers. Every compiled program in
//! the corpus must also pass translation validation
//! (`analysis::validate_compile`) against its source plan.

use std::sync::Arc;

use proptest::prelude::*;

use spear_core::prelude::*;

/// A generator-friendly pipeline script; `apply` maps it onto the builder.
/// The grammar deliberately includes sometimes-failing ops (GEN on a
/// possibly-missing key, MERGE with a possibly-undefined source) so error
/// paths are exercised, and nested CHECKs so unwind frames stack.
#[derive(Debug, Clone)]
enum Instr {
    CreateText(u8, String),
    Expand(u8, String),
    Gen(u8, u8),
    GenInline(u8, String),
    Merge(u8, u8, u8),
    Check(Cond, Vec<Instr>, Vec<Instr>),
}

fn key(k: u8) -> String {
    format!("p{k}")
}

fn apply(mut b: PipelineBuilder, instrs: &[Instr]) -> PipelineBuilder {
    for instr in instrs {
        b = match instr {
            Instr::CreateText(k, text) => b.create_text(&key(*k), text, RefinementMode::Manual),
            Instr::Expand(k, text) => b.expand(&key(*k), text),
            Instr::Gen(label, k) => b.gen(&format!("g{label}"), &key(*k)),
            Instr::GenInline(label, text) => b.gen_with(
                &format!("g{label}"),
                PromptRef::Inline(format!("{text} {{{{ctx:tweet}}}}")),
                GenOptions::default(),
            ),
            Instr::Merge(l, r, into) => b.merge(
                &key(*l),
                &key(*r),
                &key(*into),
                MergePolicy::Concat {
                    separator: " / ".into(),
                },
            ),
            Instr::Check(cond, then, els) => {
                if els.is_empty() {
                    b.check(cond.clone(), |b| apply(b, then))
                } else {
                    b.check_else(cond.clone(), |b| apply(b, then), |b| apply(b, els))
                }
            }
        };
    }
    b
}

fn cond_strategy() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Always),
        Just(Cond::Never),
        Just(Cond::low_confidence(0.7)),
        (0u8..4).prop_map(|k| Cond::InContext(format!("g{k}"))),
        (0u8..4).prop_map(|k| Cond::Truthy(Operand::Ctx(format!("g{k}")))),
    ]
}

fn instr_strategy() -> impl Strategy<Value = Instr> {
    let leaf = prop_oneof![
        ((0u8..4), "[a-z ]{1,12}").prop_map(|(k, t)| Instr::CreateText(k, t)),
        ((0u8..4), "[a-z ]{1,8}").prop_map(|(k, t)| Instr::Expand(k, t)),
        ((0u8..4), (0u8..4)).prop_map(|(l, k)| Instr::Gen(l, k)),
        ((0u8..4), "[a-z ]{1,8}").prop_map(|(l, t)| Instr::GenInline(l, t)),
        ((0u8..4), (0u8..4), (0u8..4)).prop_map(|(l, r, i)| Instr::Merge(l, r, i)),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        (
            cond_strategy(),
            proptest::collection::vec(inner.clone(), 0..3),
            proptest::collection::vec(inner, 0..2),
        )
            .prop_map(|(c, t, e)| Instr::Check(c, t, e))
    })
}

fn pipeline(instrs: &[Instr]) -> Pipeline {
    apply(Pipeline::builder("prop"), instrs).build()
}

fn runtime() -> Runtime {
    Runtime::builder().llm(Arc::new(EchoLlm::default())).build()
}

fn runtime_with_budget(max_ops: u64) -> Runtime {
    Runtime::builder()
        .llm(Arc::new(EchoLlm::default()))
        .config(RuntimeConfig {
            max_ops,
            ..RuntimeConfig::default()
        })
        .build()
}

fn seeded_state(tweet: &str) -> ExecState {
    let mut state = ExecState::new();
    state.context.set("tweet", tweet.to_string());
    state.prompts.define(
        "p0",
        "base prompt {{ctx:tweet}}",
        "seed",
        RefinementMode::Manual,
    );
    state
}

/// Everything observable about one execution, rendered to bytes.
fn fingerprint(result: &Result<ExecReport>, state: &ExecState) -> String {
    format!(
        "{result:?}|{}|{}|{}",
        state.trace.to_jsonl().expect("trace serializes"),
        state.step,
        state
            .metadata
            .get("confidence")
            .map(|v| format!("{v:?}"))
            .unwrap_or_default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tree walk, IR interpreter, and bytecode VM agree byte-for-byte on
    /// every random pipeline — reports, traces (success and error
    /// unwinds), and state.
    #[test]
    fn tree_interpreter_and_vm_traces_are_byte_identical(
        instrs in proptest::collection::vec(instr_strategy(), 0..6),
        tweet in "[a-z ]{0,16}",
    ) {
        let p = pipeline(&instrs);
        let lowered = lower(&p).unwrap();
        let rt = runtime();

        let mut tree_state = seeded_state(&tweet);
        let mut int_state = tree_state.deep_clone();
        let mut vm_state = tree_state.deep_clone();
        let mut opt_state = tree_state.deep_clone();
        let tree_result = rt.execute_tree(&p, &mut tree_state);
        let int_result = rt.execute_lowered_interpreted(&lowered, &mut int_state);
        let vm_result = rt.execute_lowered(&lowered, &mut vm_state);

        // Translation validation holds over the whole random corpus, and
        // the verified-optimized program replays the same observable run.
        let program = spear_core::compile(&lowered).expect("builder plans compile");
        if let Err(failures) = spear_core::analysis::validate_compile(&lowered, &program) {
            prop_assert!(false, "TV failed: {:?}, pipeline: {:?}", failures, p);
        }
        let optimized = spear_core::optimize(&program).unwrap_or(program);
        let opt_result = rt.execute_program(&optimized, &mut opt_state);

        let tree = fingerprint(&tree_result, &tree_state);
        prop_assert_eq!(
            &tree,
            &fingerprint(&int_result, &int_state),
            "tree vs interpreter, pipeline: {:?}", p
        );
        prop_assert_eq!(
            &tree,
            &fingerprint(&vm_result, &vm_state),
            "tree vs VM, pipeline: {:?}", p
        );
        prop_assert_eq!(
            &tree,
            &fingerprint(&opt_result, &opt_state),
            "tree vs optimized VM, pipeline: {:?}", p
        );
    }

    /// The three spines also agree when the run is cut short from outside:
    /// a tight operator budget aborts mid-run (same slot, same unwind
    /// frames), and an already-cancelled token aborts at the first gate.
    #[test]
    fn budget_aborts_and_cancellation_unwind_identically(
        instrs in proptest::collection::vec(instr_strategy(), 1..6),
        tweet in "[a-z ]{0,12}",
        max_ops in 1u64..6,
        cancelled in any::<bool>(),
    ) {
        let p = pipeline(&instrs);
        let lowered = lower(&p).unwrap();
        let rt = runtime_with_budget(max_ops);

        let mut tree_state = seeded_state(&tweet);
        if cancelled {
            let token = CancelToken::new("admission reset");
            token.cancel();
            tree_state.cancel = Some(token);
        }
        let mut int_state = tree_state.deep_clone();
        let mut vm_state = tree_state.deep_clone();
        let mut opt_state = tree_state.deep_clone();
        let tree_result = rt.execute_tree(&p, &mut tree_state);
        let int_result = rt.execute_lowered_interpreted(&lowered, &mut int_state);
        let vm_result = rt.execute_lowered(&lowered, &mut vm_state);
        let program = spear_core::compile(&lowered).expect("builder plans compile");
        let optimized = spear_core::optimize(&program).unwrap_or(program);
        let opt_result = rt.execute_program(&optimized, &mut opt_state);

        let tree = fingerprint(&tree_result, &tree_state);
        prop_assert_eq!(
            &tree,
            &fingerprint(&int_result, &int_state),
            "tree vs interpreter, max_ops={}, cancelled={}, pipeline: {:?}",
            max_ops, cancelled, p
        );
        prop_assert_eq!(
            &tree,
            &fingerprint(&vm_result, &vm_state),
            "tree vs VM, max_ops={}, cancelled={}, pipeline: {:?}",
            max_ops, cancelled, p
        );
        prop_assert_eq!(
            &tree,
            &fingerprint(&opt_result, &opt_state),
            "tree vs optimized VM, max_ops={}, cancelled={}, pipeline: {:?}",
            max_ops, cancelled, p
        );
    }

    /// A batch of lowered-plan jobs returns identical per-job bytes under
    /// 1, 4, and 8 workers, and each job matches a solo tree walk.
    #[test]
    fn batch_execution_is_worker_count_invariant(
        instrs in proptest::collection::vec(instr_strategy(), 0..5),
    ) {
        let p = pipeline(&instrs);
        let lowered = Arc::new(lower(&p).unwrap());
        let tweets: Vec<String> = (0..6).map(|i| format!("tweet number {i}")).collect();

        let run = |workers: usize| -> Vec<String> {
            let rt = runtime();
            let states = tweets.iter().map(|t| seeded_state(t)).collect();
            BatchRunner::new(workers)
                .run_lowered(&rt, &lowered, states)
                .into_iter()
                .map(|slot| match slot {
                    Ok(outcome) => fingerprint(&Ok(outcome.report), &outcome.state),
                    Err(e) => format!("err:{e:?}"),
                })
                .collect()
        };
        let solo: Vec<String> = tweets
            .iter()
            .map(|t| {
                let rt = runtime();
                let mut state = seeded_state(t);
                let result = rt.execute_tree(&p, &mut state);
                match result {
                    Ok(report) => fingerprint(&Ok(report), &state),
                    Err(e) => format!("err:{e:?}"),
                }
            })
            .collect();
        // The verified-optimized program is a fourth independent spine:
        // its solo runs must match the batch bytes at every worker count.
        let program = spear_core::compile(&lowered).expect("builder plans compile");
        let optimized = spear_core::optimize(&program).unwrap_or(program);
        let solo_opt: Vec<String> = tweets
            .iter()
            .map(|t| {
                let rt = runtime();
                let mut state = seeded_state(t);
                let result = rt.execute_program(&optimized, &mut state);
                match result {
                    Ok(report) => fingerprint(&Ok(report), &state),
                    Err(e) => format!("err:{e:?}"),
                }
            })
            .collect();

        let one = run(1);
        prop_assert_eq!(&one, &run(4), "worker count 4 changed results");
        prop_assert_eq!(&one, &run(8), "worker count 8 changed results");
        prop_assert_eq!(&one, &solo, "batch diverges from solo tree walk");
        prop_assert_eq!(&one, &solo_opt, "batch diverges from optimized VM");
    }
}
