//! Golden tests for the IR verifier's diagnostics: one hand-built plan per
//! seeded defect class, with the *rendered* diagnostic pinned byte-for-byte.
//! Lint codes are a stable interface — tools and serve-layer clients match
//! on them — so any drift in code, severity, anchoring, or message shows
//! up here as a readable diff.

use spear_core::analysis::{render_diagnostics, Verifier};
use spear_core::condition::Cond;
use spear_core::history::RefinementMode;
use spear_core::llm::GenOptions;
use spear_core::ops::{Op, PromptRef};
use spear_core::pipeline::Pipeline;
use spear_core::plan::{lower, LoweredOp, LoweredPlan};

fn leaf(op: Op) -> LoweredOp {
    LoweredOp::Leaf {
        op,
        trigger: None,
        frames: Vec::new(),
    }
}

fn gen(label: &str, prompt: PromptRef) -> Op {
    Op::Gen {
        label: label.into(),
        prompt,
        options: GenOptions::default(),
    }
}

fn create(target: &str) -> Op {
    Op::Ref {
        target: target.into(),
        action: spear_core::history::RefAction::Create,
        refiner: "set_text".into(),
        args: spear_core::value::Value::from("base"),
        mode: RefinementMode::Manual,
    }
}

fn plan(name: &str, ops: Vec<LoweredOp>) -> LoweredPlan {
    LoweredPlan {
        name: name.into(),
        source_size: ops.len() as u64,
        ops,
    }
}

/// Verify `plan` and return the rendered diagnostics.
fn rendered(verifier: &Verifier<'_>, plan: &LoweredPlan) -> String {
    render_diagnostics(plan, &verifier.verify(plan))
}

#[test]
fn golden_e001_bad_jump_target() {
    let p = plan(
        "bad_jump",
        vec![leaf(create("p")), LoweredOp::Jump { target: 9 }],
    );
    assert_eq!(
        rendered(&Verifier::new(), &p),
        "error[SPEAR-E001] in plan \"bad_jump\": jump target 9 is out of bounds (2 slots)\n\
         \x20 0001  JUMP -> 0009\n"
    );
}

#[test]
fn golden_e002_check_target_escapes() {
    let p = plan(
        "bad_else",
        vec![
            leaf(create("p")),
            LoweredOp::Check {
                cond: Cond::Always,
                on_false: 7,
                frames: Vec::new(),
            },
            leaf(gen("a", PromptRef::key("p"))),
        ],
    );
    assert_eq!(
        rendered(&Verifier::new(), &p),
        "error[SPEAR-E002] in plan \"bad_else\": CHECK else-target 7 escapes the plan (3 slots)\n\
         \x20 0001  CHECK[true] else -> 0007\n"
    );
}

#[test]
fn golden_e003_placeholder_leak() {
    let p = plan("leaked", vec![LoweredOp::Jump { target: usize::MAX }]);
    let diags = Verifier::new().verify(&p);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "SPEAR-E003");
    let text = render_diagnostics(&p, &diags);
    assert!(
        text.starts_with(
            "error[SPEAR-E003] in plan \"leaked\": JUMP at slot 0000 kept the usize::MAX \
             lowering placeholder\n"
        ),
        "{text}"
    );
}

#[test]
fn golden_e004_undefined_prompt_key() {
    let p = lower(&Pipeline::builder("bad").gen("answer", "ghost").build()).expect("lowers");
    assert_eq!(
        rendered(&Verifier::new(), &p),
        "error[SPEAR-E004] in plan \"bad\": P[\"ghost\"] is never created before this GEN\n\
         \x20 0000  GEN[\"answer\"] using P[\"ghost\"]\n"
    );
}

#[test]
fn golden_e005_budget_infeasible_deadline() {
    let p = lower(
        &Pipeline::builder("rushed")
            .create_text("p", "base", RefinementMode::Manual)
            .gen("a", "p")
            .gen("b", "p")
            .build(),
    )
    .expect("lowers");
    // Two unconditional GENs at >= 100 virtual µs each vs a 150 µs deadline.
    assert_eq!(
        rendered(&Verifier::new().deadline_us(150), &p),
        "error[SPEAR-E005] in plan \"rushed\": every path needs at least 200 µs of generation \
         but the deadline is 150 µs\n"
    );
}

#[test]
fn golden_e006_backward_jump() {
    let p = plan(
        "looping",
        vec![leaf(create("p")), LoweredOp::Jump { target: 0 }],
    );
    assert_eq!(
        rendered(&Verifier::new(), &p),
        "error[SPEAR-E006] in plan \"looping\": slot 0001 jumps backwards to 0000; lowered \
         plans must move strictly forward to guarantee termination\n\
         \x20 0001  JUMP -> 0000\n"
    );
}

#[test]
fn golden_w001_unreachable_slot() {
    let p = plan(
        "dead_code",
        vec![
            LoweredOp::Jump { target: 2 },
            leaf(create("orphan")),
            leaf(create("p")),
        ],
    );
    assert_eq!(
        rendered(&Verifier::new(), &p),
        "warning[SPEAR-W001] in plan \"dead_code\": slot 0001 can never be reached from entry\n\
         \x20 0001  REF[CREATE, set_text] on P[\"orphan\"]\n"
    );
}

#[test]
fn golden_w002_affinity_mismatch() {
    let stage = |label: &str, identity: &str| {
        leaf(gen(
            label,
            PromptRef::Lowered {
                text: "generated".into(),
                identity: Some(identity.into()),
            },
        ))
    };
    let p = plan(
        "mixed",
        vec![
            stage("s0", "view:tweets@1/stage0"),
            stage("s1", "view:reviews@2/stage1"),
        ],
    );
    let diags = Verifier::new().verify(&p);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "SPEAR-W002");
    assert_eq!(diags[0].slot, Some(1));
    assert_eq!(
        diags[0].message,
        "fused stage carries affinity base \"view:reviews@2\" but the stage at slot 0000 \
         carries \"view:tweets@1\"; mixed bases defeat cache-affinity routing"
    );
}

#[test]
fn golden_w003_budget_at_risk() {
    let p = lower(
        &Pipeline::builder("risky")
            .create_text("p", "base", RefinementMode::Manual)
            .gen("a", "p")
            .check(Cond::low_confidence(0.5), |b| b.gen("b", "p"))
            .build(),
    )
    .expect("lowers");
    // The retry GEN is conditional: worst case 200 µs, best case 100 µs,
    // so a 150 µs deadline is at risk but not infeasible.
    let diags = Verifier::new().deadline_us(150).verify(&p);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "SPEAR-W003");
    assert_eq!(
        diags[0].message,
        "the worst-case path needs 200 µs of generation against a deadline of 150 µs"
    );
}

/// A verifier with the opt-in bytecode pass registered: IR-level lints
/// plus `SPEAR-W004`/`SPEAR-W005` from the abstract interpreter's
/// cond-refined bytecode CFG.
fn bytecode_verifier() -> Verifier<'static> {
    Verifier::new().register_pass(Box::new(spear_core::analysis::BytecodePass))
}

#[test]
fn golden_w004_w005_statically_dead_else_branch() {
    // `check_else(Always, …)` is the specialization idiom: the condition
    // is decided at plan-build time, so the else branch is dead weight the
    // IR reachability pass cannot see (it treats CHECK edges as opaque).
    let p = lower(
        &Pipeline::builder("specialized")
            .create_text("p", "base", RefinementMode::Manual)
            .check_else(
                Cond::Always,
                |t| t.expand("p", "then"),
                |e| e.expand("p", "else"),
            )
            .gen("a", "p")
            .build(),
    )
    .expect("lowers");
    assert_eq!(
        rendered(&bytecode_verifier(), &p),
        "warning[SPEAR-W005] in plan \"specialized\": condition `true` always holds: the else \
         branch can never be taken\n\
         \x20 0001  CHECK[true] else -> 0004\n\
         warning[SPEAR-W004] in plan \"specialized\": slot 0004 compiles to bytecode pc 0004, \
         which no execution can reach once statically-decided CHECKs are folded\n\
         \x20 0004  REF[APPEND, append] on P[\"p\"]\n"
    );
}

#[test]
fn golden_w004_w005_never_taken_then_branch() {
    // The dual: a `Never` guard whose then-branch — here fused into a
    // GEN+CHECK superinstruction — can never run.
    let p = lower(
        &Pipeline::builder("gated")
            .create_text("p", "base", RefinementMode::Manual)
            .gen("a", "p")
            .check(Cond::Never, |t| t.gen("b", "p"))
            .build(),
    )
    .expect("lowers");
    assert_eq!(
        rendered(&bytecode_verifier(), &p),
        "warning[SPEAR-W005] in plan \"gated\": condition `false` never holds: the then branch \
         can never be taken\n\
         \x20 0002  CHECK[false] else -> 0004\n\
         warning[SPEAR-W004] in plan \"gated\": slot 0003 compiles to bytecode pc 0002, which \
         no execution can reach once statically-decided CHECKs are folded\n\
         \x20 0003  GEN[\"b\"] using P[\"p\"]\n"
    );
}

#[test]
fn bytecode_pass_is_quiet_on_dynamic_plans() {
    let p = lower(
        &Pipeline::builder("dynamic")
            .create_text("p", "base", RefinementMode::Manual)
            .gen("a", "p")
            .check(Cond::low_confidence(0.5), |t| t.gen("b", "p"))
            .build(),
    )
    .expect("lowers");
    assert_eq!(rendered(&bytecode_verifier(), &p), "");
}

#[test]
fn lowering_rejects_placeholder_leaks_end_to_end() {
    // `lower()` fails closed: a leaked placeholder comes back as
    // InvalidPlan carrying the E003 diagnostic, never as a plan.
    let p = plan("leaked", vec![LoweredOp::Jump { target: usize::MAX }]);
    let diags = spear_core::analysis::verify_structural(&p);
    assert!(diags.iter().any(|d| d.code == "SPEAR-E003"));
}

mod soundness {
    use super::*;
    use proptest::prelude::*;

    fn nested_pipeline(depth: u32, breadth: u32) -> Pipeline {
        fn add_layer(
            b: spear_core::pipeline::PipelineBuilder,
            depth: u32,
            breadth: u32,
        ) -> spear_core::pipeline::PipelineBuilder {
            if depth == 0 {
                return b.expand("p", "leaf");
            }
            let mut b = b;
            for i in 0..breadth {
                b = b.check_else(
                    Cond::low_confidence(0.5),
                    |t| add_layer(t.expand("p", "then"), depth - 1, breadth),
                    |e| e.expand("p", &format!("else {i}")),
                );
            }
            b
        }
        let b = Pipeline::builder("nested").create_text("p", "base", RefinementMode::Manual);
        add_layer(b, depth, breadth).gen("a", "p").build()
    }

    proptest! {
        /// Every nested-CHECK shape the builder can express lowers `Ok`
        /// and verifies clean: branch joins, else-jumps, and placeholder
        /// patching survive arbitrary nesting.
        #[test]
        fn nested_check_pipelines_lower_and_verify_clean(
            depth in 0u32..4,
            breadth in 1u32..4,
        ) {
            let p = nested_pipeline(depth, breadth);
            let lowered = lower(&p).expect("builder pipelines lower clean");
            let diags = Verifier::new().verify(&lowered);
            prop_assert!(diags.is_empty(), "{diags:?}");
        }
    }
}
