//! Soundness of the bytecode abstract interpreter: for random pipelines,
//! every *completed* concrete execution must land inside the statically
//! derived intervals — completion tokens in `tokens`, GEN invocations in
//! `llm_calls`, virtual latency at or above `latency_lo_us`, and the KV
//! footprint within `ProgramBounds::kv_blocks`. The concrete runs come
//! from the [`EchoLlm`] reference backend (deterministic, ≥ 1 completion
//! token and ≥ 100 virtual µs per call — i.e. it satisfies the default
//! [`ResourceModel`]), driven solo and through a [`BatchRunner`] at 1, 4,
//! and 8 workers so the bounds are checked against every execution spine.

use std::sync::Arc;

use proptest::prelude::*;

use spear_core::analysis::{analyze, ProgramBounds, ResourceModel};
use spear_core::prelude::*;
use spear_core::runtime::ExecReport;

/// A generator-friendly pipeline script, mirroring the trace-equivalence
/// grammar: leaves that can fail (GEN on a possibly-undefined key) keep
/// the corpus honest, nested CHECKs give the analyzer real branching.
#[derive(Debug, Clone)]
enum Instr {
    CreateText(u8, String),
    Expand(u8, String),
    Gen(u8, u8),
    Check(Cond, Vec<Instr>, Vec<Instr>),
}

fn key(k: u8) -> String {
    format!("p{k}")
}

fn apply(mut b: PipelineBuilder, instrs: &[Instr]) -> PipelineBuilder {
    for instr in instrs {
        b = match instr {
            Instr::CreateText(k, text) => b.create_text(&key(*k), text, RefinementMode::Manual),
            Instr::Expand(k, text) => b.expand(&key(*k), text),
            Instr::Gen(label, k) => b.gen(&format!("g{label}"), &key(*k)),
            Instr::Check(cond, then, els) => {
                if els.is_empty() {
                    b.check(cond.clone(), |b| apply(b, then))
                } else {
                    b.check_else(cond.clone(), |b| apply(b, then), |b| apply(b, els))
                }
            }
        };
    }
    b
}

fn cond_strategy() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Always),
        Just(Cond::Never),
        Just(Cond::low_confidence(0.7)),
        (0u8..4).prop_map(|k| Cond::InContext(format!("g{k}"))),
    ]
}

fn instr_strategy() -> impl Strategy<Value = Instr> {
    let leaf = prop_oneof![
        ((0u8..4), "[a-z ]{1,12}").prop_map(|(k, t)| Instr::CreateText(k, t)),
        ((0u8..4), "[a-z ]{1,8}").prop_map(|(k, t)| Instr::Expand(k, t)),
        ((0u8..4), (0u8..4)).prop_map(|(l, k)| Instr::Gen(l, k)),
    ];
    leaf.prop_recursive(2, 10, 3, |inner| {
        (
            cond_strategy(),
            proptest::collection::vec(inner.clone(), 0..3),
            proptest::collection::vec(inner, 0..2),
        )
            .prop_map(|(c, t, e)| Instr::Check(c, t, e))
    })
}

fn runtime() -> Runtime {
    Runtime::builder().llm(Arc::new(EchoLlm::default())).build()
}

fn seeded_state(tweet: &str) -> ExecState {
    let mut state = ExecState::new();
    state.context.set("tweet", tweet.to_string());
    state.prompts.define(
        "p0",
        "base prompt {{ctx:tweet}}",
        "seed",
        RefinementMode::Manual,
    );
    state
}

/// Check one completed run against the program's static envelope.
fn assert_within(
    bounds: &ProgramBounds,
    report: &ExecReport,
) -> std::result::Result<(), TestCaseError> {
    prop_assert!(
        bounds.llm_calls.contains(report.gens),
        "gens {} outside llm_calls {}",
        report.gens,
        bounds.llm_calls
    );
    prop_assert!(
        bounds.tokens.contains(report.usage.completion_tokens),
        "completion tokens {} outside tokens {}",
        report.usage.completion_tokens,
        bounds.tokens
    );
    prop_assert!(
        u64::try_from(report.latency.as_micros()).unwrap_or(u64::MAX) >= bounds.latency_lo_us,
        "latency {}us below static floor {}us",
        report.latency.as_micros(),
        bounds.latency_lo_us
    );
    for block_size in [8u64, 16, 32] {
        let used = report
            .usage
            .prompt_tokens
            .saturating_add(report.usage.completion_tokens)
            .div_ceil(block_size);
        prop_assert!(
            used <= bounds.kv_blocks(report.usage.prompt_tokens, block_size),
            "{used} KV blocks exceed static footprint {} (block size {block_size})",
            bounds.kv_blocks(report.usage.prompt_tokens, block_size)
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Solo runs: the analyzer's intervals contain every completed
    /// execution of both the plain and the optimized program.
    #[test]
    fn completed_runs_stay_inside_the_static_envelope(
        instrs in proptest::collection::vec(instr_strategy(), 0..6),
        tweet in "[a-z ]{0,16}",
    ) {
        let p = apply(Pipeline::builder("sound"), &instrs).build();
        let lowered = lower(&p).unwrap();
        let program = spear_core::compile(&lowered).expect("builder plans compile");
        let optimized = spear_core::optimize(&program);
        let bounds = analyze(&program, &ResourceModel::default());
        let opt_bounds = optimized
            .as_ref()
            .map(|o| analyze(o, &ResourceModel::default()));

        let rt = runtime();
        let mut state = seeded_state(&tweet);
        if let Ok(report) = rt.execute_program(&program, &mut state) {
            assert_within(&bounds, &report)?;
            if let Some(ob) = &opt_bounds {
                // Optimizing never widens the envelope, and the same run
                // replays inside the tighter one.
                prop_assert!(ob.tokens.lo >= bounds.tokens.lo && ob.tokens.hi <= bounds.tokens.hi);
                assert_within(ob, &report)?;
            }
        }
    }

    /// Batch runs: the same containment holds for every job at 1, 4, and
    /// 8 workers — worker count never moves an execution outside bounds.
    #[test]
    fn batch_runs_stay_inside_the_static_envelope(
        instrs in proptest::collection::vec(instr_strategy(), 0..5),
    ) {
        let p = apply(Pipeline::builder("sound"), &instrs).build();
        let lowered = Arc::new(lower(&p).unwrap());
        let program = spear_core::compile(&lowered).expect("builder plans compile");
        let bounds = analyze(&program, &ResourceModel::default());
        let tweets: Vec<String> = (0..6).map(|i| format!("tweet number {i}")).collect();

        for workers in [1usize, 4, 8] {
            let rt = runtime();
            let states = tweets.iter().map(|t| seeded_state(t)).collect();
            for outcome in BatchRunner::new(workers)
                .run_lowered(&rt, &lowered, states)
                .into_iter()
                .flatten()
            {
                assert_within(&bounds, &outcome.report)?;
            }
        }
    }
}
