//! Operator-level runtime behaviour, exercised through the public API.
//!
//! These started as `runtime.rs` unit tests; since the interpreter split
//! into per-operator executor modules they run here against the lowered-IR
//! path that `Runtime::execute` now dispatches to.

use std::sync::Arc;
use std::time::Duration;

use spear_core::agent::EvidenceValidator;
use spear_core::prelude::*;

fn runtime() -> Runtime {
    let views = ViewCatalog::new();
    views.register(
        ViewDef::new(
            "med_summary",
            "Summarize the patient's medication history and highlight any use of {{drug}}.\nNotes: {{ctx:notes}}",
        )
        .with_param(ParamSpec::required("drug")),
    );
    Runtime::builder()
        .llm(Arc::new(EchoLlm::default()))
        .retriever(
            "initial_notes",
            Arc::new(InMemoryRetriever::from_texts([
                ("n1", "Patient on enoxaparin 40mg daily"),
                ("n2", "No bleeding events reported"),
            ])),
        )
        .agent(
            "validation_agent",
            Arc::new(EvidenceValidator {
                evidence_key: "answer_0".into(),
            }),
        )
        .views(views)
        .build()
}

fn qa_pipeline() -> Pipeline {
    Pipeline::builder("qa")
        .ret("initial_notes", "notes_raw", 5)
        .create_text("notes_joiner", "ignored", RefinementMode::Manual)
        .build()
}

#[test]
fn full_qa_pipeline_runs_and_traces() {
    let rt = runtime();
    let mut state = ExecState::new();
    state.context.set("notes", "enoxaparin 40mg daily");
    let pipeline = Pipeline::builder("qa")
        .ret("initial_notes", "notes_raw", 5)
        .create_from_view(
            "qa_prompt",
            "med_summary",
            [("drug".to_string(), Value::from("Enoxaparin"))]
                .into_iter()
                .collect(),
        )
        .gen("answer_0", "qa_prompt")
        .build();
    let report = rt.execute(&pipeline, &mut state).unwrap();

    assert_eq!(report.ops_executed, 3);
    assert_eq!(report.gens, 1);
    assert_eq!(report.refs, 1);
    assert!(state.context.contains("answer_0"));
    assert!(state.context.contains("notes_raw"));
    assert!(state.metadata.get("confidence").is_some());
    assert_eq!(state.trace.count(TraceKind::Gen), 1);
    assert_eq!(state.trace.count(TraceKind::Ret), 1);

    // The prompt was view-derived, so GEN saw a structured identity and
    // the entry records its origin.
    let entry = state.prompts.get("qa_prompt").unwrap();
    assert!(entry.derives_from_view("med_summary"));
}

#[test]
fn confidence_retry_refines_and_regenerates() {
    // First answer low confidence, second high.
    let llm = ScriptedLlm::new(vec![
        ScriptedLlm::response("weak answer", 0.4),
        ScriptedLlm::response("strong answer", 0.9),
    ]);
    let rt = Runtime::builder().llm(Arc::new(llm)).build();
    let mut state = ExecState::new();
    let pipeline = Pipeline::builder("retry")
        .create_text("p", "Classify the note.", RefinementMode::Manual)
        .retry_gen(
            "answer",
            "p",
            Cond::low_confidence(0.7),
            "auto_refine",
            Value::Null,
            RefinementMode::Auto,
            2,
        )
        .build();
    let report = rt.execute(&pipeline, &mut state).unwrap();

    assert_eq!(report.gens, 2, "initial + one retry");
    assert_eq!(report.checks_taken, 1, "second check sees 0.9 and skips");
    assert!(state.context.contains("answer_0"));
    assert!(state.context.contains("answer_1"));
    assert!(!state.context.contains("answer_2"));

    // The refinement carries the triggering condition in the ref_log.
    let entry = state.prompts.get("p").unwrap();
    assert_eq!(entry.version, 2);
    let auto_rec = &entry.ref_log[1];
    assert_eq!(auto_rec.mode, RefinementMode::Auto);
    assert!(auto_rec.trigger.as_deref().unwrap().contains("confidence"));
    assert_eq!(
        auto_rec.signals.get("confidence").unwrap().as_f64(),
        Some(0.4),
        "signals snapshot captured at refinement time"
    );
}

#[test]
fn check_else_branch_gets_negated_trigger() {
    let rt = runtime();
    let mut state = ExecState::new();
    state.metadata.set("confidence", 0.9);
    let pipeline = Pipeline::builder("else")
        .create_text("p", "base", RefinementMode::Manual)
        .check_else(
            Cond::low_confidence(0.7),
            |b| b.expand("p", "then-branch"),
            |b| b.expand("p", "else-branch"),
        )
        .build();
    rt.execute(&pipeline, &mut state).unwrap();
    let entry = state.prompts.get("p").unwrap();
    assert!(entry.text.contains("else-branch"));
    assert!(entry.ref_log[1]
        .trigger
        .as_deref()
        .unwrap()
        .starts_with("!("));
}

#[test]
fn merge_policies_choose_correctly() {
    let rt = runtime();
    let mut state = ExecState::new();
    state
        .prompts
        .define("primary", "primary text", "f", RefinementMode::Manual);
    state
        .prompts
        .define("fallback", "fallback text", "f", RefinementMode::Manual);
    state.metadata.set("confidence:primary", 0.5);
    state.metadata.set("confidence:fallback", 0.8);

    let pipeline = Pipeline::builder("merge")
        .merge(
            "fallback",
            "primary",
            "merged_concat",
            MergePolicy::Concat {
                separator: "\n---\n".into(),
            },
        )
        .merge(
            "primary",
            "fallback",
            "merged_best",
            MergePolicy::BySignal {
                left_signal: "confidence:primary".into(),
                right_signal: "confidence:fallback".into(),
            },
        )
        .build();
    rt.execute(&pipeline, &mut state).unwrap();

    let concat = state.prompts.get("merged_concat").unwrap();
    assert!(concat.text.contains("fallback text") && concat.text.contains("primary text"));
    let best = state.prompts.get("merged_best").unwrap();
    assert_eq!(best.text, "fallback text", "higher signal wins");
    assert!(matches!(best.origin, PromptOrigin::Merged { .. }));
}

#[test]
fn merge_missing_source_errors() {
    let rt = runtime();
    let mut state = ExecState::new();
    state
        .prompts
        .define("only", "x", "f", RefinementMode::Manual);
    let pipeline = Pipeline::builder("bad")
        .merge("only", "ghost", "out", MergePolicy::PreferLeft)
        .build();
    let err = rt.execute(&pipeline, &mut state).unwrap_err();
    assert!(matches!(err, SpearError::Merge(_)));
    assert_eq!(state.trace.count(TraceKind::Error), 2, "op + pipeline");
}

#[test]
fn delegate_writes_agent_result() {
    let rt = runtime();
    let mut state = ExecState::new();
    state
        .context
        .set("answer_0", "patient on enoxaparin daily dosing");
    let pipeline = Pipeline::builder("validate")
        .delegate(
            "validation_agent",
            PayloadSpec::CtxKey("answer_0".into()),
            "evidence_score",
        )
        .build();
    rt.execute(&pipeline, &mut state).unwrap();
    let score = state.context.get("evidence_score").unwrap();
    assert!(score.as_f64().unwrap() > 0.9);
}

#[test]
fn prompt_based_retrieval_uses_refinable_prompt() {
    let rt = runtime();
    let mut state = ExecState::new();
    let pipeline = Pipeline::builder("ret")
        .create_text(
            "retrieve_meds",
            "enoxaparin dosing notes",
            RefinementMode::Manual,
        )
        .ret_with_prompt("initial_notes", "retrieve_meds", "med_context", 5)
        .build();
    rt.execute(&pipeline, &mut state).unwrap();
    let docs = state.context.get("med_context").unwrap();
    let docs = docs.as_list().unwrap();
    assert_eq!(docs.len(), 1, "only the enoxaparin note matches");
    assert_eq!(
        state.metadata.get("retrieved_count").unwrap().as_i64(),
        Some(1)
    );
}

#[test]
fn gen_without_llm_errors() {
    let rt = Runtime::builder().build();
    let mut state = ExecState::new();
    state.prompts.define("p", "x", "f", RefinementMode::Manual);
    let pipeline = Pipeline::builder("g").gen("a", "p").build();
    assert!(matches!(
        rt.execute(&pipeline, &mut state),
        Err(SpearError::LlmUnavailable { .. })
    ));
}

#[test]
fn inline_prompts_render_context_but_stay_opaque() {
    let rt = runtime();
    let mut state = ExecState::new();
    state.context.set("tweet", "rain ruined my day");
    let pipeline = Pipeline::builder("inline")
        .gen_with(
            "sentiment",
            PromptRef::Inline("Classify: {{ctx:tweet}}".into()),
            GenOptions::default(),
        )
        .build();
    rt.execute(&pipeline, &mut state).unwrap();
    let out = state.context.get("sentiment").unwrap();
    assert!(out.as_str().unwrap().contains("rain") || !out.as_str().unwrap().is_empty());
}

#[test]
fn lowered_prompts_render_context_and_keep_their_identity() {
    let rt = runtime();
    let mut state = ExecState::new();
    state.context.set("tweet", "rain ruined my day");
    let pipeline = Pipeline::builder("lowered")
        .gen_with(
            "sentiment",
            PromptRef::Lowered {
                text: "Classify: {{ctx:tweet}}".into(),
                identity: Some("plan:demo/stage0".into()),
            },
            GenOptions::default(),
        )
        .build();
    rt.execute(&pipeline, &mut state).unwrap();
    let out = state.context.get("sentiment").unwrap();
    assert!(out.as_str().unwrap().contains("rain ruined my day"));
}

#[test]
fn op_budget_is_enforced() {
    let rt = Runtime::builder()
        .llm(Arc::new(EchoLlm::default()))
        .config(RuntimeConfig {
            max_ops: 2,
            ..RuntimeConfig::default()
        })
        .build();
    let mut state = ExecState::new();
    let pipeline = Pipeline::builder("big")
        .create_text("p", "a", RefinementMode::Manual)
        .expand("p", "b")
        .expand("p", "c")
        .build();
    assert!(matches!(
        rt.execute(&pipeline, &mut state),
        Err(SpearError::OpBudgetExceeded { .. })
    ));
}

#[test]
fn ref_on_missing_target_without_create_errors() {
    let rt = runtime();
    let mut state = ExecState::new();
    let pipeline = Pipeline::builder("bad").expand("ghost", "x").build();
    assert!(matches!(
        rt.execute(&pipeline, &mut state),
        Err(SpearError::PromptNotFound(_))
    ));
}

#[test]
fn per_label_confidence_signals() {
    let llm = ScriptedLlm::new(vec![
        ScriptedLlm::response("a", 0.3),
        ScriptedLlm::response("b", 0.8),
    ]);
    let rt = Runtime::builder().llm(Arc::new(llm)).build();
    let mut state = ExecState::new();
    state.prompts.define("p", "x", "f", RefinementMode::Manual);
    let pipeline = Pipeline::builder("two")
        .gen("first", "p")
        .gen("second", "p")
        .build();
    rt.execute(&pipeline, &mut state).unwrap();
    assert_eq!(
        state.metadata.get("confidence:first").unwrap().as_f64(),
        Some(0.3)
    );
    assert_eq!(
        state.metadata.get("confidence:second").unwrap().as_f64(),
        Some(0.8)
    );
    assert_eq!(
        state.metadata.get("confidence").unwrap().as_f64(),
        Some(0.8)
    );
}

#[test]
fn token_budget_aborts_mid_pipeline() {
    let rt = Runtime::builder()
        .llm(Arc::new(EchoLlm::default()))
        .config(RuntimeConfig {
            max_tokens: Some(10),
            ..RuntimeConfig::default()
        })
        .build();
    let mut state = ExecState::new();
    state.prompts.define(
        "p",
        "a reasonably long prompt with enough words to cross ten tokens",
        "f",
        RefinementMode::Manual,
    );
    let pipeline = Pipeline::builder("over")
        .gen("a", "p")
        .gen("b", "p")
        .build();
    let err = rt.execute(&pipeline, &mut state).unwrap_err();
    assert!(
        matches!(err, SpearError::TokenBudgetExceeded { .. }),
        "{err}"
    );
    // The first generation completed before the budget tripped.
    assert!(state.context.contains("a"));
    assert!(!state.context.contains("b"));
}

#[test]
fn latency_budget_aborts_mid_pipeline() {
    let rt = Runtime::builder()
        .llm(Arc::new(EchoLlm::default()))
        .config(RuntimeConfig {
            max_latency: Some(Duration::from_micros(1)),
            ..RuntimeConfig::default()
        })
        .build();
    let mut state = ExecState::new();
    state
        .prompts
        .define("p", "prompt text here", "f", RefinementMode::Manual);
    let pipeline = Pipeline::builder("slow")
        .gen("a", "p")
        .gen("b", "p")
        .build();
    let err = rt.execute(&pipeline, &mut state).unwrap_err();
    assert!(
        matches!(err, SpearError::LatencyBudgetExceeded { .. }),
        "{err}"
    );
}

#[test]
fn budgets_are_per_call_not_cumulative() {
    let rt = Runtime::builder()
        .llm(Arc::new(EchoLlm::default()))
        .config(RuntimeConfig {
            max_tokens: Some(200),
            ..RuntimeConfig::default()
        })
        .build();
    let mut state = ExecState::new();
    state
        .prompts
        .define("p", "short prompt", "f", RefinementMode::Manual);
    let pipeline = Pipeline::builder("ok").gen("a", "p").build();
    // Many successive calls each stay within their own budget even
    // though cumulative usage far exceeds it.
    for _ in 0..20 {
        rt.execute(&pipeline, &mut state).unwrap();
    }
}

#[test]
fn execute_twice_accumulates_state() {
    let rt = runtime();
    let mut state = ExecState::new();
    let p1 = qa_pipeline();
    rt.execute(&p1, &mut state).unwrap();
    let step_after_first = state.step;
    rt.execute(&p1, &mut state).unwrap();
    assert!(
        state.step > step_after_first,
        "steps continue monotonically"
    );
}

#[test]
fn execute_lowered_accepts_a_prelowered_plan() {
    let rt = runtime();
    let pipeline = qa_pipeline();
    let lowered = lower(&pipeline).unwrap();

    let mut via_pipeline = ExecState::new();
    let mut via_plan = ExecState::new();
    let a = rt.execute(&pipeline, &mut via_pipeline).unwrap();
    let b = rt.execute_lowered(&lowered, &mut via_plan).unwrap();
    assert_eq!(a, b);
    assert_eq!(via_pipeline.trace, via_plan.trace);
}
