//! Property tests for `spear-core`'s pure components: the condition
//! evaluator, the template engine, the value model, and the diff engine
//! must be total (no panics) and law-abiding for arbitrary inputs.

use std::collections::BTreeMap;

use proptest::prelude::*;

use spear_core::condition::{CmpOp, Cond, Operand};
use spear_core::context::Context;
use spear_core::diff;
use spear_core::metadata::Metadata;
use spear_core::template;
use spear_core::value::Value;

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1.0e12f64..1.0e12).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::from),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            proptest::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(Value::Map),
        ]
    })
}

fn operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        "[a-z]{1,8}".prop_map(Operand::Signal),
        "[a-z]{1,8}".prop_map(Operand::Ctx),
        value_strategy().prop_map(Operand::Lit),
    ]
}

fn cond_strategy() -> impl Strategy<Value = Cond> {
    let cmp = (
        operand_strategy(),
        prop_oneof![
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge),
            Just(CmpOp::Eq),
            Just(CmpOp::Ne)
        ],
        operand_strategy(),
    )
        .prop_map(|(lhs, op, rhs)| Cond::Cmp { lhs, op, rhs });
    let leaf = prop_oneof![
        Just(Cond::Always),
        Just(Cond::Never),
        cmp,
        "[a-z]{1,8}".prop_map(Cond::InContext),
        "[a-z]{1,8}".prop_map(Cond::NotInContext),
        "[a-z]{1,8}".prop_map(Cond::HasSignal),
        operand_strategy().prop_map(Cond::Truthy),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|c| Cond::Not(Box::new(c))),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Cond::All),
            proptest::collection::vec(inner, 0..3).prop_map(Cond::Any),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary condition trees over arbitrary state never panic, and
    /// double negation is semantics-preserving.
    #[test]
    fn condition_eval_is_total_and_involutive(
        cond in cond_strategy(),
        ctx_entries in proptest::collection::btree_map("[a-z]{1,8}", value_strategy(), 0..4),
        sig_entries in proptest::collection::btree_map("[a-z]{1,8}", value_strategy(), 0..4),
    ) {
        let mut c = Context::new();
        for (k, v) in ctx_entries {
            c.set(k, v);
        }
        let mut m = Metadata::new();
        for (k, v) in sig_entries {
            m.set(k, v);
        }
        let direct = cond.eval(&c, &m);
        let doubled = Cond::Not(Box::new(Cond::Not(Box::new(cond.clone())))).eval(&c, &m);
        match (direct, doubled) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "inconsistent results: {a:?} vs {b:?}"),
        }
        // Display never panics either (conditions end up in ref_logs).
        let _ = cond.to_string();
    }

    /// The template parser is total: arbitrary input either parses or
    /// returns a typed error; rendering with every placeholder bound
    /// succeeds whenever parsing succeeded.
    #[test]
    fn template_parser_is_total(input in ".{0,120}") {
        match template::parse(&input) {
            Ok(segments) => {
                // Bind every placeholder and render.
                let mut params = BTreeMap::new();
                let mut renderable = true;
                for seg in &segments {
                    if let template::Segment::Placeholder { source, name } = seg {
                        match source.as_deref() {
                            None | Some("param") => {
                                params.insert(name.clone(), Value::from("x"));
                            }
                            // ctx/view/unknown sources may legitimately fail.
                            _ => renderable = false,
                        }
                    }
                }
                if renderable {
                    prop_assert!(template::render(&input, &params, &Context::new()).is_ok());
                }
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }

    /// Diff laws: diff(a, a) is identical with similarity 1; apply counts
    /// are consistent with the edit script; similarity is symmetric.
    #[test]
    fn diff_laws(a in "[a-z \n]{0,80}", b in "[a-z \n]{0,80}") {
        let same = diff::diff(&a, &a);
        prop_assert!(same.is_identical());
        prop_assert_eq!(same.similarity, 1.0);

        let d = diff::diff(&a, &b);
        let adds = d.edits.iter().filter(|e| matches!(e, diff::DiffEdit::Add(_))).count();
        let removes = d.edits.iter().filter(|e| matches!(e, diff::DiffEdit::Remove(_))).count();
        let keeps = d.edits.iter().filter(|e| matches!(e, diff::DiffEdit::Keep(_))).count();
        prop_assert_eq!(adds, d.added);
        prop_assert_eq!(removes, d.removed);
        prop_assert_eq!(keeps + removes, a.lines().count());
        prop_assert_eq!(keeps + adds, b.lines().count());
        prop_assert!((0.0..=1.0).contains(&d.similarity));

        let reverse = diff::diff(&b, &a);
        prop_assert_eq!(d.similarity, reverse.similarity, "jaccard is symmetric");
        prop_assert_eq!(d.added, reverse.removed);
    }

    /// Values roundtrip through JSON whenever they contain no floats (the
    /// untagged representation maps integral floats to ints, which is fine
    /// for prompts but makes exact roundtrip float-sensitive).
    #[test]
    fn value_json_roundtrip_without_floats(v in value_strategy()) {
        fn has_float(v: &Value) -> bool {
            match v {
                Value::Float(_) => true,
                Value::List(l) => l.iter().any(has_float),
                Value::Map(m) => m.values().any(has_float),
                _ => false,
            }
        }
        prop_assume!(!has_float(&v));
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(v, back);
    }
}
