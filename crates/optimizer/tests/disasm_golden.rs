//! Golden tests for the bytecode disassembler: byte-exact listings of a
//! program exercising every opcode — all three fused superinstructions
//! (GEN+CHECK, DELEGATE+JUMP, RET+MERGE), the bare forms the fuser must
//! refuse (a CHECK that is a branch target, a JUMP whose predecessor is
//! not a DELEGATE), and the full constant pool (strings, leaf specs with
//! triggers/frames/templates, check specs). Any change to opcode layout,
//! fusion rules, or pool interning shows up here as a readable diff.

use spear_core::prelude::*;
use spear_optimizer::disasm;

/// One pipeline that compiles to all six opcodes.
///
/// - `ret` + `merge` adjacent at top level → `RET+MERGE`;
/// - `retry_gen` → GEN immediately followed by its confidence CHECK →
///   `GEN+CHECK`;
/// - a then-branch that is exactly one DELEGATE → `DELEGATE+JUMP`;
/// - the second CHECK sits at the first check's else target, so fusion
///   with the preceding GEN is refused → bare `CHECK`;
/// - a then-branch ending in a GEN keeps its closing jump → bare `JUMP`.
fn kitchen_sink() -> Pipeline {
    Pipeline::builder("kitchen_sink")
        .ret("corpus", "docs_a", 2)
        .merge(
            "docs_a",
            "docs_b",
            "docs",
            MergePolicy::Concat {
                separator: "\n".to_owned(),
            },
        )
        .create_text("p", "Q: {{ctx:docs}}", RefinementMode::Manual)
        .retry_gen(
            "answer",
            "p",
            Cond::low_confidence(0.7),
            "auto_refine",
            Value::Null,
            RefinementMode::Auto,
            1,
        )
        .check_else(
            Cond::low_confidence(0.9),
            |t| {
                t.delegate(
                    "escalate",
                    PayloadSpec::CtxKey("answer_0".to_owned()),
                    "review",
                )
            },
            |e| e.create_text("note", "flagged", RefinementMode::Manual),
        )
        .check_else(
            Cond::signal_cmp("retries", CmpOp::Lt, 2),
            |t| t.gen("alt", "p"),
            |e| e.create_text("note2", "gave up", RefinementMode::Manual),
        )
        .build()
}

fn compile(pipeline: &Pipeline) -> spear_core::Program {
    let plan = lower(pipeline).expect("pipeline lowers");
    spear_core::compile(&plan).expect("verified plan compiles")
}

#[test]
fn kitchen_sink_disassembly_is_pinned() {
    let program = compile(&kitchen_sink());
    let expected = "\
DISASSEMBLY OF PROGRAM \"kitchen_sink\"  (13 source ops, 12 instructions)
  0000  RET+MERGE      l00 l01              ; RET[\"corpus\"] -> C[\"docs_a\"] ; MERGE[P[\"docs_a\"], P[\"docs_b\"]] -> P[\"docs\"]
  0001  LEAF           l02                  ; REF[CREATE, set_text] on P[\"p\"]
  0002  GEN+CHECK      l03 c00  else -> 0005  ; GEN[\"answer_0\"] using P[\"p\"] ; CHECK[M[\"confidence\"] < 0.7]
  0003  LEAF           l04                  ; REF[UPDATE, auto_refine] on P[\"p\"]
  0004  LEAF           l05                  ; GEN[\"answer_1\"] using P[\"p\"]
  0005  CHECK          c01  else -> 0007  ; CHECK[M[\"confidence\"] < 0.9]
  0006  DELEGATE+JUMP  l06  -> 0008     ; DELEGATE[\"escalate\"] -> C[\"review\"]
  0007  LEAF           l07                  ; REF[CREATE, set_text] on P[\"note\"]
  0008  CHECK          c02  else -> 0011  ; CHECK[M[\"retries\"] < 2]
  0009  LEAF           l08                  ; GEN[\"alt\"] using P[\"p\"]
  0010  JUMP           -> 0012
  0011  LEAF           l09                  ; REF[CREATE, set_text] on P[\"note2\"]
CONST POOL  (18 strings, 10 leaves, 3 checks)
  strings:
    s00  \"RET[\\\"corpus\\\"] -> C[\\\"docs_a\\\"]\"
    s01  \"MERGE[P[\\\"docs_a\\\"], P[\\\"docs_b\\\"]] -> P[\\\"docs\\\"]\"
    s02  \"REF[CREATE, set_text] on P[\\\"p\\\"]\"
    s03  \"GEN[\\\"answer_0\\\"] using P[\\\"p\\\"]\"
    s04  \"CHECK[M[\\\"confidence\\\"] < 0.7]\"
    s05  \"REF[UPDATE, auto_refine] on P[\\\"p\\\"]\"
    s06  \"M[\\\"confidence\\\"] < 0.7\"
    s07  \"GEN[\\\"answer_1\\\"] using P[\\\"p\\\"]\"
    s08  \"CHECK[M[\\\"confidence\\\"] < 0.9]\"
    s09  \"DELEGATE[\\\"escalate\\\"] -> C[\\\"review\\\"]\"
    s10  \"M[\\\"confidence\\\"] < 0.9\"
    s11  \"REF[CREATE, set_text] on P[\\\"note\\\"]\"
    s12  \"!(M[\\\"confidence\\\"] < 0.9)\"
    s13  \"CHECK[M[\\\"retries\\\"] < 2]\"
    s14  \"GEN[\\\"alt\\\"] using P[\\\"p\\\"]\"
    s15  \"M[\\\"retries\\\"] < 2\"
    s16  \"REF[CREATE, set_text] on P[\\\"note2\\\"]\"
    s17  \"!(M[\\\"retries\\\"] < 2)\"
  leaves:
    l00  describe=s00  trigger=-  frames=[]  template=-
    l01  describe=s01  trigger=-  frames=[]  template=-
    l02  describe=s02  trigger=-  frames=[]  template=-
    l03  describe=s03  trigger=-  frames=[]  template=-
    l04  describe=s05  trigger=s06  frames=[s04]  template=-
    l05  describe=s07  trigger=s06  frames=[s04]  template=-
    l06  describe=s09  trigger=s10  frames=[s08]  template=-
    l07  describe=s11  trigger=s12  frames=[s08]  template=-
    l08  describe=s14  trigger=s15  frames=[s13]  template=-
    l09  describe=s16  trigger=s17  frames=[s13]  template=-
  checks:
    c00  label=s04  frames=[]
    c01  label=s08  frames=[]
    c02  label=s13  frames=[]
STATIC BOUNDS  tokens=[1, 768] llm_calls=[1, 3] latency>=100us unwind<=2
    0002  tokens=[1, 256] llm_calls=[1, 1] latency>=100us
    0004  tokens=[1, 256] llm_calls=[1, 1] latency>=100us
    0009  tokens=[1, 256] llm_calls=[1, 1] latency>=100us
";
    assert_eq!(disasm(&program), expected);
}

#[test]
fn lowered_physical_plan_pins_parsed_templates_and_delegate_fusion() {
    // The reordered Filter→Map shape from the explain goldens: its GENs
    // are lowered prompts whose templates parse at compile time, so the
    // leaf pool pins `template=parsed`. The filter's DELEGATE stays a bare
    // leaf (it precedes a CHECK, not a jump), and the verdict GEN cannot
    // fuse with that CHECK either — a DELEGATE sits between them.
    let plan = spear_optimizer::plan::SemanticPlan::filter_then_map(
        "Keep negative tweets.",
        "Clean up the tweet.",
    );
    let lowered =
        spear_optimizer::lower_physical(&spear_optimizer::plan::PhysicalPlan::sequential(&plan))
            .expect("lowers");
    let program = spear_core::compile(&lowered).expect("verified plan compiles");
    let expected = "\
DISASSEMBLY OF PROGRAM \"physical([Filter] [Map])\"  (4 source ops, 4 instructions)
  0000  LEAF           l00                  ; GEN[\"s0\"] using lowered prompt
  0001  LEAF           l01                  ; DELEGATE[\"plan_filter_verdict\"] -> C[\"pass0\"]
  0002  CHECK          c00  else -> 0004  ; CHECK[truthy(C[\"pass0\"])]
  0003  LEAF           l02                  ; GEN[\"s1\"] using lowered prompt
CONST POOL  (5 strings, 3 leaves, 1 checks)
  strings:
    s00  \"GEN[\\\"s0\\\"] using lowered prompt\"
    s01  \"DELEGATE[\\\"plan_filter_verdict\\\"] -> C[\\\"pass0\\\"]\"
    s02  \"CHECK[truthy(C[\\\"pass0\\\"])]\"
    s03  \"GEN[\\\"s1\\\"] using lowered prompt\"
    s04  \"truthy(C[\\\"pass0\\\"])\"
  leaves:
    l00  describe=s00  trigger=-  frames=[]  template=parsed
    l01  describe=s01  trigger=-  frames=[]  template=-
    l02  describe=s03  trigger=s04  frames=[s02]  template=parsed
  checks:
    c00  label=s02  frames=[]
STATIC BOUNDS  tokens=[1, 128] llm_calls=[1, 2] latency>=100us unwind<=2
    0000  tokens=[1, 64] llm_calls=[1, 1] latency>=100us
    0003  tokens=[1, 64] llm_calls=[1, 1] latency>=100us
";
    assert_eq!(disasm(&program), expected);
}
