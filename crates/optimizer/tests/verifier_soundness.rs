//! Lowering soundness: every plan the optimizer emits must pass the IR
//! verifier without a single diagnostic. The verifier exists to catch
//! hand-built or corrupted plans — if it ever fires on our own lowering
//! output, either the lowering or the verifier has a bug, and this test
//! pins down which commit introduced it.

use proptest::prelude::*;
use spear_core::analysis::Verifier;
use spear_optimizer::lower_physical;
use spear_optimizer::plan::{PhysicalPlan, SemanticPlan};

fn build_semantic(a: &str, b: &str, filter_first: bool, identity: Option<String>) -> SemanticPlan {
    let plan = if filter_first {
        SemanticPlan::filter_then_map(a, b)
    } else {
        SemanticPlan::map_then_filter(a, b)
    };
    match identity {
        Some(id) => plan.with_identity(id),
        None => plan,
    }
}

proptest! {
    #[test]
    fn lowered_physical_plans_always_verify_clean(
        a in "[a-zA-Z ]{1,40}",
        b in "[a-zA-Z ]{1,40}",
        filter_first in any::<bool>(),
        identity in proptest::option::of("[a-z_]{1,12}"),
        fused in any::<bool>(),
    ) {
        let plan = build_semantic(&a, &b, filter_first, identity);
        let physical = if fused {
            PhysicalPlan::fused(&plan)
        } else {
            PhysicalPlan::sequential(&plan)
        };
        let lowered = lower_physical(&physical).expect("optimizer lowering must not leak placeholders");
        let diagnostics = Verifier::new().verify(&lowered);
        prop_assert!(
            diagnostics.is_empty(),
            "optimizer-lowered plan {:?} tripped the verifier: {:?}",
            lowered.name,
            diagnostics
        );
    }
}
