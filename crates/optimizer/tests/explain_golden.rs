//! Golden tests for the lowered-IR EXPLAIN renderer: the exact program the
//! runtime's dispatch loop steps through, for the three physical shapes of
//! the paper's sentiment workload. Any change to lowering rules, jump
//! targets, or prompt templates shows up here as a readable diff.

use spear_optimizer::plan::{PhysicalPlan, SemanticPlan};
use spear_optimizer::{explain_lowered, lower_physical};

fn map_filter() -> SemanticPlan {
    SemanticPlan::map_then_filter("Clean up the tweet.", "Keep negative tweets.")
        .with_identity("view:tweet_pipeline@1")
}

#[test]
fn sequential_plan_explains_stage_per_gen() {
    let lowered = lower_physical(&PhysicalPlan::sequential(&map_filter())).expect("lowers");
    let expected = "\
EXPLAIN LOWERED PLAN \"physical([Map] [Filter])\"  (3 source ops, 3 slots)
  0000  GEN[\"s0\"] using lowered prompt
        prompt: \"Clean up the tweet. Use at most 25 words.\\nTweet: {{ctx:item}}\"  [cacheable as \"view:tweet_pipeline@1/stage0\"]
  0001  GEN[\"s1\"] using lowered prompt
        prompt: \"Keep negative tweets. Respond with the label followed by a one-sentence justification.\\nTweet: {{ctx:s0}}\"  [cacheable as \"view:tweet_pipeline@1/stage1\"]
  0002  DELEGATE[\"plan_filter_verdict\"] -> C[\"pass1\"]
";
    assert_eq!(explain_lowered(&lowered), expected);
}

#[test]
fn fused_plan_explains_one_gen_with_both_parsers() {
    let lowered = lower_physical(&PhysicalPlan::fused(&map_filter())).expect("lowers");
    let expected = "\
EXPLAIN LOWERED PLAN \"physical([Map+Filter])\"  (3 source ops, 3 slots)
  0000  GEN[\"s0\"] using lowered prompt
        prompt: \"Clean up the tweet. Then Keep negative tweets. In one pass. Respond in the format '<label> :: <cleaned text>' with a short justification, using at most 25 words.\\nTweet: {{ctx:item}}\"  [cacheable as \"view:tweet_pipeline@1/stage0\"]
  0001  DELEGATE[\"plan_fused_verdict\"] -> C[\"pass0\"]
  0002  DELEGATE[\"plan_fused_text\"] -> C[\"t0\"]
";
    assert_eq!(explain_lowered(&lowered), expected);
}

#[test]
fn reordered_plan_explains_pushdown_as_a_jump() {
    // Filter→Map: the reordered form where predicate pushdown pays — the
    // CHECK's else target jumps clear past the guarded Map stage.
    let plan = SemanticPlan::filter_then_map("Keep negative tweets.", "Clean up the tweet.");
    let lowered = lower_physical(&PhysicalPlan::sequential(&plan)).expect("lowers");
    let expected = "\
EXPLAIN LOWERED PLAN \"physical([Filter] [Map])\"  (4 source ops, 4 slots)
  0000  GEN[\"s0\"] using lowered prompt
        prompt: \"Keep negative tweets. Respond with the label followed by a one-sentence justification.\\nTweet: {{ctx:item}}\"  [opaque — no prefix reuse]
  0001  DELEGATE[\"plan_filter_verdict\"] -> C[\"pass0\"]
  0002  CHECK[truthy(C[\"pass0\"])]  else -> 0004
  0003  GEN[\"s1\"] using lowered prompt  (when truthy(C[\"pass0\"]))
        prompt: \"Clean up the tweet. Use at most 25 words.\\nTweet: {{ctx:item}}\"  [opaque — no prefix reuse]
";
    assert_eq!(explain_lowered(&lowered), expected);
}
