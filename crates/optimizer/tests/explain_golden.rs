//! Golden tests for the lowered-IR EXPLAIN renderer: the exact program the
//! runtime's dispatch loop steps through, for the three physical shapes of
//! the paper's sentiment workload. Any change to lowering rules, jump
//! targets, or prompt templates shows up here as a readable diff.

use spear_optimizer::plan::{PhysicalPlan, SemanticPlan};
use spear_optimizer::{explain_lowered, explain_lowered_with_lints, lower_physical};

fn map_filter() -> SemanticPlan {
    SemanticPlan::map_then_filter("Clean up the tweet.", "Keep negative tweets.")
        .with_identity("view:tweet_pipeline@1")
}

#[test]
fn sequential_plan_explains_stage_per_gen() {
    let lowered = lower_physical(&PhysicalPlan::sequential(&map_filter())).expect("lowers");
    let expected = "\
EXPLAIN LOWERED PLAN \"physical([Map] [Filter])\"  (3 source ops, 3 slots)
  0000  GEN[\"s0\"] using lowered prompt
        prompt: \"Clean up the tweet. Use at most 25 words.\\nTweet: {{ctx:item}}\"  [cacheable as \"view:tweet_pipeline@1/stage0\"]
  0001  GEN[\"s1\"] using lowered prompt
        prompt: \"Keep negative tweets. Respond with the label followed by a one-sentence justification.\\nTweet: {{ctx:s0}}\"  [cacheable as \"view:tweet_pipeline@1/stage1\"]
  0002  DELEGATE[\"plan_filter_verdict\"] -> C[\"pass1\"]
";
    assert_eq!(explain_lowered(&lowered), expected);
}

#[test]
fn fused_plan_explains_one_gen_with_both_parsers() {
    let lowered = lower_physical(&PhysicalPlan::fused(&map_filter())).expect("lowers");
    let expected = "\
EXPLAIN LOWERED PLAN \"physical([Map+Filter])\"  (3 source ops, 3 slots)
  0000  GEN[\"s0\"] using lowered prompt
        prompt: \"Clean up the tweet. Then Keep negative tweets. In one pass. Respond in the format '<label> :: <cleaned text>' with a short justification, using at most 25 words.\\nTweet: {{ctx:item}}\"  [cacheable as \"view:tweet_pipeline@1/stage0\"]
  0001  DELEGATE[\"plan_fused_verdict\"] -> C[\"pass0\"]
  0002  DELEGATE[\"plan_fused_text\"] -> C[\"t0\"]
";
    assert_eq!(explain_lowered(&lowered), expected);
}

#[test]
fn reordered_plan_explains_pushdown_as_a_jump() {
    // Filter→Map: the reordered form where predicate pushdown pays — the
    // CHECK's else target jumps clear past the guarded Map stage.
    let plan = SemanticPlan::filter_then_map("Keep negative tweets.", "Clean up the tweet.");
    let lowered = lower_physical(&PhysicalPlan::sequential(&plan)).expect("lowers");
    let expected = "\
EXPLAIN LOWERED PLAN \"physical([Filter] [Map])\"  (4 source ops, 4 slots)
  0000  GEN[\"s0\"] using lowered prompt
        prompt: \"Keep negative tweets. Respond with the label followed by a one-sentence justification.\\nTweet: {{ctx:item}}\"  [opaque — no prefix reuse]
  0001  DELEGATE[\"plan_filter_verdict\"] -> C[\"pass0\"]
  0002  CHECK[truthy(C[\"pass0\"])]  else -> 0004
  0003  GEN[\"s1\"] using lowered prompt  (when truthy(C[\"pass0\"]))
        prompt: \"Clean up the tweet. Use at most 25 words.\\nTweet: {{ctx:item}}\"  [opaque — no prefix reuse]
";
    assert_eq!(explain_lowered(&lowered), expected);
}

#[test]
fn bytecode_lints_render_inline_after_the_listing() {
    // The abstract-interpreter pass's W004/W005 diagnostics flow through
    // the same EXPLAIN tail as the IR lints: listing first, rendered
    // diagnostics appended verbatim.
    use spear_core::analysis::Verifier;
    use spear_core::condition::Cond;
    use spear_core::history::RefinementMode;
    use spear_core::pipeline::Pipeline;
    use spear_core::plan::lower;

    let verifier = Verifier::new().register_pass(Box::new(spear_core::analysis::BytecodePass));
    let plan = lower(
        &Pipeline::builder("gated")
            .create_text("p", "base", RefinementMode::Manual)
            .gen("a", "p")
            .check(Cond::Never, |t| t.gen("b", "p"))
            .build(),
    )
    .expect("lowers");
    let expected = "\
EXPLAIN LOWERED PLAN \"gated\"  (4 source ops, 4 slots)
  0000  REF[CREATE, set_text] on P[\"p\"]
  0001  GEN[\"a\"] using P[\"p\"]
  0002  CHECK[false]  else -> 0004
  0003  GEN[\"b\"] using P[\"p\"]  (when false)
warning[SPEAR-W005] in plan \"gated\": condition `false` never holds: the then branch can never be taken
  0002  CHECK[false] else -> 0004
warning[SPEAR-W004] in plan \"gated\": slot 0003 compiles to bytecode pc 0002, which no execution can reach once statically-decided CHECKs are folded
  0003  GEN[\"b\"] using P[\"p\"]
";
    assert_eq!(
        explain_lowered_with_lints(&plan, &verifier.verify(&plan)),
        expected
    );

    // Plans the bytecode pass has nothing to say about stay clean.
    let clean = lower(
        &Pipeline::builder("clean")
            .create_text("p", "base", RefinementMode::Manual)
            .gen("a", "p")
            .build(),
    )
    .expect("lowers");
    assert_eq!(
        explain_lowered_with_lints(&clean, &verifier.verify(&clean)),
        "EXPLAIN LOWERED PLAN \"clean\"  (2 source ops, 2 slots)\n\
         \x20 0000  REF[CREATE, set_text] on P[\"p\"]\n\
         \x20 0001  GEN[\"a\"] using P[\"p\"]\n\
         verifier: clean (2 slots checked)\n"
    );
}
