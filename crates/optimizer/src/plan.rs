//! Semantic plans: Map/Filter pipelines over item collections.
//!
//! The paper's fusion experiments (§7, Table 4, Figure 1) run per-item
//! semantic operators — *Map* (clean up / summarize) and *Filter*
//! (sentiment predicate) — in sequential or fused physical forms. This
//! module is the logical/physical plan layer: a [`SemanticPlan`] describes
//! the stages; [`PhysicalPlan`]s are either one GEN per stage per item, or
//! one fused GEN per item; the executor in [`crate::exec`] runs plans
//! against any `LlmClient` and reports time, calls, and outcomes.

use serde::{Deserialize, Serialize};

/// One logical semantic stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SemanticOp {
    /// Transform each item (e.g. "clean up the tweet").
    Map {
        /// Natural-language instruction for the transformation.
        instruction: String,
    },
    /// Keep items satisfying a predicate (e.g. "negative sentiment").
    Filter {
        /// Natural-language instruction for the predicate.
        instruction: String,
    },
}

impl SemanticOp {
    /// Stage label for plan rendering.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SemanticOp::Map { .. } => "Map",
            SemanticOp::Filter { .. } => "Filter",
        }
    }

    /// The instruction text.
    #[must_use]
    pub fn instruction(&self) -> &str {
        match self {
            SemanticOp::Map { instruction } | SemanticOp::Filter { instruction } => instruction,
        }
    }
}

/// A logical pipeline over items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemanticPlan {
    /// Stages in execution order.
    pub stages: Vec<SemanticOp>,
    /// Optional structured identity (view-derived plans are cacheable; see
    /// the engine's structure-gates-caching rule).
    pub identity: Option<String>,
}

impl SemanticPlan {
    /// The paper's Map→Filter configuration (clean up, then classify).
    #[must_use]
    pub fn map_then_filter(map_instruction: &str, filter_instruction: &str) -> Self {
        Self {
            stages: vec![
                SemanticOp::Map {
                    instruction: map_instruction.to_string(),
                },
                SemanticOp::Filter {
                    instruction: filter_instruction.to_string(),
                },
            ],
            identity: None,
        }
    }

    /// The paper's Filter→Map configuration (classify, then clean up).
    #[must_use]
    pub fn filter_then_map(filter_instruction: &str, map_instruction: &str) -> Self {
        Self {
            stages: vec![
                SemanticOp::Filter {
                    instruction: filter_instruction.to_string(),
                },
                SemanticOp::Map {
                    instruction: map_instruction.to_string(),
                },
            ],
            identity: None,
        }
    }

    /// Attach a structured identity (e.g. `view:tweet_pipeline@1`).
    #[must_use]
    pub fn with_identity(mut self, id: impl Into<String>) -> Self {
        self.identity = Some(id.into());
        self
    }

    /// Render the plan in paper notation, e.g. `Map→Filter`.
    #[must_use]
    pub fn shape(&self) -> String {
        self.stages
            .iter()
            .map(SemanticOp::label)
            .collect::<Vec<_>>()
            .join("→")
    }
}

/// One physical stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhysicalStage {
    /// One GEN per surviving item for a single semantic op.
    Gen {
        /// The semantic op executed.
        op: SemanticOp,
    },
    /// One GEN per surviving item executing several semantic ops at once.
    FusedGen {
        /// The fused ops, in semantic order.
        ops: Vec<SemanticOp>,
    },
}

impl PhysicalStage {
    /// Number of semantic ops this stage covers.
    #[must_use]
    pub fn width(&self) -> usize {
        match self {
            PhysicalStage::Gen { .. } => 1,
            PhysicalStage::FusedGen { ops } => ops.len(),
        }
    }

    /// Whether the stage ends with a filter (its output gates later stages).
    #[must_use]
    pub fn filters(&self) -> bool {
        match self {
            PhysicalStage::Gen { op } => matches!(op, SemanticOp::Filter { .. }),
            PhysicalStage::FusedGen { ops } => {
                ops.iter().any(|o| matches!(o, SemanticOp::Filter { .. }))
            }
        }
    }
}

/// A physical plan: stages plus the plan identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalPlan {
    /// Physical stages in order.
    pub stages: Vec<PhysicalStage>,
    /// Structured identity inherited from the logical plan.
    pub identity: Option<String>,
}

impl PhysicalPlan {
    /// Sequential physical form: one GEN stage per semantic op.
    #[must_use]
    pub fn sequential(plan: &SemanticPlan) -> Self {
        Self {
            stages: plan
                .stages
                .iter()
                .cloned()
                .map(|op| PhysicalStage::Gen { op })
                .collect(),
            identity: plan.identity.clone(),
        }
    }

    /// Fully fused physical form: all semantic ops in one GEN.
    #[must_use]
    pub fn fused(plan: &SemanticPlan) -> Self {
        Self {
            stages: vec![PhysicalStage::FusedGen {
                ops: plan.stages.clone(),
            }],
            identity: plan.identity.clone(),
        }
    }

    /// Render, e.g. `[Map] [Filter]` vs `[Map+Filter]`.
    #[must_use]
    pub fn shape(&self) -> String {
        self.stages
            .iter()
            .map(|s| match s {
                PhysicalStage::Gen { op } => format!("[{}]", op.label()),
                PhysicalStage::FusedGen { ops } => format!(
                    "[{}]",
                    ops.iter()
                        .map(SemanticOp::label)
                        .collect::<Vec<_>>()
                        .join("+")
                ),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_shapes_render_in_paper_notation() {
        let mf = SemanticPlan::map_then_filter("clean up", "negative?");
        assert_eq!(mf.shape(), "Map→Filter");
        let fm = SemanticPlan::filter_then_map("negative?", "clean up");
        assert_eq!(fm.shape(), "Filter→Map");
    }

    #[test]
    fn physical_forms() {
        let plan = SemanticPlan::map_then_filter("m", "f").with_identity("view:v@1");
        let seq = PhysicalPlan::sequential(&plan);
        assert_eq!(seq.stages.len(), 2);
        assert_eq!(seq.shape(), "[Map] [Filter]");
        assert!(!seq.stages[0].filters());
        assert!(seq.stages[1].filters());

        let fused = PhysicalPlan::fused(&plan);
        assert_eq!(fused.stages.len(), 1);
        assert_eq!(fused.shape(), "[Map+Filter]");
        assert_eq!(fused.stages[0].width(), 2);
        assert!(fused.stages[0].filters());
        assert_eq!(fused.identity.as_deref(), Some("view:v@1"));
    }

    #[test]
    fn serde_roundtrip() {
        let plan = SemanticPlan::filter_then_map("f", "m");
        let json = serde_json::to_string(&plan).unwrap();
        let back: SemanticPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
