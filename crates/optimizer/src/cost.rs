//! The cost model: calibrated per-token/per-call latency estimation.
//!
//! SPEAR's optimizer decisions (fusion, refinement planning, view
//! selection) need latency estimates before running anything. The model is
//! linear in the same four components the serving stack exposes —
//! per-request overhead, uncached prefill, cached prefill, decode — and is
//! **calibrated online** from observed `(usage, latency)` pairs by ordinary
//! least squares, so it tracks whatever backend is actually attached.

use std::time::Duration;

use spear_core::metadata::TokenUsage;

/// One calibration observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostObservation {
    /// Token usage of the call.
    pub usage: TokenUsage,
    /// Observed latency.
    pub latency: Duration,
}

/// A linear latency model: `overhead + a·uncached + b·cached + c·decode`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-call overhead, µs.
    pub overhead_us: f64,
    /// Per uncached prompt token, µs.
    pub prefill_us: f64,
    /// Per cached prompt token, µs.
    pub cached_us: f64,
    /// Per decoded token, µs.
    pub decode_us: f64,
}

impl Default for CostModel {
    /// Uncalibrated defaults in the ballpark of a 7B model on one GPU.
    fn default() -> Self {
        Self {
            overhead_us: 50_000.0,
            prefill_us: 1_000.0,
            cached_us: 20.0,
            decode_us: 25_000.0,
        }
    }
}

impl CostModel {
    /// Estimated latency for one call.
    #[must_use]
    pub fn estimate_call(&self, uncached: f64, cached: f64, decode: f64) -> Duration {
        let us = self.overhead_us
            + uncached * self.prefill_us
            + cached * self.cached_us
            + decode * self.decode_us;
        Duration::from_micros(us.max(0.0) as u64)
    }

    /// Fit the model by least squares over `observations`. Requires at
    /// least 4 observations with linearly independent feature rows; returns
    /// `None` otherwise (caller keeps its previous/default model).
    #[must_use]
    pub fn fit(observations: &[CostObservation]) -> Option<Self> {
        if observations.len() < 4 {
            return None;
        }
        // Normal equations for X^T X w = X^T y with features
        // [1, uncached, cached, decode].
        let mut xtx = [[0.0f64; 4]; 4];
        let mut xty = [0.0f64; 4];
        for obs in observations {
            let u = (obs.usage.prompt_tokens - obs.usage.cached_tokens) as f64;
            let c = obs.usage.cached_tokens as f64;
            let d = obs.usage.completion_tokens as f64;
            let x = [1.0, u, c, d];
            let y = obs.latency.as_micros() as f64;
            for i in 0..4 {
                for j in 0..4 {
                    xtx[i][j] += x[i] * x[j];
                }
                xty[i] += x[i] * y;
            }
        }
        // Tiny ridge term keeps the solve stable when a feature never
        // varies (e.g. no cached tokens observed yet).
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += 1e-6;
        }
        let w = solve4(xtx, xty)?;
        Some(Self {
            overhead_us: w[0].max(0.0),
            prefill_us: w[1].max(0.0),
            cached_us: w[2].max(0.0),
            decode_us: w[3].max(0.0),
        })
    }
}

/// Solve a 4×4 linear system by Gaussian elimination with partial pivoting.
fn solve4(mut a: [[f64; 4]; 4], mut b: [f64; 4]) -> Option<[f64; 4]> {
    for col in 0..4 {
        // Pivot.
        let pivot = (col..4).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate.
        for row in 0..4 {
            if row == col {
                continue;
            }
            let factor = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (k, pivot_val) in pivot_row.iter().enumerate().skip(col) {
                a[row][k] -= factor * pivot_val;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0; 4];
    for (i, xi) in x.iter_mut().enumerate() {
        *xi = b[i] / a[i][i];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(overhead: f64, prefill: f64, cached: f64, decode: f64) -> Vec<CostObservation> {
        let mut out = Vec::new();
        for (u, c, d) in [
            (100u64, 0u64, 50u64),
            (400, 0, 90),
            (50, 800, 90),
            (30, 600, 40),
            (800, 100, 10),
            (10, 10, 200),
            (250, 250, 60),
        ] {
            let us = overhead + u as f64 * prefill + c as f64 * cached + d as f64 * decode;
            out.push(CostObservation {
                usage: TokenUsage {
                    prompt_tokens: u + c,
                    cached_tokens: c,
                    completion_tokens: d,
                },
                latency: Duration::from_micros(us as u64),
            });
        }
        out
    }

    #[test]
    fn fit_recovers_known_coefficients() {
        let obs = synth(50_000.0, 1_000.0, 20.0, 25_000.0);
        let m = CostModel::fit(&obs).unwrap();
        assert!((m.overhead_us - 50_000.0).abs() < 50.0, "{m:?}");
        assert!((m.prefill_us - 1_000.0).abs() < 5.0);
        assert!((m.cached_us - 20.0).abs() < 5.0);
        assert!((m.decode_us - 25_000.0).abs() < 50.0);
    }

    #[test]
    fn estimate_matches_linear_form() {
        let m = CostModel::default();
        let est = m.estimate_call(100.0, 200.0, 50.0);
        let expect = 50_000.0 + 100.0 * 1_000.0 + 200.0 * 20.0 + 50.0 * 25_000.0;
        assert_eq!(est, Duration::from_micros(expect as u64));
    }

    #[test]
    fn too_few_observations_returns_none() {
        let obs = synth(1.0, 1.0, 1.0, 1.0);
        assert!(CostModel::fit(&obs[..3]).is_none());
    }

    #[test]
    fn degenerate_feature_matrix_is_handled() {
        // All-identical observations: ridge keeps the solve finite; the fit
        // may fold costs into the intercept but must not return garbage
        // (negative coefficients are clamped).
        let one = CostObservation {
            usage: TokenUsage {
                prompt_tokens: 100,
                cached_tokens: 0,
                completion_tokens: 10,
            },
            latency: Duration::from_micros(500_000),
        };
        let obs = vec![one; 6];
        if let Some(m) = CostModel::fit(&obs) {
            let est = m.estimate_call(100.0, 0.0, 10.0);
            assert!(
                (est.as_micros() as i64 - 500_000).abs() < 5_000,
                "fit must still explain the data: {est:?}"
            );
        }
    }

    #[test]
    fn fit_from_simulated_engine_tracks_profile() {
        use spear_core::llm::{GenRequest, LlmClient};
        use spear_llm::{ModelProfile, SimLlm};
        let llm = SimLlm::new(ModelProfile::qwen25_7b_instruct());
        let mut obs = Vec::new();
        for i in 0..12 {
            let filler = "context sentence to vary prompt length. ".repeat(i * 3 + 1);
            let req = GenRequest::structured(
                format!("Classify the sentiment.\n{filler}\nTweet: sample {i}"),
                format!("view:x@1#{i}/v1"),
            );
            let resp = llm.generate(&req).unwrap();
            obs.push(CostObservation {
                usage: resp.usage,
                latency: resp.latency,
            });
        }
        let m = CostModel::fit(&obs).unwrap();
        // Prefill dominates variation here; the fitted rate should be near
        // the profile's 1000 µs/token.
        assert!((m.prefill_us - 1_000.0).abs() < 150.0, "{m:?}");
    }
}
