//! GEN-to-GEN fusion over core pipelines (paper §5, "Operator Fusion",
//! first paragraph).
//!
//! "When fusing adjacent GEN operations, SPEAR distinguishes between
//! semantically coupled and independent use cases. When GENs share context,
//! such as generating multiple sections from the same view, they can be
//! fused into a single prompt to reduce token duplication and improve
//! coherence." This module finds runs of adjacent GENs that read the *same
//! stored prompt* and rewrites them into:
//!
//! 1. a `REF[APPEND]` adding a sectioning instruction to the shared prompt
//!    (recorded in its ref_log like any other refinement),
//! 2. one fused `GEN` producing all sections, and
//! 3. a `REF` with the built-in `split_sections` refiner distributing the
//!    sections back to the labels the original GENs would have written —
//!    downstream operators are unaffected.
//!
//! Independent GENs (different prompts, inline prompts, anything separated
//! by other operators) are never touched: fusing those "may degrade
//! accuracy and hinder retries or evaluation" (§5).

use std::time::Duration;

use spear_core::history::{RefAction, RefinementMode};
use spear_core::llm::GenOptions;
use spear_core::ops::{Op, PromptRef};
use spear_core::pipeline::Pipeline;
use spear_core::value::{map, Value};

use crate::cost::CostModel;

/// Section separator the fused prompt asks for and the splitter parses.
pub const SECTION_SEPARATOR: &str = "\n===\n";

/// A fusable run of adjacent shared-context GENs.
#[derive(Debug, Clone, PartialEq)]
pub struct GenFusionOpportunity {
    /// Index of the first GEN in the pipeline's top-level ops.
    pub start: usize,
    /// Number of fused GENs (≥ 2).
    pub len: usize,
    /// The shared prompt key.
    pub prompt_key: String,
    /// Labels the GENs write, in order.
    pub labels: Vec<String>,
    /// Estimated saving from fusing this run.
    pub estimated_saving: Duration,
}

/// Estimate the saving of collapsing `run_len` calls over a shared prompt
/// of `prompt_tokens` into one. With prefix caching
/// (`cached_after_first = true`) repeat calls already reuse the prompt, so
/// fusion saves only per-call overhead plus cached re-reads; without it,
/// fusion additionally saves whole prompt prefills.
#[must_use]
pub fn estimate_saving(
    model: &CostModel,
    run_len: usize,
    prompt_tokens: f64,
    cached_after_first: bool,
) -> Duration {
    if run_len < 2 {
        return Duration::ZERO;
    }
    let repeats = (run_len - 1) as f64;
    let per_repeat_prefill = if cached_after_first {
        prompt_tokens * model.cached_us
    } else {
        prompt_tokens * model.prefill_us
    };
    Duration::from_micros((repeats * (model.overhead_us + per_repeat_prefill)) as u64)
}

fn gen_key(op: &Op) -> Option<(&str, &str)> {
    match op {
        Op::Gen {
            label,
            prompt: PromptRef::Key(k),
            ..
        } => Some((k.as_str(), label.as_str())),
        _ => None,
    }
}

/// Find every fusable run in the pipeline's top-level operator sequence.
/// (CHECK branches are intentionally not descended into: their GENs run
/// conditionally, so fusing across them would change semantics.)
#[must_use]
pub fn find_opportunities(
    pipeline: &Pipeline,
    model: &CostModel,
    prompt_tokens_estimate: f64,
    cached_after_first: bool,
) -> Vec<GenFusionOpportunity> {
    let mut out = Vec::new();
    let ops = &pipeline.ops;
    let mut i = 0;
    while i < ops.len() {
        let Some((key, first_label)) = gen_key(&ops[i]) else {
            i += 1;
            continue;
        };
        let mut labels = vec![first_label.to_string()];
        let mut j = i + 1;
        while j < ops.len() {
            match gen_key(&ops[j]) {
                Some((k, label)) if k == key => {
                    labels.push(label.to_string());
                    j += 1;
                }
                _ => break,
            }
        }
        if labels.len() >= 2 {
            out.push(GenFusionOpportunity {
                start: i,
                len: labels.len(),
                prompt_key: key.to_string(),
                estimated_saving: estimate_saving(
                    model,
                    labels.len(),
                    prompt_tokens_estimate,
                    cached_after_first,
                ),
                labels,
            });
        }
        i = j.max(i + 1);
    }
    out
}

/// Rewrite the pipeline, fusing every opportunity. Returns the transformed
/// pipeline and the number of runs fused.
#[must_use]
pub fn fuse_pipeline(pipeline: &Pipeline) -> (Pipeline, usize) {
    // Opportunities are detected structurally; the cost model is not
    // consulted here (callers gate on `find_opportunities` if they want
    // cost-based gating).
    let opportunities = find_opportunities(pipeline, &CostModel::default(), 0.0, true);
    if opportunities.is_empty() {
        return (pipeline.clone(), 0);
    }
    let mut ops = Vec::with_capacity(pipeline.ops.len());
    let mut fused_runs = 0;
    let mut i = 0;
    while i < pipeline.ops.len() {
        if let Some(opp) = opportunities.iter().find(|o| o.start == i) {
            fused_runs += 1;
            let fused_label = format!("fused:{}", opp.labels.join("+"));
            // Collect per-GEN options to size the fused decode budget.
            let max_tokens: u32 = pipeline.ops[i..i + opp.len]
                .iter()
                .map(|op| match op {
                    Op::Gen { options, .. } => options.max_tokens,
                    _ => 0,
                })
                .sum();
            ops.push(Op::Ref {
                target: opp.prompt_key.clone(),
                action: RefAction::Append,
                refiner: "append".to_string(),
                args: Value::from(format!(
                    "Produce one section per requested output, in this order: {}. \
                     Separate sections with a line containing exactly '==='.",
                    opp.labels.join(", ")
                )),
                mode: RefinementMode::Auto,
            });
            ops.push(Op::Gen {
                label: fused_label.clone(),
                prompt: PromptRef::Key(opp.prompt_key.clone()),
                options: GenOptions {
                    max_tokens: max_tokens.max(1),
                    ..GenOptions::default()
                },
            });
            ops.push(Op::Ref {
                target: opp.prompt_key.clone(),
                action: RefAction::Update,
                refiner: "split_sections".to_string(),
                args: map([
                    ("from", Value::from(fused_label)),
                    (
                        "into",
                        Value::List(opp.labels.iter().map(|l| Value::from(l.clone())).collect()),
                    ),
                    ("separator", Value::from(SECTION_SEPARATOR)),
                ]),
                mode: RefinementMode::Auto,
            });
            i += opp.len;
        } else {
            ops.push(pipeline.ops[i].clone());
            i += 1;
        }
    }
    (
        Pipeline {
            name: format!("{}+gen_fused", pipeline.name),
            ops,
        },
        fused_runs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_core::prelude::*;
    use std::sync::Arc;

    fn pipeline_with_shared_gens() -> Pipeline {
        Pipeline::builder("sections")
            .create_text(
                "report_view",
                "Write the requested outputs about the case.",
                RefinementMode::Manual,
            )
            .gen("findings", "report_view")
            .gen("impression", "report_view")
            .gen("unrelated", "other_prompt")
            .build()
    }

    #[test]
    fn finds_shared_context_runs_only() {
        let p = pipeline_with_shared_gens();
        let opps = find_opportunities(&p, &CostModel::default(), 100.0, true);
        assert_eq!(opps.len(), 1);
        assert_eq!(opps[0].prompt_key, "report_view");
        assert_eq!(opps[0].labels, vec!["findings", "impression"]);
        assert!(opps[0].estimated_saving > Duration::ZERO);
    }

    #[test]
    fn independent_gens_are_untouched() {
        let p = Pipeline::builder("independent")
            .gen("a", "prompt_one")
            .gen("b", "prompt_two")
            .gen("c", "prompt_one")
            .build();
        assert!(find_opportunities(&p, &CostModel::default(), 100.0, true).is_empty());
        let (fused, runs) = fuse_pipeline(&p);
        assert_eq!(runs, 0);
        assert_eq!(fused.ops, p.ops);
    }

    #[test]
    fn checks_break_runs() {
        let p = Pipeline::builder("gated")
            .gen("a", "shared")
            .check(Cond::Always, |b| b.gen("hidden", "shared"))
            .gen("b", "shared")
            .build();
        assert!(
            find_opportunities(&p, &CostModel::default(), 100.0, true).is_empty(),
            "a CHECK between GENs makes fusion unsafe"
        );
    }

    #[test]
    fn saving_is_larger_without_prefix_caching() {
        let m = CostModel::default();
        let with_cache = estimate_saving(&m, 3, 400.0, true);
        let without = estimate_saving(&m, 3, 400.0, false);
        assert!(without > with_cache);
        assert_eq!(estimate_saving(&m, 1, 400.0, false), Duration::ZERO);
    }

    #[test]
    fn fused_pipeline_reproduces_the_original_context_keys() {
        // A scripted backend emits a properly sectioned fused response.
        let llm = ScriptedLlm::new(vec![ScriptedLlm::response(
            "the findings section\n===\nthe impression section",
            0.9,
        )]);
        let rt = Runtime::builder().llm(Arc::new(llm)).build();

        let original = Pipeline::builder("sections")
            .create_text("report_view", "Write the outputs.", RefinementMode::Manual)
            .gen("findings", "report_view")
            .gen("impression", "report_view")
            .build();
        let (fused, runs) = fuse_pipeline(&original);
        assert_eq!(runs, 1);

        let mut state = ExecState::new();
        let report = rt.execute(&fused, &mut state).unwrap();
        assert_eq!(report.gens, 1, "one fused call instead of two");
        assert_eq!(
            state.context.get("findings").unwrap().as_str(),
            Some("the findings section")
        );
        assert_eq!(
            state.context.get("impression").unwrap().as_str(),
            Some("the impression section")
        );
        // The sectioning instruction is a recorded refinement on the prompt.
        let entry = state.prompts.get("report_view").unwrap();
        assert!(entry.text.contains("one section per requested output"));
        assert!(entry.ref_log.len() >= 2);
    }

    #[test]
    fn fusion_reduces_measured_latency_on_the_simulator() {
        use spear_llm::{ModelProfile, SimLlm};
        let original = Pipeline::builder("sections")
            .create_text(
                "report_view",
                "Write the requested outputs about the case in plain prose \
                 with every relevant detail included for the reader.",
                RefinementMode::Manual,
            )
            .gen("first", "report_view")
            .gen("second", "report_view")
            .build();
        let (fused, _) = fuse_pipeline(&original);

        let run = |p: &Pipeline| {
            let rt = Runtime::builder()
                .llm(Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct())))
                .build();
            let mut state = ExecState::new();
            rt.execute(p, &mut state).unwrap()
        };
        let seq = run(&original);
        let fus = run(&fused);
        assert!(fus.gens < seq.gens);
        assert!(
            fus.latency < seq.latency,
            "fused {:?} vs sequential {:?}",
            fus.latency,
            seq.latency
        );
    }
}
