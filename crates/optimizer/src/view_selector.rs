//! View-guided refinement: cost-based base-view selection (paper §5).
//!
//! "Prompts are not built from scratch but derived from reusable base views
//! with lightweight, task-specific refinements ... When multiple views are
//! available, SPEAR can employ cost-based selection to identify the best
//! starting point, e.g., the view that minimizes refinement effort or token
//! cost." The effort estimate is lexical distance between the task
//! description and each view's template (1 − Jaccard, scaled by template
//! size); warm structured-cache entries discount a view further because
//! their rendered prefixes are already resident in the serving cache.

use serde::{Deserialize, Serialize};
use spear_core::diff::jaccard_words;
use spear_core::view::ViewCatalog;

use crate::prompt_cache::StructuredPromptCache;

/// Scoring weights for view selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectorWeights {
    /// Cost per estimated refinement token.
    pub refinement_token_cost: f64,
    /// Discount applied when the view is warm in the structured cache
    /// (subtracted from the cost).
    pub warm_cache_discount: f64,
}

impl Default for SelectorWeights {
    fn default() -> Self {
        Self {
            refinement_token_cost: 1.0,
            warm_cache_discount: 25.0,
        }
    }
}

/// A scored candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewChoice {
    /// View name.
    pub view: String,
    /// Estimated refinement effort in tokens (lower is better).
    pub est_refinement_tokens: f64,
    /// Whether the structured prompt cache already holds renderings.
    pub cache_warm: bool,
    /// Final cost (effort − warm discount); selection minimizes this.
    pub cost: f64,
}

/// Approximate token count of a template (words ≈ tokens at this scale).
fn template_tokens(template: &str) -> f64 {
    template.split_whitespace().count() as f64
}

/// Estimated tokens of refinement needed to adapt `template` to `task`:
/// lexical distance scaled by how much text would need touching, plus the
/// task's own novel content.
#[must_use]
pub fn refinement_effort(task_description: &str, template: &str) -> f64 {
    let sim = jaccard_words(task_description, template);
    let task_tokens = template_tokens(task_description);
    (1.0 - sim) * (template_tokens(template) * 0.3 + task_tokens)
}

/// Score every view in `catalog` against `task_description`; best first.
#[must_use]
pub fn rank_views(
    catalog: &ViewCatalog,
    task_description: &str,
    cache: Option<&StructuredPromptCache>,
    weights: &SelectorWeights,
) -> Vec<ViewChoice> {
    let mut out: Vec<ViewChoice> = catalog
        .names()
        .into_iter()
        .filter_map(|name| {
            let view = catalog.get(&name).ok()?;
            let effort = refinement_effort(task_description, &view.template);
            let warm = cache.is_some_and(|c| c.is_view_warm(&name));
            let cost = effort * weights.refinement_token_cost
                - if warm {
                    weights.warm_cache_discount
                } else {
                    0.0
                };
            Some(ViewChoice {
                view: name,
                est_refinement_tokens: effort,
                cache_warm: warm,
                cost,
            })
        })
        .collect();
    out.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.view.cmp(&b.view))
    });
    out
}

/// The single best view for `task_description`, if any view exists.
#[must_use]
pub fn select_view(
    catalog: &ViewCatalog,
    task_description: &str,
    cache: Option<&StructuredPromptCache>,
) -> Option<ViewChoice> {
    rank_views(
        catalog,
        task_description,
        cache,
        &SelectorWeights::default(),
    )
    .into_iter()
    .next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_core::view::ViewDef;

    fn catalog() -> ViewCatalog {
        let c = ViewCatalog::new();
        c.register(ViewDef::new(
            "tweet_sentiment",
            "Classify the sentiment of the tweet as positive or negative. \
             Respond with one word. Tweet: {{ctx:tweet}}",
        ));
        c.register(ViewDef::new(
            "med_summary",
            "Summarize the patient's medication history and highlight any use \
             of {{drug}}. Notes: {{ctx:notes}}",
        ));
        c.register(ViewDef::new(
            "radiology_summary",
            "Summarize the imaging findings and impression of the radiology \
             report. Report: {{ctx:report}}",
        ));
        c
    }

    #[test]
    fn closest_view_wins() {
        let c = catalog();
        let choice = select_view(&c, "classify the sentiment of school tweets", None).unwrap();
        assert_eq!(choice.view, "tweet_sentiment");

        let choice = select_view(&c, "summarize medication history for enoxaparin", None).unwrap();
        assert_eq!(choice.view, "med_summary");
    }

    #[test]
    fn warm_cache_breaks_near_ties() {
        let c = ViewCatalog::new();
        c.register(ViewDef::new("a", "summarize the findings of the report"));
        c.register(ViewDef::new("b", "summarize the findings of the study"));
        let cache = StructuredPromptCache::new();
        cache.insert(Some("b"), 0x1, 1, "rendered");
        let ranked = rank_views(
            &c,
            "summarize the findings",
            Some(&cache),
            &SelectorWeights::default(),
        );
        assert_eq!(ranked[0].view, "b");
        assert!(ranked[0].cache_warm);
        assert!(!ranked[1].cache_warm);
    }

    #[test]
    fn effort_is_zero_for_identical_text_and_positive_otherwise() {
        assert_eq!(refinement_effort("classify tweets", "classify tweets"), 0.0);
        assert!(refinement_effort("classify tweets", "summarize notes") > 0.0);
    }

    #[test]
    fn empty_catalog_selects_nothing() {
        assert!(select_view(&ViewCatalog::new(), "anything", None).is_none());
    }

    #[test]
    fn ranking_is_deterministic_and_complete() {
        let c = catalog();
        let r1 = rank_views(&c, "task", None, &SelectorWeights::default());
        let r2 = rank_views(&c, "task", None, &SelectorWeights::default());
        assert_eq!(r1.len(), 3);
        assert_eq!(
            r1.iter().map(|v| v.view.clone()).collect::<Vec<_>>(),
            r2.iter().map(|v| v.view.clone()).collect::<Vec<_>>()
        );
    }
}
