//! Cost-based refinement planning (paper §5).
//!
//! "SPEAR performs cost-based planning over refinements ... the system
//! learns which refiners consistently improve output quality, and at what
//! cost. Using these insights, SPEAR can dynamically prioritize or reorder
//! refiners, skip low-impact updates, and apply only those that maximize
//! utility under task-specific constraints (e.g., token budgets or latency
//! thresholds)."
//!
//! Profiles come from the ref_log mining in `spear_core::meta` joined with
//! observed costs; the planner greedily selects refiners by utility density
//! (gain per unit cost) under token/latency budgets — the classic knapsack
//! heuristic, which is exact enough here because refiner sets are small.

use serde::{Deserialize, Serialize};
use spear_core::meta::RefinerStats;

/// A refiner's learned utility/cost profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefinerProfile {
    /// Refiner (function) name.
    pub name: String,
    /// Mean confidence gain per application (from ref_log mining).
    pub avg_gain: f64,
    /// Mean extra prompt tokens an application adds downstream.
    pub token_cost: f64,
    /// Mean latency an application adds (its own LLM calls, if any), µs.
    pub latency_us: f64,
}

impl RefinerProfile {
    /// Join mined [`RefinerStats`] with observed costs. Unmeasured refiners
    /// (no before/after confidence pairs) get `avg_gain = 0` and will only
    /// be selected if the caller's `min_gain` admits them.
    #[must_use]
    pub fn from_stats(stats: &RefinerStats, token_cost: f64, latency_us: f64) -> Self {
        Self {
            name: stats.f_name.clone(),
            avg_gain: stats.avg_gain.unwrap_or(0.0),
            token_cost,
            latency_us,
        }
    }

    /// Utility density: gain per combined unit of cost. The combination
    /// normalizes tokens and latency so neither dominates by unit choice.
    #[must_use]
    pub fn density(&self) -> f64 {
        let cost = 1.0 + self.token_cost / 100.0 + self.latency_us / 1e6;
        self.avg_gain / cost
    }
}

/// Budgets for one planning episode.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Budget {
    /// Maximum extra prompt tokens allowed (None = unbounded).
    pub max_tokens: Option<f64>,
    /// Maximum extra latency allowed, µs (None = unbounded).
    pub max_latency_us: Option<f64>,
}

/// The planned refiner sequence with its expected totals.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementPlan {
    /// Selected refiner names, in application order (best density first).
    pub refiners: Vec<String>,
    /// Expected total confidence gain.
    pub expected_gain: f64,
    /// Expected total token cost.
    pub expected_tokens: f64,
    /// Expected total latency, µs.
    pub expected_latency_us: f64,
    /// Refiners skipped as low-impact (`avg_gain < min_gain`).
    pub skipped_low_impact: Vec<String>,
}

/// Plan a refiner sequence: skip low-impact refiners, order the rest by
/// utility density, and take while budgets allow.
#[must_use]
pub fn plan(profiles: &[RefinerProfile], budget: &Budget, min_gain: f64) -> RefinementPlan {
    let mut skipped_low_impact = Vec::new();
    let mut candidates: Vec<&RefinerProfile> = Vec::new();
    for p in profiles {
        if p.avg_gain < min_gain {
            skipped_low_impact.push(p.name.clone());
        } else {
            candidates.push(p);
        }
    }
    candidates.sort_by(|a, b| {
        b.density()
            .partial_cmp(&a.density())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });

    let mut plan = RefinementPlan {
        refiners: Vec::new(),
        expected_gain: 0.0,
        expected_tokens: 0.0,
        expected_latency_us: 0.0,
        skipped_low_impact,
    };
    for p in candidates {
        let tokens = plan.expected_tokens + p.token_cost;
        let latency = plan.expected_latency_us + p.latency_us;
        if budget.max_tokens.is_some_and(|max| tokens > max)
            || budget.max_latency_us.is_some_and(|max| latency > max)
        {
            continue; // this refiner does not fit; try cheaper ones
        }
        plan.refiners.push(p.name.clone());
        plan.expected_gain += p.avg_gain;
        plan.expected_tokens = tokens;
        plan.expected_latency_us = latency;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> Vec<RefinerProfile> {
        vec![
            RefinerProfile {
                name: "add_hint".into(),
                avg_gain: 0.12,
                token_cost: 15.0,
                latency_us: 0.0,
            },
            RefinerProfile {
                name: "inject_example".into(),
                avg_gain: 0.15,
                token_cost: 120.0,
                latency_us: 0.0,
            },
            RefinerProfile {
                name: "llm_rewrite".into(),
                avg_gain: 0.10,
                token_cost: 40.0,
                latency_us: 2_000_000.0,
            },
            RefinerProfile {
                name: "generic_rewriter".into(),
                avg_gain: -0.02,
                token_cost: 30.0,
                latency_us: 0.0,
            },
        ]
    }

    #[test]
    fn low_impact_refiners_are_skipped() {
        let p = plan(&profiles(), &Budget::default(), 0.0);
        assert_eq!(p.skipped_low_impact, vec!["generic_rewriter".to_string()]);
        assert!(!p.refiners.contains(&"generic_rewriter".to_string()));
    }

    #[test]
    fn ordering_is_by_utility_density() {
        let p = plan(&profiles(), &Budget::default(), 0.0);
        // add_hint: 0.12/1.15 ≈ 0.104; inject_example: 0.15/2.2 ≈ 0.068;
        // llm_rewrite: 0.10/3.4 ≈ 0.029.
        assert_eq!(
            p.refiners,
            vec!["add_hint", "inject_example", "llm_rewrite"]
        );
        assert!((p.expected_gain - 0.37).abs() < 1e-9);
    }

    #[test]
    fn token_budget_excludes_expensive_refiners_but_keeps_cheaper_later_ones() {
        let p = plan(
            &profiles(),
            &Budget {
                max_tokens: Some(60.0),
                max_latency_us: None,
            },
            0.0,
        );
        // inject_example (120 tokens) does not fit; add_hint (15) and
        // llm_rewrite (40) together stay under 60.
        assert_eq!(p.refiners, vec!["add_hint", "llm_rewrite"]);
        assert!(p.expected_tokens <= 60.0);
    }

    #[test]
    fn latency_budget_is_enforced() {
        let p = plan(
            &profiles(),
            &Budget {
                max_tokens: None,
                max_latency_us: Some(1_000_000.0),
            },
            0.0,
        );
        assert!(!p.refiners.contains(&"llm_rewrite".to_string()));
    }

    #[test]
    fn min_gain_threshold_raises_the_bar() {
        let p = plan(&profiles(), &Budget::default(), 0.11);
        assert_eq!(p.refiners, vec!["add_hint", "inject_example"]);
        assert_eq!(p.skipped_low_impact.len(), 2);
    }

    #[test]
    fn empty_profiles_yield_empty_plan() {
        let p = plan(&[], &Budget::default(), 0.0);
        assert!(p.refiners.is_empty());
        assert_eq!(p.expected_gain, 0.0);
    }

    #[test]
    fn from_stats_joins_mined_data() {
        let stats = RefinerStats {
            f_name: "auto_refine".into(),
            applications: 10,
            measured: 8,
            avg_confidence_before: Some(0.5),
            avg_confidence_after: Some(0.72),
            avg_gain: Some(0.22),
            by_mode: std::collections::BTreeMap::new(),
        };
        let p = RefinerProfile::from_stats(&stats, 20.0, 0.0);
        assert_eq!(p.name, "auto_refine");
        assert!((p.avg_gain - 0.22).abs() < 1e-12);
        assert!(p.density() > 0.0);
    }
}
