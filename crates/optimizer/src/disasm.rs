//! Disassembler for compiled bytecode programs.
//!
//! [`disasm`] renders a [`spear_core::Program`] — the output of
//! `spear_core::vm::compile` — as a stable, human-readable listing:
//! the instruction stream first (fused superinstructions spelled with a
//! `+`, branch targets resolved to slot numbers, pool operands by index)
//! and then the constant pool itself (interned strings, leaf specs, check
//! specs). The format is pinned byte-exact by the `disasm_golden`
//! integration tests, so it doubles as the specification of the bytecode
//! encoding: any change to opcode layout, fusion rules, or pool interning
//! shows up as a golden-test diff.
//!
//! The listing shares [`PlanWriter`](crate::explain) with the EXPLAIN
//! renderers, so slot lines and indentation match `explain_lowered`'s
//! view of the same plan.

use spear_core::analysis::{analyze, Interval, ResourceModel};
use spear_core::vm::{Program, VmOp};

use crate::explain::PlanWriter;

/// Render `program` as a deterministic disassembly listing.
#[must_use]
pub fn disasm(program: &Program) -> String {
    let pool = program.pool();
    let mut w = PlanWriter::new();
    w.line(format_args!(
        "DISASSEMBLY OF PROGRAM {:?}  ({} source ops, {} instructions)",
        program.name(),
        program.source_size(),
        program.code().len(),
    ));
    for (pc, instr) in program.code().iter().enumerate() {
        match *instr {
            VmOp::Leaf { leaf } => {
                w.slot(
                    pc,
                    format_args!(
                        "LEAF           l{leaf:02}                  ; {}",
                        pool.str(pool.leaves()[leaf as usize].describe_id())
                    ),
                );
            }
            VmOp::Check { check, on_false } => {
                w.slot(
                    pc,
                    format_args!(
                        "CHECK          c{check:02}  else -> {on_false:04}  ; {}",
                        pool.str(pool.checks()[check as usize].label_id())
                    ),
                );
            }
            VmOp::Jump { target } => {
                w.slot(pc, format_args!("JUMP           -> {target:04}"));
            }
            VmOp::GenCheck {
                leaf,
                check,
                on_false,
            } => {
                w.slot(
                    pc,
                    format_args!(
                        "GEN+CHECK      l{leaf:02} c{check:02}  else -> {on_false:04}  ; {} ; {}",
                        pool.str(pool.leaves()[leaf as usize].describe_id()),
                        pool.str(pool.checks()[check as usize].label_id())
                    ),
                );
            }
            VmOp::DelegateJump { leaf, target } => {
                w.slot(
                    pc,
                    format_args!(
                        "DELEGATE+JUMP  l{leaf:02}  -> {target:04}     ; {}",
                        pool.str(pool.leaves()[leaf as usize].describe_id())
                    ),
                );
            }
            VmOp::RetMerge { first, second } => {
                w.slot(
                    pc,
                    format_args!(
                        "RET+MERGE      l{first:02} l{second:02}              ; {} ; {}",
                        pool.str(pool.leaves()[first as usize].describe_id()),
                        pool.str(pool.leaves()[second as usize].describe_id())
                    ),
                );
            }
        }
    }
    w.line(format_args!(
        "CONST POOL  ({} strings, {} leaves, {} checks)",
        pool.strings().len(),
        pool.leaves().len(),
        pool.checks().len(),
    ));
    w.detail(0, format_args!("strings:"));
    for (id, s) in pool.strings().iter().enumerate() {
        w.detail(1, format_args!("s{id:02}  {s:?}"));
    }
    w.detail(0, format_args!("leaves:"));
    for (id, leaf) in pool.leaves().iter().enumerate() {
        w.detail(
            1,
            format_args!(
                "l{id:02}  describe=s{:02}  trigger={}  frames={}  template={}",
                leaf.describe_id(),
                leaf.trigger_id()
                    .map_or_else(|| "-".to_owned(), |t| format!("s{t:02}")),
                frames(leaf.frame_ids()),
                if leaf.has_template() { "parsed" } else { "-" },
            ),
        );
    }
    w.detail(0, format_args!("checks:"));
    for (id, check) in pool.checks().iter().enumerate() {
        w.detail(
            1,
            format_args!(
                "c{id:02}  label=s{:02}  frames={}",
                check.label_id(),
                frames(check.frame_ids()),
            ),
        );
    }
    let bounds = analyze(program, &ResourceModel::default());
    w.line(format_args!(
        "STATIC BOUNDS  tokens={} llm_calls={} latency>={}us unwind<={}{}",
        bounds.tokens,
        bounds.llm_calls,
        bounds.latency_lo_us,
        bounds.unwind_depth,
        if bounds.terminates {
            ""
        } else {
            "  (may not terminate)"
        },
    ));
    for (pc, per_op) in bounds.per_op.iter().enumerate() {
        match per_op {
            Some(b) if b.tokens != Interval::exact(0) || b.llm_calls != Interval::exact(0) => {
                w.detail(
                    1,
                    format_args!(
                        "{pc:04}  tokens={} llm_calls={} latency>={}us",
                        b.tokens, b.llm_calls, b.latency_lo_us
                    ),
                );
            }
            Some(_) => {}
            None => {
                w.detail(1, format_args!("{pc:04}  unreachable"));
            }
        }
    }
    if let Some(prefix) = program.prefix() {
        w.line(format_args!("SPECIALIZED PREFIX  {prefix:?}"));
    }
    w.finish()
}

/// `[s00, s03]`-style rendering of a spec's unwind-frame indices, shared
/// by the leaf and check pool sections.
fn frames(ids: &[u32]) -> String {
    let body = ids
        .iter()
        .map(|id| format!("s{id:02}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{body}]")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_core::prelude::*;

    #[test]
    fn listing_covers_every_instruction_and_pool_entry() {
        let pipeline = Pipeline::builder("d")
            .create_text("p", "Q: {{q}}", RefinementMode::Manual)
            .gen("a", "p")
            .check_else(
                Cond::low_confidence(0.5),
                |t| t.gen("b", "p"),
                |e| e.gen("c", "p"),
            )
            .build();
        let plan = lower(&pipeline).expect("lowers");
        let program = spear_core::compile(&plan).expect("verified plan compiles");
        let text = disasm(&program);
        assert!(text.starts_with("DISASSEMBLY OF PROGRAM \"d\""));
        // Every slot is listed exactly once.
        for pc in 0..program.code().len() {
            assert!(text.contains(&format!("  {pc:04}  ")), "missing slot {pc}");
        }
        assert!(text.contains("CONST POOL"));
        assert!(text.contains("strings:"));
        assert!(text.contains("leaves:"));
        assert!(text.contains("checks:"));
    }

    #[test]
    fn specialized_prefix_is_rendered_when_present() {
        let pipeline = Pipeline::builder("s")
            .create_text("p", "fixed: {{q}}", RefinementMode::Manual)
            .gen("a", "p")
            .build();
        let plan = lower(&pipeline).expect("lowers");
        let mut program = spear_core::compile(&plan).expect("verified plan compiles");
        assert!(!disasm(&program).contains("SPECIALIZED PREFIX"));
        program.set_prefix(std::sync::Arc::from("fixed: "));
        assert!(disasm(&program).contains("SPECIALIZED PREFIX  \"fixed: \""));
    }
}
