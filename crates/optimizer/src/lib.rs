//! # spear-optimizer — query-engine-style optimizations for prompt pipelines
//!
//! Implements the optimization strategies of the SPEAR paper's §5:
//!
//! - [`plan`] / [`lowering`] / [`exec`] — semantic Map/Filter plans over
//!   item collections, lowered onto the core runtime's plan IR and executed
//!   there, with sequential (predicate-pushdown) and fused physical forms,
//! - [`fusion`] — **selectivity-aware operator fusion** decisions driven by
//!   the cost model, plus shared-context vs independent GEN classification,
//! - [`gen_fusion`] — fusing adjacent shared-context GENs in core pipelines
//!   into one sectioned call, with output redistribution,
//! - [`meta_opt`] — §4.4 meta-optimization: replacing underperforming
//!   refiners in pipelines based on mined ref_log evidence,
//! - [`explain`] — EXPLAIN-style plan rendering with cost estimates and
//!   optimization hints ("instrumented like query plans"),
//! - [`disasm`] — a byte-stable disassembler for compiled bytecode
//!   programs (instruction stream with fused superinstructions, plus the
//!   constant pool),
//! - [`cost`] — a linear latency [`cost::CostModel`] calibrated online by
//!   least squares from observed `(tokens, latency)` pairs,
//! - [`prompt_cache`] — the **structured prompt cache** indexed by view
//!   name, parameter hash, and refinement version,
//! - [`refinement_planner`] — **cost-based refinement planning**: rank
//!   refiners by learned utility density, skip low-impact ones, respect
//!   token/latency budgets,
//! - [`predictive`] — **predictive refinement**: a calibrated risk model
//!   that refines *before* generating when low confidence is anticipated,
//! - [`view_selector`] — **view-guided refinement**: cost-based selection
//!   of the base view minimizing refinement effort, warm-cache aware.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Hot-path hygiene: these crates sit on the per-request fast path, where a
// stray clone or to_string() is a real regression, not a style nit.
#![deny(clippy::redundant_clone, clippy::inefficient_to_string)]

pub mod cost;
pub mod disasm;
pub mod exec;
pub mod explain;
pub mod fusion;
pub mod gen_fusion;
pub mod lowering;
pub mod meta_opt;
pub mod plan;
pub mod predictive;
pub mod prompt_cache;
pub mod refinement_planner;
pub mod view_selector;

pub use cost::{CostModel, CostObservation};
pub use disasm::disasm;
pub use exec::{run_plan, run_plan_with, ItemOutcome, PlanRunOptions, PlanRunReport};
pub use explain::{
    explain, explain_lowered, explain_lowered_with_lints, ExplainAssumptions, PlanCost,
};
pub use fusion::{
    classify_adjacent, decide, FusionDecision, GenRelation, PlanEstimates, StageEstimate,
};
pub use gen_fusion::{find_opportunities, fuse_pipeline, GenFusionOpportunity};
pub use lowering::{lower_physical, to_pipeline};
pub use meta_opt::{replace_underperformers, AppliedSubstitution, MetaOptConfig, Substitute};
pub use plan::{PhysicalPlan, PhysicalStage, SemanticOp, SemanticPlan};
pub use predictive::{RiskModel, RiskSample, RiskWeights};
pub use prompt_cache::{CachedPrompt, PromptCacheStats, StructuredPromptCache};
pub use refinement_planner::{plan as plan_refinements, Budget, RefinementPlan, RefinerProfile};
pub use view_selector::{rank_views, select_view, SelectorWeights, ViewChoice};
