//! The structured prompt cache (paper §5 "Prefix Caching and Reuse").
//!
//! "SPEAR employs a structured prompt cache that indexes prompt fragments
//! and their rendered forms. This cache can be accessed by view name,
//! parameter hash, or refinement version." Token-level KV reuse lives in
//! the serving layer (`spear-llm`'s radix cache); this cache sits above it,
//! memoizing *rendered prompt strings* so retries, batched tasks with
//! shared scaffolds, and parameterized view calls skip re-rendering — and
//! so the runtime can warm the serving cache with exactly the fragments it
//! knows are stable.

use serde::{Deserialize, Serialize};
use spear_kv::KvStore;

/// A cached rendered prompt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedPrompt {
    /// The rendered text.
    pub rendered: String,
    /// Source view, when view-derived.
    pub view: Option<String>,
    /// Parameter hash of the instantiation.
    pub param_hash: u64,
    /// Refinement version of the entry that produced this rendering.
    pub version: u64,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PromptCacheStats {
    /// Lookup calls.
    pub lookups: u64,
    /// Lookups that found an entry.
    pub hits: u64,
}

/// Structured prompt cache keyed by `(view, param hash, version)` — or by
/// an arbitrary identity string for non-view prompts.
pub struct StructuredPromptCache {
    store: KvStore<CachedPrompt>,
    stats: parking_lot::Mutex<PromptCacheStats>,
}

impl Default for StructuredPromptCache {
    fn default() -> Self {
        Self::new()
    }
}

impl StructuredPromptCache {
    /// Empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            store: KvStore::new(),
            stats: parking_lot::Mutex::new(PromptCacheStats::default()),
        }
    }

    fn key(view: Option<&str>, param_hash: u64, version: u64) -> String {
        match view {
            Some(v) => format!("view/{v}/{param_hash:016x}/v{version}"),
            None => format!("adhoc/{param_hash:016x}/v{version}"),
        }
    }

    /// Insert a rendered prompt.
    pub fn insert(
        &self,
        view: Option<&str>,
        param_hash: u64,
        version: u64,
        rendered: impl Into<String>,
    ) {
        self.store.put(
            Self::key(view, param_hash, version),
            CachedPrompt {
                rendered: rendered.into(),
                view: view.map(str::to_string),
                param_hash,
                version,
            },
        );
    }

    /// Exact lookup by `(view, param hash, version)`.
    #[must_use]
    pub fn lookup(&self, view: Option<&str>, param_hash: u64, version: u64) -> Option<String> {
        let found = self
            .store
            .get(&Self::key(view, param_hash, version))
            .map(|c| c.rendered);
        let mut stats = self.stats.lock();
        stats.lookups += 1;
        if found.is_some() {
            stats.hits += 1;
        }
        found
    }

    /// All cached renderings of a view (any parameters, any version) —
    /// the "accessed by view name" path; used to warm serving-layer caches.
    #[must_use]
    pub fn renderings_of_view(&self, view: &str) -> Vec<CachedPrompt> {
        self.store
            .prefix_scan(&format!("view/{view}/"))
            .into_iter()
            .map(|(_, v)| v)
            .collect()
    }

    /// Latest cached version for `(view, param hash)`, if any.
    #[must_use]
    pub fn latest_version(&self, view: &str, param_hash: u64) -> Option<CachedPrompt> {
        self.store
            .prefix_scan(&format!("view/{view}/{param_hash:016x}/"))
            .into_iter()
            .map(|(_, v)| v)
            .max_by_key(|c| c.version)
    }

    /// Whether any rendering of `view` is resident (view-selection signal).
    #[must_use]
    pub fn is_view_warm(&self, view: &str) -> bool {
        !self.renderings_of_view(view).is_empty()
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> PromptCacheStats {
        *self.stats.lock()
    }
}

impl std::fmt::Debug for StructuredPromptCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StructuredPromptCache")
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_roundtrip() {
        let c = StructuredPromptCache::new();
        c.insert(Some("med_summary"), 0xAB, 1, "rendered text");
        assert_eq!(
            c.lookup(Some("med_summary"), 0xAB, 1).as_deref(),
            Some("rendered text")
        );
        assert_eq!(c.lookup(Some("med_summary"), 0xAB, 2), None);
        assert_eq!(c.lookup(Some("other"), 0xAB, 1), None);
        let s = c.stats();
        assert_eq!(s.lookups, 3);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn view_scan_and_latest_version() {
        let c = StructuredPromptCache::new();
        c.insert(Some("qa"), 0x1, 1, "v1");
        c.insert(Some("qa"), 0x1, 3, "v3");
        c.insert(Some("qa"), 0x2, 1, "other params");
        c.insert(Some("summary"), 0x1, 1, "unrelated view");

        assert_eq!(c.renderings_of_view("qa").len(), 3);
        let latest = c.latest_version("qa", 0x1).unwrap();
        assert_eq!(latest.version, 3);
        assert_eq!(latest.rendered, "v3");
        assert!(c.is_view_warm("qa"));
        assert!(!c.is_view_warm("ghost"));
    }

    #[test]
    fn adhoc_prompts_use_identity_hash() {
        let c = StructuredPromptCache::new();
        c.insert(None, 0xFEED, 1, "ad hoc rendering");
        assert_eq!(
            c.lookup(None, 0xFEED, 1).as_deref(),
            Some("ad hoc rendering")
        );
        assert!(c.renderings_of_view("").is_empty());
    }

    #[test]
    fn reinsert_replaces() {
        let c = StructuredPromptCache::new();
        c.insert(Some("v"), 1, 1, "old");
        c.insert(Some("v"), 1, 1, "new");
        assert_eq!(c.lookup(Some("v"), 1, 1).as_deref(), Some("new"));
        assert_eq!(c.len(), 1);
    }
}
