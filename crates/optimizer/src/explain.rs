//! EXPLAIN for prompt pipelines.
//!
//! The paper's closing claim is that prompt pipelines can be "optimized,
//! cached, and instrumented like query plans". This module is the
//! instrumentation half of that sentence: an `EXPLAIN`-style renderer that
//! walks a pipeline and annotates every operator with the cost model's
//! a-priori estimates — LLM calls, token traffic, expected latency —
//! under stated workload assumptions, plus the optimizations that apply
//! (cacheable vs opaque prompts, fusable GEN runs).

use std::fmt::Write as _;
use std::time::Duration;

use spear_core::ops::{Op, PromptRef};
use spear_core::pipeline::Pipeline;
use spear_core::plan::{LoweredOp, LoweredPlan};

use crate::cost::CostModel;
use crate::gen_fusion;

/// Workload assumptions the estimates are conditioned on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplainAssumptions {
    /// Prompt tokens per GEN call.
    pub prompt_tokens: f64,
    /// Decoded tokens per GEN call.
    pub decode_tokens: f64,
    /// Fraction of prompt tokens expected cached for *structured* prompts.
    pub cached_fraction: f64,
    /// Probability a CHECK's then-branch runs (else gets the complement).
    pub branch_probability: f64,
}

impl Default for ExplainAssumptions {
    fn default() -> Self {
        Self {
            prompt_tokens: 400.0,
            decode_tokens: 50.0,
            cached_fraction: 0.9,
            branch_probability: 0.5,
        }
    }
}

/// A cost roll-up for a (sub)plan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanCost {
    /// Expected LLM calls (fractional under branch probabilities).
    pub expected_gen_calls: f64,
    /// Expected latency.
    pub expected_latency: Duration,
}

impl PlanCost {
    fn add(&mut self, other: PlanCost, weight: f64) {
        self.expected_gen_calls += other.expected_gen_calls * weight;
        self.expected_latency +=
            Duration::from_secs_f64(other.expected_latency.as_secs_f64() * weight);
    }
}

/// Line-oriented render buffer shared by the EXPLAIN renderers here and
/// the bytecode disassembler ([`crate::disasm`]): infallible writes,
/// slot-anchored instruction lines, and depth-indented detail lines, so
/// the two plan views stay visually consistent.
pub(crate) struct PlanWriter {
    out: String,
}

impl PlanWriter {
    /// An empty buffer.
    pub(crate) fn new() -> Self {
        Self { out: String::new() }
    }

    /// A full-width line (headers, totals, hints).
    pub(crate) fn line(&mut self, text: std::fmt::Arguments<'_>) {
        let _ = writeln!(self.out, "{text}");
    }

    /// A slot-anchored instruction line: `  0004  <text>`.
    pub(crate) fn slot(&mut self, pc: usize, text: std::fmt::Arguments<'_>) {
        let _ = writeln!(self.out, "  {pc:04}  {text}");
    }

    /// A depth-indented detail line (tree renderings, pool entries).
    pub(crate) fn detail(&mut self, depth: usize, text: std::fmt::Arguments<'_>) {
        let indent = "  ".repeat(depth + 1);
        let _ = writeln!(self.out, "{indent}{text}");
    }

    /// The accumulated text.
    pub(crate) fn finish(self) -> String {
        self.out
    }
}

/// Everything the EXPLAIN tree walk threads through its recursion: the
/// output buffer, the cost model and assumptions the estimates are
/// conditioned on, and the running cost roll-up. Bundling these replaces
/// the seven-argument recursion this module used to carry.
struct RenderCtx<'a> {
    w: PlanWriter,
    model: &'a CostModel,
    a: &'a ExplainAssumptions,
    total: PlanCost,
}

/// Render the plan. Returns `(text, total cost)`.
#[must_use]
pub fn explain(
    pipeline: &Pipeline,
    model: &CostModel,
    assumptions: &ExplainAssumptions,
) -> (String, PlanCost) {
    let mut ctx = RenderCtx {
        w: PlanWriter::new(),
        model,
        a: assumptions,
        total: PlanCost::default(),
    };
    ctx.w.line(format_args!(
        "EXPLAIN PIPELINE {:?}  (assuming {:.0} prompt tokens/GEN, {:.0} \
         decode tokens, {:.0}% cache hits on structured prompts, branch \
         probability {:.0}%)",
        pipeline.name,
        assumptions.prompt_tokens,
        assumptions.decode_tokens,
        assumptions.cached_fraction * 100.0,
        assumptions.branch_probability * 100.0,
    ));
    let fusable = gen_fusion::find_opportunities(
        pipeline,
        model,
        assumptions.prompt_tokens,
        assumptions.cached_fraction > 0.0,
    );
    ctx.render_ops(&pipeline.ops, 0, 1.0);
    ctx.w.line(format_args!(
        "TOTAL: {:.2} expected GEN calls, {:.2}s expected latency",
        ctx.total.expected_gen_calls,
        ctx.total.expected_latency.as_secs_f64()
    ));
    for opp in &fusable {
        ctx.w.line(format_args!(
            "HINT: ops {}..{} are {} GENs on P[{:?}] — GEN fusion would save \
             ~{:.2}s (spear_optimizer::gen_fusion::fuse_pipeline)",
            opp.start,
            opp.start + opp.len - 1,
            opp.len,
            opp.prompt_key,
            opp.estimated_saving.as_secs_f64(),
        ));
    }
    (ctx.w.finish(), ctx.total)
}

/// Render a lowered plan, one instruction per line with its slot index,
/// explicit jump targets, and per-GEN cacheability annotations — the IR
/// analogue of a physical `EXPLAIN` in a query engine.
///
/// Unlike [`explain`], which walks the operator *tree*, this shows exactly
/// the program the runtime's dispatch loop steps through: CHECKs carry
/// their `else -> slot` target and a branch's leaves carry its trigger, so
/// predicate pushdown is visible as a jump past the guarded stages.
#[must_use]
pub fn explain_lowered(plan: &LoweredPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXPLAIN LOWERED PLAN {:?}  ({} source ops, {} slots)",
        plan.name,
        plan.source_size,
        plan.ops.len()
    );
    for (pc, op) in plan.ops.iter().enumerate() {
        match op {
            LoweredOp::Leaf { op, trigger, .. } => {
                let _ = write!(out, "  {pc:04}  {}", op.describe());
                if let Some(trigger) = trigger {
                    let _ = write!(out, "  (when {trigger})");
                }
                let _ = writeln!(out);
                if let Op::Gen {
                    prompt: PromptRef::Lowered { text, identity },
                    ..
                } = op
                {
                    let _ = writeln!(
                        out,
                        "        prompt: {text:?}  [{}]",
                        match identity {
                            Some(id) => format!("cacheable as {id:?}"),
                            None => "opaque — no prefix reuse".to_string(),
                        }
                    );
                }
            }
            LoweredOp::Check { cond, on_false, .. } => {
                let _ = writeln!(out, "  {pc:04}  CHECK[{cond}]  else -> {on_false:04}");
            }
            LoweredOp::Jump { target } => {
                let _ = writeln!(out, "  {pc:04}  JUMP -> {target:04}");
            }
        }
    }
    out
}

/// [`explain_lowered`] plus the static verifier's findings: the plan is
/// rendered as usual, then each diagnostic from
/// [`spear_core::analysis::Verifier`] is appended in the same
/// slot-anchored format. A clean plan gets an explicit "verifier: clean"
/// line so callers can tell "verified" from "not run".
#[must_use]
pub fn explain_lowered_with_lints(
    plan: &LoweredPlan,
    diagnostics: &[spear_core::analysis::Diagnostic],
) -> String {
    let mut out = explain_lowered(plan);
    if diagnostics.is_empty() {
        let _ = writeln!(out, "verifier: clean ({} slots checked)", plan.ops.len());
    } else {
        out.push_str(&spear_core::analysis::render_diagnostics(plan, diagnostics));
    }
    out
}

fn gen_cost(structured: bool, model: &CostModel, a: &ExplainAssumptions) -> Duration {
    let cached = if structured {
        a.prompt_tokens * a.cached_fraction
    } else {
        0.0
    };
    model.estimate_call(a.prompt_tokens - cached, cached, a.decode_tokens)
}

impl RenderCtx<'_> {
    fn render_ops(&mut self, ops: &[Op], depth: usize, weight: f64) {
        for op in ops {
            match op {
                Op::Gen { prompt, .. } => {
                    let structured = match prompt {
                        PromptRef::Inline(_) => false,
                        PromptRef::Lowered { identity, .. } => identity.is_some(),
                        PromptRef::Key(_) | PromptRef::View { .. } => true,
                    };
                    let latency = gen_cost(structured, self.model, self.a);
                    self.total.add(
                        PlanCost {
                            expected_gen_calls: 1.0,
                            expected_latency: latency,
                        },
                        weight,
                    );
                    self.w.detail(
                        depth,
                        format_args!(
                            "{}  [est {:.2}s/call, {}]",
                            op.describe(),
                            latency.as_secs_f64(),
                            if structured {
                                "cacheable"
                            } else {
                                "opaque — no prefix reuse"
                            }
                        ),
                    );
                }
                Op::Check {
                    cond,
                    then_ops,
                    else_ops,
                } => {
                    self.w.detail(
                        depth,
                        format_args!(
                            "CHECK[{cond}]  [p≈{:.0}%]",
                            self.a.branch_probability * 100.0
                        ),
                    );
                    self.render_ops(then_ops, depth + 1, weight * self.a.branch_probability);
                    if !else_ops.is_empty() {
                        self.w.detail(depth, format_args!("ELSE"));
                        self.render_ops(
                            else_ops,
                            depth + 1,
                            weight * (1.0 - self.a.branch_probability),
                        );
                    }
                }
                other => {
                    self.w.detail(depth, format_args!("{}", other.describe()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_core::condition::Cond;
    use spear_core::history::RefinementMode;
    use spear_core::value::Value;

    fn pipeline() -> Pipeline {
        Pipeline::builder("qa")
            .create_text("p", "base", RefinementMode::Manual)
            .gen("answer_0", "p")
            .check(Cond::low_confidence(0.7), |b| {
                b.refine(
                    "p",
                    spear_core::history::RefAction::Update,
                    "auto_refine",
                    Value::Null,
                    RefinementMode::Auto,
                )
                .gen("answer_1", "p")
            })
            .build()
    }

    #[test]
    fn explain_renders_tree_and_totals() {
        let (text, cost) = explain(
            &pipeline(),
            &CostModel::default(),
            &ExplainAssumptions::default(),
        );
        assert!(text.contains("EXPLAIN PIPELINE \"qa\""));
        assert!(text.contains("GEN[\"answer_0\"]"));
        assert!(text.contains("cacheable"));
        assert!(text.contains("CHECK[M[\"confidence\"] < 0.7]"));
        assert!(text.contains("TOTAL:"));
        // 1 unconditional + 0.5 expected conditional GEN.
        assert!((cost.expected_gen_calls - 1.5).abs() < 1e-9, "{cost:?}");
        assert!(cost.expected_latency > Duration::ZERO);
    }

    #[test]
    fn branch_probability_scales_expected_calls() {
        let never = ExplainAssumptions {
            branch_probability: 0.0,
            ..ExplainAssumptions::default()
        };
        let (_, cost) = explain(&pipeline(), &CostModel::default(), &never);
        assert!((cost.expected_gen_calls - 1.0).abs() < 1e-9);

        let always = ExplainAssumptions {
            branch_probability: 1.0,
            ..ExplainAssumptions::default()
        };
        let (_, cost) = explain(&pipeline(), &CostModel::default(), &always);
        assert!((cost.expected_gen_calls - 2.0).abs() < 1e-9);
    }

    #[test]
    fn opaque_prompts_are_called_out_and_cost_more() {
        use spear_core::llm::GenOptions;
        use spear_core::ops::PromptRef;
        let p = Pipeline {
            name: "inline".into(),
            ops: vec![spear_core::ops::Op::Gen {
                label: "a".into(),
                prompt: PromptRef::Inline("ad hoc {{ctx:item}}".into()),
                options: GenOptions::default(),
            }],
        };
        let (text, opaque_cost) =
            explain(&p, &CostModel::default(), &ExplainAssumptions::default());
        assert!(text.contains("opaque"));
        let (_, cached_cost) = explain(
            &pipeline(),
            &CostModel::default(),
            &ExplainAssumptions {
                branch_probability: 0.0,
                ..ExplainAssumptions::default()
            },
        );
        assert!(opaque_cost.expected_latency > cached_cost.expected_latency);
    }

    #[test]
    fn explain_with_lints_appends_diagnostics_or_clean_marker() {
        let plan = spear_core::plan::lower(&pipeline()).unwrap();
        let diags = spear_core::analysis::Verifier::new().verify(&plan);
        let text = explain_lowered_with_lints(&plan, &diags);
        assert!(text.contains("verifier: clean"), "{text}");

        let bad = LoweredPlan {
            name: "bad".into(),
            source_size: 1,
            ops: vec![LoweredOp::Jump { target: 9 }],
        };
        let diags = spear_core::analysis::Verifier::new().verify(&bad);
        let text = explain_lowered_with_lints(&bad, &diags);
        assert!(text.contains("SPEAR-E001"), "{text}");
        assert!(text.contains("  0000  JUMP -> 0009"), "{text}");
    }

    #[test]
    fn fusion_hints_appear_for_shared_gen_runs() {
        let p = Pipeline::builder("sections")
            .create_text("view", "base", RefinementMode::Manual)
            .gen("a", "view")
            .gen("b", "view")
            .build();
        let (text, _) = explain(&p, &CostModel::default(), &ExplainAssumptions::default());
        assert!(text.contains("HINT"), "{text}");
        assert!(text.contains("GEN fusion would save"));
    }
}
