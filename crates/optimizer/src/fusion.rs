//! Selectivity-aware operator fusion (paper §5 "Operator Fusion", §7).
//!
//! Two decisions live here:
//!
//! 1. **Semantic-plan fusion** — whether to run a Map/Filter pipeline as
//!    one fused GEN per item or one GEN per stage. The cost rule reproduces
//!    the paper's findings: fusing `Map→Filter` always removes a call per
//!    item (every item passes both stages), while fusing `Filter→Map`
//!    destroys the predicate-pushdown saving, so it only pays off at high
//!    selectivity. "Fusion strategies should be selectivity aware."
//!
//! 2. **Adjacent-GEN classification** — SPEAR "distinguishes between
//!    semantically coupled and independent use cases": GENs that share a
//!    prompt/view may fuse; independent per-item GENs should not.

use std::time::Duration;

use serde::{Deserialize, Serialize};
use spear_core::ops::{Op, PromptRef};

use crate::cost::CostModel;
use crate::plan::{PhysicalPlan, SemanticPlan};

/// Token-level estimates for one stage of a plan (averages over items).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageEstimate {
    /// Prompt tokens per call.
    pub prompt_tokens: f64,
    /// Fraction of prompt tokens expected to be cached, `[0, 1]`.
    pub cached_fraction: f64,
    /// Decoded tokens per call.
    pub decode_tokens: f64,
}

impl StageEstimate {
    fn call_cost(&self, model: &CostModel) -> Duration {
        let cached = self.prompt_tokens * self.cached_fraction;
        model.estimate_call(self.prompt_tokens - cached, cached, self.decode_tokens)
    }
}

/// Inputs to the fusion decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEstimates {
    /// Number of input items.
    pub n_items: f64,
    /// Estimated filter selectivity (fraction kept), `[0, 1]`.
    pub selectivity: f64,
    /// Per-stage estimate for sequential calls.
    pub per_stage: StageEstimate,
    /// Estimate for the fused call (longer prompt, combined decode).
    pub fused: StageEstimate,
}

/// The fusion decision with its cost evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionDecision {
    /// Whether to fuse.
    pub fuse: bool,
    /// Estimated total time for the sequential plan.
    pub sequential: Duration,
    /// Estimated total time for the fused plan.
    pub fused: Duration,
    /// Estimated gain of fusing: `(sequential − fused) / sequential`.
    pub gain: f64,
    /// Human-readable rationale.
    pub reason: String,
}

/// Estimated cost of the sequential physical form: each stage runs over
/// the items surviving the previous filters.
#[must_use]
pub fn sequential_cost(plan: &SemanticPlan, est: &PlanEstimates, model: &CostModel) -> Duration {
    let physical = PhysicalPlan::sequential(plan);
    let call = est.per_stage.call_cost(model).as_secs_f64();
    let mut surviving = est.n_items;
    let mut total = 0.0;
    for stage in &physical.stages {
        total += surviving * call;
        if stage.filters() {
            surviving *= est.selectivity.clamp(0.0, 1.0);
        }
    }
    Duration::from_secs_f64(total)
}

/// Estimated cost of the fused physical form: one combined call per item.
#[must_use]
pub fn fused_cost(est: &PlanEstimates, model: &CostModel) -> Duration {
    Duration::from_secs_f64(est.n_items * est.fused.call_cost(model).as_secs_f64())
}

/// Decide whether to fuse `plan` under `est`.
#[must_use]
pub fn decide(plan: &SemanticPlan, est: &PlanEstimates, model: &CostModel) -> FusionDecision {
    let sequential = sequential_cost(plan, est, model);
    let fused = fused_cost(est, model);
    let gain = if sequential.is_zero() {
        0.0
    } else {
        (sequential.as_secs_f64() - fused.as_secs_f64()) / sequential.as_secs_f64()
    };
    let fuse = fused < sequential;
    let reason = if fuse {
        format!(
            "fusing {} saves {:.1}% (every surviving item pays one combined call \
             instead of several)",
            plan.shape(),
            gain * 100.0
        )
    } else {
        format!(
            "keeping {} sequential: early filtering at selectivity {:.0}% skips \
             downstream calls that fusion would pay for",
            plan.shape(),
            est.selectivity * 100.0
        )
    };
    FusionDecision {
        fuse,
        sequential,
        fused,
        gain,
        reason,
    }
}

/// Relationship between two adjacent GEN operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GenRelation {
    /// The GENs read the same prompt entry or view — candidates for fusion
    /// into a single multi-section prompt.
    SharedContext,
    /// Independent GENs (different prompts/items) — fusing "may degrade
    /// accuracy and hinder retries or evaluation" (§5).
    Independent,
}

/// Classify two adjacent operators (non-GEN pairs are `Independent`).
#[must_use]
pub fn classify_adjacent(a: &Op, b: &Op) -> GenRelation {
    let prompt_of = |op: &Op| -> Option<String> {
        match op {
            Op::Gen { prompt, .. } => match prompt {
                PromptRef::Key(k) => Some(format!("key:{k}")),
                PromptRef::View { name, .. } => Some(format!("view:{name}")),
                PromptRef::Inline(_) | PromptRef::Lowered { .. } => None,
            },
            _ => None,
        }
    };
    match (prompt_of(a), prompt_of(b)) {
        (Some(x), Some(y)) if x == y => GenRelation::SharedContext,
        _ => GenRelation::Independent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_core::llm::GenOptions;

    /// Estimates resembling the paper's tweet workload: ~60-token stage
    /// prompts, ~110-token fused prompts, short decodes.
    fn estimates(selectivity: f64) -> PlanEstimates {
        PlanEstimates {
            n_items: 1000.0,
            selectivity,
            per_stage: StageEstimate {
                prompt_tokens: 60.0,
                cached_fraction: 0.0,
                decode_tokens: 20.0,
            },
            fused: StageEstimate {
                prompt_tokens: 95.0,
                cached_fraction: 0.0,
                decode_tokens: 26.0,
            },
        }
    }

    fn model() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn map_filter_fusion_wins_at_every_selectivity() {
        let plan = SemanticPlan::map_then_filter("clean", "negative?");
        for s in [0.1, 0.3, 0.5, 0.8, 1.0] {
            let d = decide(&plan, &estimates(s), &model());
            assert!(d.fuse, "selectivity {s}");
            assert!(
                (0.1..=0.35).contains(&d.gain),
                "gain {} at selectivity {s} should be ~20%",
                d.gain
            );
        }
    }

    #[test]
    fn filter_map_fusion_depends_on_selectivity() {
        let plan = SemanticPlan::filter_then_map("negative?", "clean");
        let low = decide(&plan, &estimates(0.1), &model());
        assert!(!low.fuse, "predicate pushdown wins at 10% selectivity");
        assert!(low.gain < 0.0);

        let high = decide(&plan, &estimates(1.0), &model());
        assert!(high.fuse, "at 100% selectivity pushdown saves nothing");
        assert!(high.gain > 0.1);
    }

    #[test]
    fn filter_map_crossover_exists_between_30_and_80_percent() {
        let plan = SemanticPlan::filter_then_map("negative?", "clean");
        let at_30 = decide(&plan, &estimates(0.3), &model());
        let at_80 = decide(&plan, &estimates(0.8), &model());
        assert!(at_30.gain < at_80.gain);
        assert!(!at_30.fuse);
        assert!(at_80.fuse);
    }

    #[test]
    fn sequential_cost_models_pushdown() {
        let fm = SemanticPlan::filter_then_map("f", "m");
        let mf = SemanticPlan::map_then_filter("m", "f");
        let est = estimates(0.1);
        let seq_fm = sequential_cost(&fm, &est, &model());
        let seq_mf = sequential_cost(&mf, &est, &model());
        assert!(
            seq_fm < seq_mf,
            "filter-first sequential is cheaper at low selectivity"
        );
    }

    #[test]
    fn decision_reason_is_informative() {
        let plan = SemanticPlan::filter_then_map("f", "m");
        let d = decide(&plan, &estimates(0.1), &model());
        assert!(d.reason.contains("selectivity"));
    }

    #[test]
    fn adjacent_gen_classification() {
        let gen = |key: &str| Op::Gen {
            label: "x".into(),
            prompt: PromptRef::key(key),
            options: GenOptions::default(),
        };
        assert_eq!(
            classify_adjacent(&gen("summary"), &gen("summary")),
            GenRelation::SharedContext
        );
        assert_eq!(
            classify_adjacent(&gen("summary"), &gen("other")),
            GenRelation::Independent
        );
        let inline = Op::Gen {
            label: "x".into(),
            prompt: PromptRef::Inline("ad hoc".into()),
            options: GenOptions::default(),
        };
        assert_eq!(
            classify_adjacent(&inline, &inline),
            GenRelation::Independent,
            "opaque prompts cannot be proven shared"
        );
        let ret = Op::Ret {
            source: "s".into(),
            query: spear_core::retriever::RetrievalQuery::All,
            prompt: None,
            into: "c".into(),
            limit: 1,
        };
        assert_eq!(classify_adjacent(&ret, &gen("x")), GenRelation::Independent);
    }
}
