//! Physical-plan executor: runs Map/Filter plans over item collections.
//!
//! This module no longer interprets plans itself — it lowers them through
//! [`crate::lowering`] onto the core execution spine and runs them with
//! [`spear_core::batch::BatchRunner`], one pipeline instance per item. The
//! behaviour the paper's fusion analysis depends on is preserved by the
//! lowering: in a **sequential** plan, items rejected by a Filter stage
//! skip all later stages (the "predicate-pushdown effect" of §7, realized
//! as a lowered CHECK jump), while a **fused** stage pays one call per item
//! for all of its semantic ops. Budget enforcement, tracing, and token
//! accounting all come from the core runtime; there is no LLM call in this
//! file.

use std::sync::Arc;
use std::time::Duration;

use spear_core::agent::FnAgent;
use spear_core::batch::BatchRunner;
use spear_core::context::Context;
use spear_core::error::Result;
use spear_core::llm::LlmClient;
use spear_core::metadata::TokenUsage;
use spear_core::runtime::{ExecState, Runtime, RuntimeConfig};
use spear_core::trace::{Trace, TraceKind};
use spear_core::value::Value;

use crate::lowering::{
    self, FILTER_VERDICT_AGENT, FUSED_TEXT_AGENT, FUSED_VERDICT_AGENT, ITEM_KEY,
};
use crate::plan::PhysicalPlan;

/// Outcome for one input item.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemOutcome {
    /// Final (possibly transformed) text of the item.
    pub text: String,
    /// Whether the item passed every filter encountered so far. Items with
    /// `passed == false` were dropped before later stages.
    pub passed: bool,
    /// Confidence of the last generation that touched the item.
    pub confidence: f64,
    /// Number of LLM calls spent on the item.
    pub calls: u64,
}

/// Aggregate result of a plan run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRunReport {
    /// Per-item outcomes, input order.
    pub outcomes: Vec<ItemOutcome>,
    /// Total LLM calls.
    pub gen_calls: u64,
    /// Total token usage, summed from the per-item runtime traces.
    pub usage: TokenUsage,
    /// Total (virtual) latency, summed from the per-item runtime traces.
    pub latency: Duration,
    /// Per-item execution traces, input order — the same instrumentation
    /// every other pipeline gets from the core runtime.
    pub traces: Vec<Trace>,
}

impl PlanRunReport {
    /// Items that survived all filters.
    #[must_use]
    pub fn passed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.passed).count()
    }

    /// Observed selectivity (passed / total); `None` on an empty run.
    #[must_use]
    pub fn selectivity(&self) -> Option<f64> {
        if self.outcomes.is_empty() {
            None
        } else {
            Some(self.passed() as f64 / self.outcomes.len() as f64)
        }
    }
}

/// Knobs for [`run_plan_with`].
#[derive(Debug, Clone)]
pub struct PlanRunOptions {
    /// Batch-runner worker threads (item results are independent of this).
    pub workers: usize,
    /// Runtime configuration; budgets apply **per item**, since each item
    /// is one pipeline instance.
    pub config: RuntimeConfig,
}

impl Default for PlanRunOptions {
    fn default() -> Self {
        Self {
            workers: 1,
            config: RuntimeConfig::default(),
        }
    }
}

/// Whether a filter response means "keep". The prompt contract asks for a
/// single word: `negative` / `yes` keep, anything else drops.
fn filter_passes(response: &str) -> bool {
    let first = response
        .split_whitespace()
        .next()
        .unwrap_or("")
        .trim_matches(|c: char| !c.is_alphanumeric())
        .to_lowercase();
    first == "negative" || first == "yes"
}

/// Parse a fused `label :: text` response into `(passes, text)`. Falls back
/// to treating the whole response as text with `passes = false` when the
/// format is violated (a real model might do this; the caller sees it as a
/// dropped item rather than a crash).
fn parse_fused_response(response: &str) -> (bool, String) {
    match response.split_once(" :: ") {
        Some((label, text)) => (filter_passes(label), text.to_string()),
        None => (false, response.to_string()),
    }
}

/// Build the runtime the lowered plan executes on: the backend plus the
/// response-parsing agents the lowering's DELEGATE ops name.
fn plan_runtime(llm: Arc<dyn LlmClient>, config: RuntimeConfig) -> Runtime {
    fn payload_text(payload: &Value) -> &str {
        payload.as_str().unwrap_or_default()
    }
    Runtime::builder()
        .llm(llm)
        .config(config)
        .agent(
            FILTER_VERDICT_AGENT,
            Arc::new(FnAgent(|payload: &Value, _: &Context| {
                Ok(Value::from(filter_passes(payload_text(payload))))
            })),
        )
        .agent(
            FUSED_VERDICT_AGENT,
            Arc::new(FnAgent(|payload: &Value, _: &Context| {
                Ok(Value::from(parse_fused_response(payload_text(payload)).0))
            })),
        )
        .agent(
            FUSED_TEXT_AGENT,
            Arc::new(FnAgent(|payload: &Value, _: &Context| {
                Ok(Value::from(parse_fused_response(payload_text(payload)).1))
            })),
        )
        .build()
}

/// Sum token usage and virtual latency from a trace's GEN events.
fn trace_totals(trace: &Trace) -> (TokenUsage, Duration) {
    let mut usage = TokenUsage::default();
    let mut latency = Duration::ZERO;
    for event in trace.of_kind(TraceKind::Gen) {
        let field = |key: &str| -> u64 {
            event
                .detail
                .as_map()
                .and_then(|m| m.get(key))
                .and_then(Value::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .unwrap_or(0)
        };
        usage.absorb(TokenUsage {
            prompt_tokens: field("prompt_tokens"),
            cached_tokens: field("cached_tokens"),
            completion_tokens: field("completion_tokens"),
        });
        latency += Duration::from_micros(field("latency_us"));
    }
    (usage, latency)
}

/// Run `plan` over `items` with default options (one worker, default
/// runtime budgets).
///
/// # Errors
///
/// Propagates the first backend failure, in item order.
pub fn run_plan(
    llm: Arc<dyn LlmClient>,
    plan: &PhysicalPlan,
    items: &[String],
) -> Result<PlanRunReport> {
    run_plan_with(llm, plan, items, &PlanRunOptions::default())
}

/// Run `plan` over `items`: lower to the core IR, execute every item as an
/// independent pipeline instance on a [`BatchRunner`], and fold the
/// per-item states back into a [`PlanRunReport`].
///
/// # Errors
///
/// Propagates the first failing item's error, in item order — including
/// per-item budget violations configured via [`PlanRunOptions::config`].
pub fn run_plan_with(
    llm: Arc<dyn LlmClient>,
    plan: &PhysicalPlan,
    items: &[String],
    options: &PlanRunOptions,
) -> Result<PlanRunReport> {
    let lowered = Arc::new(lowering::lower_physical(plan)?);
    let runtime = plan_runtime(llm, options.config.clone());
    let states: Vec<ExecState> = items
        .iter()
        .map(|item| {
            let mut state = ExecState::new();
            state.context.set(ITEM_KEY, item.clone());
            state
        })
        .collect();
    let results = BatchRunner::new(options.workers).run_lowered(&runtime, &lowered, states);

    let chain = lowering::text_chain(plan);
    let verdicts = lowering::verdict_keys(plan);
    let mut report = PlanRunReport {
        outcomes: Vec::with_capacity(items.len()),
        gen_calls: 0,
        usage: TokenUsage::default(),
        latency: Duration::ZERO,
        traces: Vec::with_capacity(items.len()),
    };
    for (item, result) in items.iter().zip(results) {
        let outcome = result?;
        let context = &outcome.state.context;
        let text = chain
            .iter()
            .rev()
            .find_map(|key| {
                context
                    .get(key)
                    .and_then(|v| v.as_str().map(str::to_string))
            })
            .unwrap_or_else(|| item.clone());
        let passed = verdicts
            .iter()
            .all(|key| context.get(key).is_none_or(|v| v.is_truthy()));
        let confidence = outcome
            .state
            .metadata
            .get("confidence")
            .and_then(|v| v.as_f64())
            .unwrap_or(1.0);
        let (usage, latency) = trace_totals(&outcome.state.trace);
        report.gen_calls += outcome.report.gens;
        report.usage.absorb(usage);
        report.latency += latency;
        report.outcomes.push(ItemOutcome {
            text,
            passed,
            confidence,
            calls: outcome.report.gens,
        });
        report.traces.push(outcome.state.trace);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SemanticPlan;
    use spear_llm::{ModelProfile, SimLlm};

    fn llm() -> Arc<dyn LlmClient> {
        Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct()))
    }

    fn items() -> Vec<String> {
        vec![
            "i hate this awful homework".to_string(),
            "what a wonderful sunny day".to_string(),
            "worst meeting ever, so frustrated".to_string(),
            "love this amazing coffee".to_string(),
        ]
    }

    fn plans() -> (SemanticPlan, SemanticPlan) {
        (
            SemanticPlan::map_then_filter(
                "Clean up the tweet.",
                "Classify the sentiment as positive or negative; keep negative.",
            )
            .with_identity("view:tweet_pipeline@1"),
            SemanticPlan::filter_then_map(
                "Classify the sentiment as positive or negative; keep negative.",
                "Clean up the tweet.",
            )
            .with_identity("view:tweet_pipeline@1"),
        )
    }

    #[test]
    fn sequential_map_filter_runs_both_stages_on_all_items() {
        let (mf, _) = plans();
        let report = run_plan(llm(), &PhysicalPlan::sequential(&mf), &items()).unwrap();
        assert_eq!(
            report.gen_calls, 8,
            "2 stages × 4 items, regardless of outcome"
        );
        assert_eq!(report.outcomes.len(), 4);
        // The task model draws per-item correctness, so with 4 items the
        // pass count is 2 ± 1; aggregate accuracy is asserted over large
        // corpora in the benchmark tests.
        assert!(
            (1..=3).contains(&report.passed()),
            "passed {}",
            report.passed()
        );
    }

    #[test]
    fn sequential_filter_map_skips_map_for_dropped_items() {
        let (_, fm) = plans();
        let report = run_plan(llm(), &PhysicalPlan::sequential(&fm), &items()).unwrap();
        // Filter runs on all 4; Map only on survivors (predicate pushdown).
        assert_eq!(report.gen_calls, 4 + report.passed() as u64);
        for o in report.outcomes.iter().filter(|o| !o.passed) {
            assert_eq!(o.calls, 1, "dropped items stop after the filter");
        }
        for o in report.outcomes.iter().filter(|o| o.passed) {
            assert_eq!(o.calls, 2);
        }
    }

    #[test]
    fn fused_plan_uses_one_call_per_item() {
        let (mf, _) = plans();
        let report = run_plan(llm(), &PhysicalPlan::fused(&mf), &items()).unwrap();
        assert_eq!(report.gen_calls, 4);
        // Fused outputs are cleaned text, not the raw tweet.
        let kept: Vec<&ItemOutcome> = report.outcomes.iter().filter(|o| o.passed).collect();
        assert!(kept.iter().all(|o| !o.text.contains("::")));
    }

    #[test]
    fn fused_is_faster_than_sequential_for_map_filter() {
        let (mf, _) = plans();
        let seq = run_plan(llm(), &PhysicalPlan::sequential(&mf), &items()).unwrap();
        let fused = run_plan(llm(), &PhysicalPlan::fused(&mf), &items()).unwrap();
        assert!(fused.latency < seq.latency);
    }

    #[test]
    fn selectivity_matches_corpus_balance() {
        let (mf, _) = plans();
        // Use a larger, strongly polar corpus so observed selectivity
        // converges on the ground-truth 50% despite per-item error draws.
        let mut corpus = Vec::new();
        for i in 0..200 {
            let word = if i % 2 == 0 { "awful" } else { "wonderful" };
            corpus.push(format!("such a {word} day number {i}"));
        }
        let report = run_plan(llm(), &PhysicalPlan::sequential(&mf), &corpus).unwrap();
        assert!(
            (report.selectivity().unwrap() - 0.5).abs() < 0.1,
            "selectivity {:?}",
            report.selectivity()
        );
        let empty = run_plan(llm(), &PhysicalPlan::sequential(&mf), &[]).unwrap();
        assert_eq!(empty.selectivity(), None);
    }

    #[test]
    fn report_totals_match_the_trace_totals() {
        let (mf, _) = plans();
        let report = run_plan(llm(), &PhysicalPlan::sequential(&mf), &items()).unwrap();
        assert_eq!(report.traces.len(), report.outcomes.len());
        let mut usage = TokenUsage::default();
        let mut latency = Duration::ZERO;
        let mut gen_events = 0;
        for trace in &report.traces {
            let (u, l) = trace_totals(trace);
            usage.absorb(u);
            latency += l;
            gen_events += trace.count(TraceKind::Gen) as u64;
        }
        assert_eq!(report.usage, usage);
        assert_eq!(report.latency, latency);
        assert_eq!(report.gen_calls, gen_events);
        assert!(usage.total() > 0, "the run generated tokens");
        assert!(latency > Duration::ZERO);
    }

    #[test]
    fn worker_count_does_not_change_plan_results() {
        let (mf, _) = plans();
        let plan = PhysicalPlan::sequential(&mf);
        let run = |workers: usize| {
            run_plan_with(
                llm(),
                &plan,
                &items(),
                &PlanRunOptions {
                    workers,
                    ..PlanRunOptions::default()
                },
            )
            .unwrap()
        };
        let one = run(1);
        assert_eq!(one, run(4));
    }

    #[test]
    fn filter_response_parsing() {
        assert!(filter_passes("negative"));
        assert!(filter_passes("Negative."));
        assert!(filter_passes("yes"));
        assert!(!filter_passes("positive"));
        assert!(!filter_passes(""));
        assert_eq!(
            parse_fused_response("negative :: cleaned"),
            (true, "cleaned".to_string())
        );
        assert_eq!(
            parse_fused_response("malformed output"),
            (false, "malformed output".to_string())
        );
    }
}
