//! Physical-plan executor: runs Map/Filter plans over item collections
//! against any `LlmClient`.
//!
//! The executor realizes the behaviour the paper's fusion analysis depends
//! on: in a **sequential** plan, items rejected by a Filter stage skip all
//! later stages (the "predicate-pushdown effect" of §7), while a **fused**
//! stage pays one call per item for all of its semantic ops. Prompt
//! construction follows a fixed contract (instruction block, response
//! format, `Tweet:` item marker) so that any backend — simulated or real —
//! sees well-formed task prompts.

use std::time::Duration;

use spear_core::error::Result;
use spear_core::llm::{GenOptions, GenRequest, LlmClient, PromptIdentity};
use spear_core::metadata::TokenUsage;

use crate::plan::{PhysicalPlan, PhysicalStage, SemanticOp};

/// Outcome for one input item.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemOutcome {
    /// Final (possibly transformed) text of the item.
    pub text: String,
    /// Whether the item passed every filter encountered so far. Items with
    /// `passed == false` were dropped before later stages.
    pub passed: bool,
    /// Confidence of the last generation that touched the item.
    pub confidence: f64,
    /// Number of LLM calls spent on the item.
    pub calls: u64,
}

/// Aggregate result of a plan run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRunReport {
    /// Per-item outcomes, input order.
    pub outcomes: Vec<ItemOutcome>,
    /// Total LLM calls.
    pub gen_calls: u64,
    /// Total token usage.
    pub usage: TokenUsage,
    /// Total (virtual) latency.
    pub latency: Duration,
}

impl PlanRunReport {
    /// Items that survived all filters.
    #[must_use]
    pub fn passed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.passed).count()
    }

    /// Observed selectivity (passed / total); `None` on an empty run.
    #[must_use]
    pub fn selectivity(&self) -> Option<f64> {
        if self.outcomes.is_empty() {
            None
        } else {
            Some(self.passed() as f64 / self.outcomes.len() as f64)
        }
    }
}

/// Whether a filter response means "keep". The prompt contract asks for a
/// single word: `negative` / `yes` keep, anything else drops.
fn filter_passes(response: &str) -> bool {
    let first = response
        .split_whitespace()
        .next()
        .unwrap_or("")
        .trim_matches(|c: char| !c.is_alphanumeric())
        .to_lowercase();
    first == "negative" || first == "yes"
}

/// Parse a fused `label :: text` response into `(passes, text)`. Falls back
/// to treating the whole response as text with `passes = false` when the
/// format is violated (a real model might do this; the caller sees it as a
/// dropped item rather than a crash).
fn parse_fused_response(response: &str) -> (bool, String) {
    match response.split_once(" :: ") {
        Some((label, text)) => (filter_passes(label), text.to_string()),
        None => (false, response.to_string()),
    }
}

fn stage_prompt(stage: &PhysicalStage, item: &str) -> (String, Option<&'static str>) {
    match stage {
        PhysicalStage::Gen { op } => match op {
            SemanticOp::Map { instruction } => (
                format!("{instruction} Use at most 25 words.\nTweet: {item}"),
                Some("summarize"),
            ),
            SemanticOp::Filter { instruction } => (
                format!(
                    "{instruction} Respond with the label followed by a \
                     one-sentence justification.\nTweet: {item}"
                ),
                Some("classify_sentiment"),
            ),
        },
        PhysicalStage::FusedGen { ops } => {
            let directives: Vec<&str> = ops.iter().map(|o| o.instruction()).collect();
            let map_first = matches!(ops.first(), Some(SemanticOp::Map { .. }));
            let hint = if map_first {
                "fused_map_filter"
            } else {
                "fused_filter_map"
            };
            (
                format!(
                    "{} In one pass. Respond in the format '<label> :: <cleaned \
                     text>' with a short justification, using at most 25 words.\n\
                     Tweet: {item}",
                    directives.join(" Then ")
                ),
                Some(hint),
            )
        }
    }
}

/// Run `plan` over `items`.
///
/// # Errors
///
/// Propagates the first backend failure.
pub fn run_plan(
    llm: &dyn LlmClient,
    plan: &PhysicalPlan,
    items: &[String],
) -> Result<PlanRunReport> {
    let mut outcomes = Vec::with_capacity(items.len());
    let mut gen_calls = 0u64;
    let mut usage = TokenUsage::default();
    let mut latency = Duration::ZERO;

    for item in items {
        let mut outcome = ItemOutcome {
            text: item.clone(),
            passed: true,
            confidence: 1.0,
            calls: 0,
        };
        for (stage_idx, stage) in plan.stages.iter().enumerate() {
            if !outcome.passed {
                break; // predicate pushdown: dropped items skip later stages
            }
            let (prompt, task_hint) = stage_prompt(stage, &outcome.text);
            let identity = match &plan.identity {
                Some(id) => PromptIdentity::Structured {
                    id: format!("{id}/stage{stage_idx}"),
                },
                None => PromptIdentity::Opaque,
            };
            let response = llm.generate(&GenRequest {
                text: prompt,
                identity,
                options: GenOptions {
                    max_tokens: 64,
                    temperature: 0.0,
                    task: task_hint.map(str::to_string),
                },
            })?;
            gen_calls += 1;
            outcome.calls += 1;
            usage.absorb(response.usage);
            latency += response.latency;
            outcome.confidence = response.confidence;
            match stage {
                PhysicalStage::Gen {
                    op: SemanticOp::Map { .. },
                } => outcome.text = response.text,
                PhysicalStage::Gen {
                    op: SemanticOp::Filter { .. },
                } => outcome.passed = filter_passes(&response.text),
                PhysicalStage::FusedGen { .. } => {
                    let (passed, text) = parse_fused_response(&response.text);
                    outcome.passed = passed;
                    outcome.text = text;
                }
            }
        }
        outcomes.push(outcome);
    }

    Ok(PlanRunReport {
        outcomes,
        gen_calls,
        usage,
        latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SemanticPlan;
    use spear_llm::{ModelProfile, SimLlm};

    fn items() -> Vec<String> {
        vec![
            "i hate this awful homework".to_string(),
            "what a wonderful sunny day".to_string(),
            "worst meeting ever, so frustrated".to_string(),
            "love this amazing coffee".to_string(),
        ]
    }

    fn plans() -> (SemanticPlan, SemanticPlan) {
        (
            SemanticPlan::map_then_filter(
                "Clean up the tweet.",
                "Classify the sentiment as positive or negative; keep negative.",
            )
            .with_identity("view:tweet_pipeline@1"),
            SemanticPlan::filter_then_map(
                "Classify the sentiment as positive or negative; keep negative.",
                "Clean up the tweet.",
            )
            .with_identity("view:tweet_pipeline@1"),
        )
    }

    #[test]
    fn sequential_map_filter_runs_both_stages_on_all_items() {
        let llm = SimLlm::new(ModelProfile::qwen25_7b_instruct());
        let (mf, _) = plans();
        let report = run_plan(&llm, &PhysicalPlan::sequential(&mf), &items()).unwrap();
        assert_eq!(report.gen_calls, 8, "2 stages × 4 items, regardless of outcome");
        assert_eq!(report.outcomes.len(), 4);
        // The task model draws per-item correctness, so with 4 items the
        // pass count is 2 ± 1; aggregate accuracy is asserted over large
        // corpora in the benchmark tests.
        assert!((1..=3).contains(&report.passed()), "passed {}", report.passed());
    }

    #[test]
    fn sequential_filter_map_skips_map_for_dropped_items() {
        let llm = SimLlm::new(ModelProfile::qwen25_7b_instruct());
        let (_, fm) = plans();
        let report = run_plan(&llm, &PhysicalPlan::sequential(&fm), &items()).unwrap();
        // Filter runs on all 4; Map only on survivors (predicate pushdown).
        assert_eq!(report.gen_calls, 4 + report.passed() as u64);
        for o in report.outcomes.iter().filter(|o| !o.passed) {
            assert_eq!(o.calls, 1, "dropped items stop after the filter");
        }
        for o in report.outcomes.iter().filter(|o| o.passed) {
            assert_eq!(o.calls, 2);
        }
    }

    #[test]
    fn fused_plan_uses_one_call_per_item() {
        let llm = SimLlm::new(ModelProfile::qwen25_7b_instruct());
        let (mf, _) = plans();
        let report = run_plan(&llm, &PhysicalPlan::fused(&mf), &items()).unwrap();
        assert_eq!(report.gen_calls, 4);
        // Fused outputs are cleaned text, not the raw tweet.
        let kept: Vec<&ItemOutcome> = report.outcomes.iter().filter(|o| o.passed).collect();
        assert!(kept.iter().all(|o| !o.text.contains("::")));
    }

    #[test]
    fn fused_is_faster_than_sequential_for_map_filter() {
        let (mf, _) = plans();
        let llm_seq = SimLlm::new(ModelProfile::qwen25_7b_instruct());
        let seq = run_plan(&llm_seq, &PhysicalPlan::sequential(&mf), &items()).unwrap();
        let llm_fused = SimLlm::new(ModelProfile::qwen25_7b_instruct());
        let fused = run_plan(&llm_fused, &PhysicalPlan::fused(&mf), &items()).unwrap();
        assert!(fused.latency < seq.latency);
    }

    #[test]
    fn selectivity_matches_corpus_balance() {
        let llm = SimLlm::new(ModelProfile::qwen25_7b_instruct());
        let (mf, _) = plans();
        // Use a larger, strongly polar corpus so observed selectivity
        // converges on the ground-truth 50% despite per-item error draws.
        let mut corpus = Vec::new();
        for i in 0..200 {
            let word = if i % 2 == 0 { "awful" } else { "wonderful" };
            corpus.push(format!("such a {word} day number {i}"));
        }
        let report = run_plan(&llm, &PhysicalPlan::sequential(&mf), &corpus).unwrap();
        assert!(
            (report.selectivity().unwrap() - 0.5).abs() < 0.1,
            "selectivity {:?}",
            report.selectivity()
        );
        let empty = run_plan(&llm, &PhysicalPlan::sequential(&mf), &[]).unwrap();
        assert_eq!(empty.selectivity(), None);
    }

    #[test]
    fn filter_response_parsing() {
        assert!(filter_passes("negative"));
        assert!(filter_passes("Negative."));
        assert!(filter_passes("yes"));
        assert!(!filter_passes("positive"));
        assert!(!filter_passes(""));
        assert_eq!(
            parse_fused_response("negative :: cleaned"),
            (true, "cleaned".to_string())
        );
        assert_eq!(
            parse_fused_response("malformed output"),
            (false, "malformed output".to_string())
        );
    }
}
