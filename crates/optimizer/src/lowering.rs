//! Lowering of physical Map/Filter plans onto the core execution spine.
//!
//! Historically the optimizer had its own interpreter: `run_plan` walked
//! [`PhysicalPlan`] stages and called the `LlmClient` directly, duplicating
//! budget enforcement, tracing, and retry policy that the core runtime
//! already owns. This module removes that second execution path: a physical
//! plan lowers into an ordinary core [`Pipeline`] — GEN ops carrying
//! pre-rendered [`PromptRef::Lowered`] templates, DELEGATE ops parsing
//! stage responses, and CHECK ops realizing predicate pushdown — which the
//! core then lowers into its flat [`spear_core::LoweredPlan`] IR and
//! executes with the same per-operator executors as every other pipeline.
//!
//! ## Lowering rules
//!
//! Per stage `i` (with `cur` naming the context key holding the item's
//! current text, starting at [`ITEM_KEY`]):
//!
//! - every stage emits `GEN[s{i}]` whose lowered prompt embeds
//!   `{{ctx:cur}}` where the old interpreter interpolated the item, and
//!   whose identity is `Some("{plan.identity}/stage{i}")` iff the plan has
//!   a structured identity — preserving the structure-gates-caching rule;
//! - a **Map** stage advances `cur` to `s{i}`;
//! - a **Filter** stage emits `DELEGATE[plan_filter_verdict] -> pass{i}`
//!   and wraps the remaining stages in `CHECK[truthy(C["pass{i}"])]`, so
//!   dropped items skip all later stages (the paper's predicate-pushdown
//!   effect) exactly as the old interpreter's `break` did;
//! - a **FusedGen** stage emits two DELEGATEs — verdict into `pass{i}`,
//!   extracted text into `t{i}` (which becomes `cur`) — and the same CHECK
//!   wrapper.
//!
//! The prompt templates are byte-identical to the strings the old
//! interpreter produced, so simulated backends observe the same requests.

use spear_core::condition::{Cond, Operand};
use spear_core::llm::GenOptions;
use spear_core::ops::{Op, PayloadSpec, PromptRef};
use spear_core::pipeline::Pipeline;
use spear_core::plan::{lower, LoweredPlan};

use crate::plan::{PhysicalPlan, PhysicalStage, SemanticOp};

/// Context key the per-item input text is seeded under.
pub const ITEM_KEY: &str = "item";

/// Agent parsing a Filter stage's response into a boolean verdict.
pub const FILTER_VERDICT_AGENT: &str = "plan_filter_verdict";

/// Agent parsing a fused stage's `label :: text` response into a verdict.
pub const FUSED_VERDICT_AGENT: &str = "plan_fused_verdict";

/// Agent extracting the cleaned text from a fused `label :: text` response.
pub const FUSED_TEXT_AGENT: &str = "plan_fused_text";

/// Lower a physical plan into a core pipeline.
///
/// The result references the agents named by [`FILTER_VERDICT_AGENT`],
/// [`FUSED_VERDICT_AGENT`], and [`FUSED_TEXT_AGENT`]; `run_plan` registers
/// them on the runtime it builds.
#[must_use]
pub fn to_pipeline(plan: &PhysicalPlan) -> Pipeline {
    Pipeline {
        name: format!("physical({})", plan.shape()),
        ops: lower_rest(plan, 0, ITEM_KEY.to_string()),
    }
}

/// Lower a physical plan straight to the core IR — shorthand for
/// `spear_core::lower(&to_pipeline(plan))`. Fails closed like core
/// lowering: a structurally malformed slot program is returned as
/// [`spear_core::SpearError::InvalidPlan`] instead of reaching the
/// executor.
///
/// # Errors
///
/// Propagates core lowering's structural self-check failure.
pub fn lower_physical(plan: &PhysicalPlan) -> spear_core::Result<LoweredPlan> {
    lower(&to_pipeline(plan))
}

/// Context keys that hold the item's text as stages rewrite it, in order:
/// the seed key, then one per Map / FusedGen stage. The item's final text
/// is the last key of this chain present in its context.
#[must_use]
pub fn text_chain(plan: &PhysicalPlan) -> Vec<String> {
    let mut chain = vec![ITEM_KEY.to_string()];
    for (i, stage) in plan.stages.iter().enumerate() {
        match stage {
            PhysicalStage::Gen {
                op: SemanticOp::Map { .. },
            } => chain.push(format!("s{i}")),
            PhysicalStage::Gen {
                op: SemanticOp::Filter { .. },
            } => {}
            PhysicalStage::FusedGen { .. } => chain.push(format!("t{i}")),
        }
    }
    chain
}

/// Context keys holding per-stage pass verdicts (one per Filter or fused
/// stage). An item passed iff no present verdict is false — a missing
/// verdict means an earlier filter already dropped the item.
#[must_use]
pub fn verdict_keys(plan: &PhysicalPlan) -> Vec<String> {
    plan.stages
        .iter()
        .enumerate()
        .filter_map(|(i, stage)| match stage {
            PhysicalStage::Gen {
                op: SemanticOp::Map { .. },
            } => None,
            PhysicalStage::Gen {
                op: SemanticOp::Filter { .. },
            }
            | PhysicalStage::FusedGen { .. } => Some(format!("pass{i}")),
        })
        .collect()
}

/// The prompt template and task hint for one stage, with `{{ctx:cur}}`
/// standing where the old interpreter spliced the item text. The rendered
/// strings are byte-identical to the old `stage_prompt` output.
fn stage_template(stage: &PhysicalStage, cur: &str) -> (String, Option<&'static str>) {
    match stage {
        PhysicalStage::Gen { op } => match op {
            SemanticOp::Map { instruction } => (
                format!("{instruction} Use at most 25 words.\nTweet: {{{{ctx:{cur}}}}}"),
                Some("summarize"),
            ),
            SemanticOp::Filter { instruction } => (
                format!(
                    "{instruction} Respond with the label followed by a \
                     one-sentence justification.\nTweet: {{{{ctx:{cur}}}}}"
                ),
                Some("classify_sentiment"),
            ),
        },
        PhysicalStage::FusedGen { ops } => {
            let directives: Vec<&str> = ops.iter().map(SemanticOp::instruction).collect();
            let map_first = matches!(ops.first(), Some(SemanticOp::Map { .. }));
            let hint = if map_first {
                "fused_map_filter"
            } else {
                "fused_filter_map"
            };
            (
                format!(
                    "{} In one pass. Respond in the format '<label> :: <cleaned \
                     text>' with a short justification, using at most 25 words.\n\
                     Tweet: {{{{ctx:{cur}}}}}",
                    directives.join(" Then ")
                ),
                Some(hint),
            )
        }
    }
}

/// Lower stages `i..` given the current text key; filtering stages wrap
/// the remainder in a CHECK so pushdown falls out of ordinary control flow.
fn lower_rest(plan: &PhysicalPlan, i: usize, cur: String) -> Vec<Op> {
    let Some(stage) = plan.stages.get(i) else {
        return Vec::new();
    };
    let (template, task) = stage_template(stage, &cur);
    let mut ops = vec![Op::Gen {
        label: format!("s{i}"),
        prompt: PromptRef::Lowered {
            text: template,
            identity: plan.identity.as_ref().map(|id| format!("{id}/stage{i}")),
        },
        options: GenOptions {
            max_tokens: 64,
            temperature: 0.0,
            task: task.map(str::to_string),
        },
    }];
    match stage {
        PhysicalStage::Gen {
            op: SemanticOp::Map { .. },
        } => {
            ops.extend(lower_rest(plan, i + 1, format!("s{i}")));
        }
        PhysicalStage::Gen {
            op: SemanticOp::Filter { .. },
        } => {
            ops.push(Op::Delegate {
                agent: FILTER_VERDICT_AGENT.to_string(),
                payload: PayloadSpec::CtxKey(format!("s{i}")),
                into: format!("pass{i}"),
            });
            guard_rest(&mut ops, i, lower_rest(plan, i + 1, cur));
        }
        PhysicalStage::FusedGen { .. } => {
            ops.push(Op::Delegate {
                agent: FUSED_VERDICT_AGENT.to_string(),
                payload: PayloadSpec::CtxKey(format!("s{i}")),
                into: format!("pass{i}"),
            });
            ops.push(Op::Delegate {
                agent: FUSED_TEXT_AGENT.to_string(),
                payload: PayloadSpec::CtxKey(format!("s{i}")),
                into: format!("t{i}"),
            });
            guard_rest(&mut ops, i, lower_rest(plan, i + 1, format!("t{i}")));
        }
    }
    ops
}

/// Wrap `rest` in `CHECK[truthy(C["pass{i}"])]`, or nothing when there is
/// no downstream work to guard.
fn guard_rest(ops: &mut Vec<Op>, i: usize, rest: Vec<Op>) {
    if !rest.is_empty() {
        ops.push(Op::Check {
            cond: Cond::Truthy(Operand::Ctx(format!("pass{i}"))),
            then_ops: rest,
            else_ops: Vec::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SemanticPlan;
    use spear_core::plan::LoweredOp;

    fn mf() -> PhysicalPlan {
        PhysicalPlan::sequential(
            &SemanticPlan::map_then_filter("Clean.", "Keep negative.").with_identity("view:v@1"),
        )
    }

    #[test]
    fn map_filter_lowers_to_gen_gen_delegate() {
        let p = to_pipeline(&mf());
        assert_eq!(p.name, "physical([Map] [Filter])");
        // Map → GEN; Filter → GEN + DELEGATE; trailing filter needs no CHECK.
        assert_eq!(p.ops.len(), 3);
        assert!(matches!(&p.ops[0], Op::Gen { label, .. } if label == "s0"));
        assert!(matches!(&p.ops[2], Op::Delegate { into, .. } if into == "pass1"));
    }

    #[test]
    fn filter_map_guards_downstream_stages() {
        let plan =
            PhysicalPlan::sequential(&SemanticPlan::filter_then_map("Keep negative.", "Clean."));
        let p = to_pipeline(&plan);
        // Filter GEN, verdict DELEGATE, CHECK guarding the Map GEN.
        assert_eq!(p.ops.len(), 3);
        let Op::Check {
            cond,
            then_ops,
            else_ops,
        } = &p.ops[2]
        else {
            panic!("expected CHECK, got {:?}", p.ops[2]);
        };
        assert_eq!(cond.to_string(), "truthy(C[\"pass0\"])");
        assert_eq!(then_ops.len(), 1);
        assert!(else_ops.is_empty());
        assert!(matches!(&then_ops[0], Op::Gen { label, .. } if label == "s1"));
    }

    #[test]
    fn prompts_render_like_the_old_interpreter() {
        let p = to_pipeline(&mf());
        let Op::Gen {
            prompt: PromptRef::Lowered { text, identity },
            ..
        } = &p.ops[0]
        else {
            panic!("expected lowered prompt");
        };
        assert_eq!(text, "Clean. Use at most 25 words.\nTweet: {{ctx:item}}");
        assert_eq!(identity.as_deref(), Some("view:v@1/stage0"));
        // The filter stage reads the map's output.
        let Op::Gen {
            prompt: PromptRef::Lowered { text, .. },
            ..
        } = &p.ops[1]
        else {
            panic!("expected lowered prompt");
        };
        assert!(text.ends_with("Tweet: {{ctx:s0}}"), "{text}");
    }

    #[test]
    fn identity_is_absent_when_the_plan_is_opaque() {
        let plan = PhysicalPlan::sequential(&SemanticPlan::map_then_filter("m", "f"));
        let p = to_pipeline(&plan);
        for op in &p.ops {
            if let Op::Gen {
                prompt: PromptRef::Lowered { identity, .. },
                ..
            } = op
            {
                assert_eq!(identity, &None);
            }
        }
    }

    #[test]
    fn fused_stage_emits_both_parsers_and_text_chain_tracks_it() {
        let sem = SemanticPlan::map_then_filter("m", "f");
        let fused = PhysicalPlan::fused(&sem);
        let p = to_pipeline(&fused);
        assert_eq!(p.ops.len(), 3, "GEN + verdict + text extraction");
        assert_eq!(text_chain(&fused), vec!["item", "t0"]);
        assert_eq!(verdict_keys(&fused), vec!["pass0"]);

        let seq = PhysicalPlan::sequential(&sem);
        assert_eq!(text_chain(&seq), vec!["item", "s0"]);
        assert_eq!(verdict_keys(&seq), vec!["pass1"]);
    }

    #[test]
    fn lower_physical_produces_flat_ir_with_pushdown_jump() {
        let plan =
            PhysicalPlan::sequential(&SemanticPlan::filter_then_map("Keep negative.", "Clean."));
        let ir = lower_physical(&plan).expect("lowers clean");
        // GEN, DELEGATE, CHECK, guarded GEN.
        assert_eq!(ir.ops.len(), 4);
        let LoweredOp::Check { on_false, .. } = &ir.ops[2] else {
            panic!("expected lowered CHECK, got {:?}", ir.ops[2]);
        };
        assert_eq!(*on_false, 4, "dropped items jump past the map stage");
    }
}
