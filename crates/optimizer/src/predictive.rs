//! Predictive refinement (paper §5).
//!
//! "Instead of waiting for failures or low quality outputs to trigger
//! recovery, SPEAR uses predictive models, either trained or heuristic, to
//! anticipate risks such as low confidence ... When such risks are
//! detected, the system can initiate targeted refinements ahead of
//! execution, minimizing costly retries."
//!
//! The model here is a linear risk score over prompt-structure features
//! (missing hints/examples/specificity, very short prompts) and an item
//! signal (how strong the input's decision evidence looks). The threshold
//! is *calibrated* from observed `(risk, confidence)` pairs: it picks the
//! cut that best separates low-confidence outcomes, so the model adapts to
//! whatever backend is attached.

use serde::{Deserialize, Serialize};
use spear_core::features::PromptFeatures;

/// Weights of the linear risk model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiskWeights {
    /// Risk added when the prompt has no reasoning hint.
    pub missing_hint: f64,
    /// Risk added when the prompt has no example.
    pub missing_example: f64,
    /// Risk added when the prompt demands no specificity.
    pub missing_specificity: f64,
    /// Risk added when the prompt is very short (< 15 words).
    pub short_prompt: f64,
    /// Risk added per unit of item ambiguity (caller-supplied in `[0, 1]`).
    pub item_ambiguity: f64,
}

impl Default for RiskWeights {
    fn default() -> Self {
        Self {
            missing_hint: 0.20,
            missing_example: 0.10,
            missing_specificity: 0.10,
            short_prompt: 0.15,
            item_ambiguity: 0.45,
        }
    }
}

/// The predictive risk model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiskModel {
    /// Feature weights.
    pub weights: RiskWeights,
    /// Refine pre-emptively when risk exceeds this.
    pub threshold: f64,
}

impl Default for RiskModel {
    fn default() -> Self {
        Self {
            weights: RiskWeights::default(),
            threshold: 0.5,
        }
    }
}

/// One calibration sample: the risk computed before execution and the
/// confidence observed after.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiskSample {
    /// Pre-execution risk score.
    pub risk: f64,
    /// Post-execution confidence.
    pub confidence: f64,
}

impl RiskModel {
    /// Risk score in `[0, 1]` for running `prompt` over an item with the
    /// given ambiguity (0 = crisp evidence, 1 = no evidence).
    #[must_use]
    pub fn risk(&self, prompt: &str, item_ambiguity: f64) -> f64 {
        let f = PromptFeatures::detect(prompt);
        let w = &self.weights;
        let mut r = 0.0;
        if !f.has_hint {
            r += w.missing_hint;
        }
        if !f.has_example {
            r += w.missing_example;
        }
        if !f.has_specificity {
            r += w.missing_specificity;
        }
        if prompt.split_whitespace().count() < 15 {
            r += w.short_prompt;
        }
        r += w.item_ambiguity * item_ambiguity.clamp(0.0, 1.0);
        r.clamp(0.0, 1.0)
    }

    /// Whether to refine pre-emptively.
    #[must_use]
    pub fn should_refine(&self, prompt: &str, item_ambiguity: f64) -> bool {
        self.risk(prompt, item_ambiguity) > self.threshold
    }

    /// Calibrate the threshold from observed samples: choose the cut that
    /// maximizes balanced accuracy of predicting `confidence <
    /// low_confidence` from `risk > threshold`. Returns the fitted model;
    /// with no samples the model is unchanged.
    #[must_use]
    pub fn calibrate(mut self, samples: &[RiskSample], low_confidence: f64) -> Self {
        if samples.is_empty() {
            return self;
        }
        let mut best = (self.threshold, f64::NEG_INFINITY);
        // Candidate thresholds: observed risks (plus the extremes).
        let mut candidates: Vec<f64> = samples.iter().map(|s| s.risk).collect();
        candidates.push(0.0);
        candidates.push(1.0);
        for &t in &candidates {
            let (mut tp, mut fp, mut tn, mut fn_) = (0.0, 0.0, 0.0, 0.0);
            for s in samples {
                let predicted_risky = s.risk > t;
                let actually_low = s.confidence < low_confidence;
                match (predicted_risky, actually_low) {
                    (true, true) => tp += 1.0,
                    (true, false) => fp += 1.0,
                    (false, false) => tn += 1.0,
                    (false, true) => fn_ += 1.0,
                }
            }
            let tpr = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
            let tnr = if tn + fp > 0.0 { tn / (tn + fp) } else { 0.0 };
            let balanced = (tpr + tnr) / 2.0;
            if balanced > best.1 {
                best = (t, balanced);
            }
        }
        self.threshold = best.0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_prompts_on_ambiguous_items_are_risky() {
        let m = RiskModel::default();
        let weak = "Classify.";
        let strong = "Classify the sentiment. Think step by step about the \
                      reasoning. Be specific. Example:\nInput: x\nOutput: y \
                      and respond with one word only please now";
        assert!(m.risk(weak, 1.0) > 0.8);
        assert!(m.risk(strong, 0.0) < 0.1);
        assert!(m.should_refine(weak, 1.0));
        assert!(!m.should_refine(strong, 0.0));
    }

    #[test]
    fn risk_is_monotone_in_ambiguity() {
        let m = RiskModel::default();
        let p = "Classify the sentiment of the tweet with some more words here";
        assert!(m.risk(p, 0.9) > m.risk(p, 0.1));
        assert!(m.risk(p, 2.0) <= 1.0, "clamped");
    }

    #[test]
    fn calibration_finds_a_separating_threshold() {
        // Synthetic world: risk > 0.6 reliably leads to low confidence.
        let mut samples = Vec::new();
        for i in 0..50 {
            let risk = i as f64 / 50.0;
            let confidence = if risk > 0.6 { 0.4 } else { 0.85 };
            samples.push(RiskSample { risk, confidence });
        }
        let m = RiskModel {
            threshold: 0.1, // start badly calibrated
            ..RiskModel::default()
        }
        .calibrate(&samples, 0.7);
        assert!(
            (m.threshold - 0.6).abs() <= 0.03,
            "fitted threshold {} should sit at the boundary",
            m.threshold
        );
    }

    #[test]
    fn calibration_with_no_samples_is_identity() {
        let m = RiskModel::default().calibrate(&[], 0.7);
        assert_eq!(m.threshold, RiskModel::default().threshold);
    }

    #[test]
    fn predictive_beats_reactive_on_retry_count() {
        // A toy world where refinement lifts confidence above the retry
        // threshold. Reactive: always generate, retry when low. Predictive:
        // refine first when risk is high, avoiding the retry.
        let model = RiskModel::default();
        let items = [
            ("it was okay i guess", 1.0),   // ambiguous
            ("i hate this awful day", 0.0), // crisp
            ("whatever, fine", 1.0),        // ambiguous
            ("love this amazing game", 0.0),
        ];
        let weak_prompt = "Classify.";
        let mut reactive_calls = 0;
        let mut predictive_calls = 0;
        for (_, ambiguity) in items {
            // Reactive: 1 call, +1 retry if the item was ambiguous.
            reactive_calls += 1;
            if ambiguity > 0.5 {
                reactive_calls += 1;
            }
            // Predictive: refine up front (free in this toy), single call.
            let _ = model.should_refine(weak_prompt, ambiguity);
            predictive_calls += 1;
        }
        assert!(predictive_calls < reactive_calls);
    }
}
