//! Meta-optimization: replacing underperforming refiners (paper §4.4).
//!
//! "Meta prompts ... support automatic replacement of underperforming
//! refiners, such as substituting a generic rewriter with a more targeted
//! strategy like example injection." This module closes that loop: refiner
//! effectiveness mined from ref_logs (`spear_core::meta`) drives a rewrite
//! of pipelines, swapping each REF whose function's measured gain falls
//! below a threshold for the best-measured alternative from a substitution
//! table.

use serde::{Deserialize, Serialize};
use spear_core::meta::RefinerStats;
use spear_core::ops::Op;
use spear_core::pipeline::Pipeline;
use spear_core::value::Value;

/// A candidate replacement the meta-optimizer may substitute in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Substitute {
    /// Refiner name.
    pub refiner: String,
    /// Arguments to use with it.
    pub args: Value,
}

/// One applied substitution, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedSubstitution {
    /// Prompt key whose REF was rewritten.
    pub target: String,
    /// The replaced refiner.
    pub from: String,
    /// Its measured average gain (the reason it was replaced).
    pub from_gain: f64,
    /// The replacement refiner.
    pub to: String,
    /// The replacement's measured average gain.
    pub to_gain: f64,
}

/// Configuration for a meta-optimization pass.
#[derive(Debug, Clone)]
pub struct MetaOptConfig {
    /// Refiners with measured `avg_gain` below this are replacement
    /// candidates.
    pub underperformance_threshold: f64,
    /// Minimum measured applications before a refiner may be judged (or
    /// chosen) — guards against deciding on one noisy sample.
    pub min_measured: u64,
    /// The substitution pool to draw replacements from.
    pub pool: Vec<Substitute>,
}

impl Default for MetaOptConfig {
    fn default() -> Self {
        Self {
            underperformance_threshold: 0.0,
            min_measured: 2,
            pool: vec![
                Substitute {
                    refiner: "inject_example".to_string(),
                    args: spear_core::value::map([
                        ("input", Value::from("a representative input")),
                        ("output", Value::from("the expected output")),
                    ]),
                },
                Substitute {
                    refiner: "auto_refine".to_string(),
                    args: Value::Null,
                },
            ],
        }
    }
}

fn measured_gain(stats: &[RefinerStats], name: &str, min_measured: u64) -> Option<f64> {
    stats
        .iter()
        .find(|s| s.f_name == name && s.measured >= min_measured)
        .and_then(|s| s.avg_gain)
}

/// Pick the best-measured substitute that is not the refiner being
/// replaced.
fn best_substitute<'a>(
    stats: &[RefinerStats],
    config: &'a MetaOptConfig,
    exclude: &str,
) -> Option<(&'a Substitute, f64)> {
    config
        .pool
        .iter()
        .filter(|s| s.refiner != exclude)
        .filter_map(|s| measured_gain(stats, &s.refiner, config.min_measured).map(|g| (s, g)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
}

fn rewrite_ops(
    ops: &[Op],
    stats: &[RefinerStats],
    config: &MetaOptConfig,
    applied: &mut Vec<AppliedSubstitution>,
) -> Vec<Op> {
    ops.iter()
        .map(|op| match op {
            Op::Ref {
                target,
                action,
                refiner,
                args,
                mode,
            } => {
                let gain = measured_gain(stats, refiner, config.min_measured);
                match gain {
                    Some(g) if g < config.underperformance_threshold => {
                        if let Some((sub, sub_gain)) = best_substitute(stats, config, refiner) {
                            if sub_gain > g {
                                applied.push(AppliedSubstitution {
                                    target: target.clone(),
                                    from: refiner.clone(),
                                    from_gain: g,
                                    to: sub.refiner.clone(),
                                    to_gain: sub_gain,
                                });
                                return Op::Ref {
                                    target: target.clone(),
                                    action: *action,
                                    refiner: sub.refiner.clone(),
                                    args: sub.args.clone(),
                                    mode: *mode,
                                };
                            }
                        }
                        op.clone()
                    }
                    _ => Op::Ref {
                        target: target.clone(),
                        action: *action,
                        refiner: refiner.clone(),
                        args: args.clone(),
                        mode: *mode,
                    },
                }
            }
            Op::Check {
                cond,
                then_ops,
                else_ops,
            } => Op::Check {
                cond: cond.clone(),
                then_ops: rewrite_ops(then_ops, stats, config, applied),
                else_ops: rewrite_ops(else_ops, stats, config, applied),
            },
            other => other.clone(),
        })
        .collect()
}

/// Rewrite `pipeline`, substituting underperforming refiners. Returns the
/// (possibly identical) pipeline and the substitutions applied.
#[must_use]
pub fn replace_underperformers(
    pipeline: &Pipeline,
    stats: &[RefinerStats],
    config: &MetaOptConfig,
) -> (Pipeline, Vec<AppliedSubstitution>) {
    let mut applied = Vec::new();
    let ops = rewrite_ops(&pipeline.ops, stats, config, &mut applied);
    (
        Pipeline {
            name: pipeline.name.clone(),
            ops,
        },
        applied,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_core::condition::Cond;
    use spear_core::history::{RefAction, RefinementMode};
    use spear_core::pipeline::Pipeline;
    use std::collections::BTreeMap;

    fn stats(entries: &[(&str, u64, Option<f64>)]) -> Vec<RefinerStats> {
        entries
            .iter()
            .map(|(name, measured, gain)| RefinerStats {
                f_name: (*name).to_string(),
                applications: *measured,
                measured: *measured,
                avg_confidence_before: Some(0.5),
                avg_confidence_after: gain.map(|g| 0.5 + g),
                avg_gain: *gain,
                by_mode: BTreeMap::new(),
            })
            .collect()
    }

    fn pool() -> MetaOptConfig {
        MetaOptConfig {
            underperformance_threshold: 0.0,
            min_measured: 2,
            pool: vec![
                Substitute {
                    refiner: "inject_example".into(),
                    args: Value::Null,
                },
                Substitute {
                    refiner: "auto_refine".into(),
                    args: Value::Null,
                },
            ],
        }
    }

    fn pipeline_using(refiner: &str) -> Pipeline {
        Pipeline::builder("p")
            .create_text("prompt", "base", RefinementMode::Manual)
            .refine(
                "prompt",
                RefAction::Update,
                refiner,
                Value::Null,
                RefinementMode::Auto,
            )
            .check(Cond::low_confidence(0.7), |b| {
                b.refine(
                    "prompt",
                    RefAction::Update,
                    refiner,
                    Value::Null,
                    RefinementMode::Auto,
                )
            })
            .build()
    }

    #[test]
    fn replaces_the_papers_generic_rewriter_example() {
        // §4.4's example: a generic rewriter is replaced by example
        // injection once the logs show it hurts.
        let stats = stats(&[
            ("generic_rewriter", 5, Some(-0.05)),
            ("inject_example", 5, Some(0.15)),
            ("auto_refine", 5, Some(0.10)),
        ]);
        let (rewritten, applied) =
            replace_underperformers(&pipeline_using("generic_rewriter"), &stats, &pool());
        assert_eq!(applied.len(), 2, "both REFs (incl. nested) rewritten");
        assert!(applied.iter().all(|a| a.from == "generic_rewriter"));
        assert!(
            applied.iter().all(|a| a.to == "inject_example"),
            "best substitute wins"
        );
        // The rewritten pipeline contains no generic_rewriter anymore.
        let text = format!("{rewritten:?}");
        assert!(!text.contains("generic_rewriter"));
    }

    #[test]
    fn performing_refiners_are_left_alone() {
        let stats = stats(&[
            ("auto_refine", 5, Some(0.12)),
            ("inject_example", 5, Some(0.15)),
        ]);
        let original = pipeline_using("auto_refine");
        let (rewritten, applied) = replace_underperformers(&original, &stats, &pool());
        assert!(applied.is_empty());
        assert_eq!(rewritten.ops, original.ops);
    }

    #[test]
    fn unmeasured_refiners_are_never_judged() {
        // One noisy sample is not evidence.
        let stats = stats(&[
            ("fresh_refiner", 1, Some(-0.5)),
            ("inject_example", 5, Some(0.15)),
        ]);
        let (_, applied) =
            replace_underperformers(&pipeline_using("fresh_refiner"), &stats, &pool());
        assert!(applied.is_empty(), "min_measured guards against noise");
    }

    #[test]
    fn no_substitution_when_pool_is_worse() {
        let stats = stats(&[
            ("mediocre", 5, Some(-0.01)),
            ("inject_example", 5, Some(-0.10)),
            ("auto_refine", 5, Some(-0.20)),
        ]);
        let (_, applied) = replace_underperformers(&pipeline_using("mediocre"), &stats, &pool());
        assert!(applied.is_empty(), "never swap for something worse");
    }

    #[test]
    fn substitution_report_carries_evidence() {
        let stats = stats(&[("bad", 5, Some(-0.08)), ("inject_example", 5, Some(0.2))]);
        let (_, applied) = replace_underperformers(&pipeline_using("bad"), &stats, &pool());
        let a = &applied[0];
        assert_eq!(a.target, "prompt");
        assert!((a.from_gain + 0.08).abs() < 1e-12);
        assert!((a.to_gain - 0.2).abs() < 1e-12);
    }
}
