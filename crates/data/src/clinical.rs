//! Synthetic clinical notes for the Enoxaparin QA use case (paper §2).
//!
//! Real clinical notes are gated data; this generator produces structurally
//! faithful substitutes — discharge summaries, radiology reports, nursing
//! notes — with medication orders (drug, dose, timing, indication) and a
//! ground-truth record per patient, so the §2 pipeline patterns (per-note-
//! type views, confidence retries, missing-order retrieval, delegated
//! validation) can be exercised end to end.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Kind of clinical note (each kind gets its own prompt view in §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NoteType {
    /// Discharge summary: medications, hospital course, follow-up.
    Discharge,
    /// Radiology report: imaging findings and impressions.
    Radiology,
    /// Nursing note: observations and care delivery.
    Nursing,
}

impl NoteType {
    /// Tag string used for view dispatch.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            NoteType::Discharge => "discharge",
            NoteType::Radiology => "radiology",
            NoteType::Nursing => "nursing",
        }
    }
}

/// One synthetic clinical note.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClinicalNote {
    /// Note id.
    pub id: String,
    /// Patient id.
    pub patient_id: String,
    /// Note type.
    pub note_type: NoteType,
    /// Note text.
    pub text: String,
    /// Hours before "now" the note was written (time-window filtering).
    pub age_hours: u32,
}

/// Ground truth about a patient's Enoxaparin exposure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnoxaparinTruth {
    /// Patient id.
    pub patient_id: String,
    /// Whether the patient received Enoxaparin at all.
    pub received: bool,
    /// Dose in mg, when received.
    pub dose_mg: Option<u32>,
    /// Whether administration happened within the last 48 hours.
    pub within_48h: bool,
    /// Recorded indication, when received.
    pub indication: Option<String>,
}

/// A generated cohort: notes plus per-patient ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cohort {
    /// All notes across patients, shuffled.
    pub notes: Vec<ClinicalNote>,
    /// Ground truth, one per patient.
    pub truth: Vec<EnoxaparinTruth>,
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClinicalConfig {
    /// Number of patients.
    pub patients: usize,
    /// Fraction of patients on Enoxaparin.
    pub enoxaparin_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClinicalConfig {
    fn default() -> Self {
        Self {
            patients: 50,
            enoxaparin_fraction: 0.6,
            seed: 7,
        }
    }
}

const INDICATIONS: &[&str] = &[
    "DVT prophylaxis",
    "pulmonary embolism treatment",
    "atrial fibrillation bridging",
    "post-operative thromboprophylaxis",
];
const DOSES_MG: &[u32] = &[30, 40, 60, 80, 100];
const OTHER_MEDS: &[&str] = &[
    "metoprolol 25 mg twice daily",
    "lisinopril 10 mg daily",
    "atorvastatin 40 mg nightly",
    "pantoprazole 40 mg daily",
];

/// Generate a cohort per `config`.
#[must_use]
pub fn generate(config: &ClinicalConfig) -> Cohort {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut notes = Vec::new();
    let mut truth = Vec::new();
    for p in 0..config.patients {
        let patient_id = format!("pt-{p:04}");
        let received = rng.gen_bool(config.enoxaparin_fraction.clamp(0.0, 1.0));
        let dose = *DOSES_MG.choose(&mut rng).expect("non-empty");
        let indication = INDICATIONS.choose(&mut rng).expect("non-empty");
        let recent = rng.gen_bool(0.5);
        let admin_age: u32 = if recent {
            rng.gen_range(2..48)
        } else {
            rng.gen_range(49..240)
        };
        let other = OTHER_MEDS.choose(&mut rng).expect("non-empty");

        let discharge = if received {
            format!(
                "DISCHARGE SUMMARY for {patient_id}. Hospital course uneventful. \
                 Medications on discharge: enoxaparin {dose} mg subcutaneously daily \
                 for {indication}; {other}. Follow-up with primary care in 2 weeks."
            )
        } else {
            format!(
                "DISCHARGE SUMMARY for {patient_id}. Hospital course uneventful. \
                 Medications on discharge: {other}. No anticoagulation indicated. \
                 Follow-up with primary care in 2 weeks."
            )
        };
        let radiology = format!(
            "RADIOLOGY REPORT for {patient_id}. CT angiogram of the chest: {}. \
             Impression: {}.",
            if received && indication.contains("embolism") {
                "segmental filling defect in the right lower lobe"
            } else {
                "no filling defects identified"
            },
            if received && indication.contains("embolism") {
                "acute pulmonary embolism"
            } else {
                "no acute cardiopulmonary process"
            }
        );
        let nursing = if received {
            format!(
                "NURSING NOTE for {patient_id}. Patient resting comfortably. \
                 Administered enoxaparin {dose} mg SC at 2100 per order; \
                 injection site without bruising. Ambulated in hallway."
            )
        } else {
            format!(
                "NURSING NOTE for {patient_id}. Patient resting comfortably. \
                 Vitals stable overnight. Ambulated in hallway twice."
            )
        };

        notes.push(ClinicalNote {
            id: format!("{patient_id}-d"),
            patient_id: patient_id.clone(),
            note_type: NoteType::Discharge,
            text: discharge,
            age_hours: admin_age.saturating_add(rng.gen_range(0..12)),
        });
        notes.push(ClinicalNote {
            id: format!("{patient_id}-r"),
            patient_id: patient_id.clone(),
            note_type: NoteType::Radiology,
            text: radiology,
            age_hours: admin_age.saturating_add(rng.gen_range(12..36)),
        });
        notes.push(ClinicalNote {
            id: format!("{patient_id}-n"),
            patient_id: patient_id.clone(),
            note_type: NoteType::Nursing,
            text: nursing,
            age_hours: admin_age,
        });

        truth.push(EnoxaparinTruth {
            patient_id,
            received,
            dose_mg: received.then_some(dose),
            within_48h: received && admin_age < 48,
            indication: received.then(|| (*indication).to_string()),
        });
    }
    notes.shuffle(&mut rng);
    Cohort { notes, truth }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_is_deterministic_and_sized() {
        let cfg = ClinicalConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.notes.len(), 150, "3 notes per patient");
        assert_eq!(a.truth.len(), 50);
    }

    #[test]
    fn truth_matches_note_text() {
        let cohort = generate(&ClinicalConfig::default());
        for t in &cohort.truth {
            let discharge = cohort
                .notes
                .iter()
                .find(|n| n.patient_id == t.patient_id && n.note_type == NoteType::Discharge)
                .expect("every patient has a discharge note");
            assert_eq!(
                discharge.text.contains("enoxaparin"),
                t.received,
                "patient {}",
                t.patient_id
            );
            if let Some(dose) = t.dose_mg {
                assert!(discharge.text.contains(&format!("enoxaparin {dose} mg")));
            }
        }
    }

    #[test]
    fn within_48h_agrees_with_nursing_note_age() {
        let cohort = generate(&ClinicalConfig::default());
        for t in cohort.truth.iter().filter(|t| t.received) {
            let nursing = cohort
                .notes
                .iter()
                .find(|n| n.patient_id == t.patient_id && n.note_type == NoteType::Nursing)
                .unwrap();
            assert_eq!(t.within_48h, nursing.age_hours < 48);
        }
    }

    #[test]
    fn fraction_on_drug_is_respected() {
        let cohort = generate(&ClinicalConfig {
            patients: 400,
            enoxaparin_fraction: 0.6,
            seed: 1,
        });
        let on = cohort.truth.iter().filter(|t| t.received).count();
        let frac = on as f64 / 400.0;
        assert!((frac - 0.6).abs() < 0.07, "got {frac}");
    }

    #[test]
    fn note_types_have_distinct_shapes() {
        let cohort = generate(&ClinicalConfig::default());
        assert!(cohort
            .notes
            .iter()
            .filter(|n| n.note_type == NoteType::Radiology)
            .all(|n| n.text.contains("Impression:")));
        assert!(cohort
            .notes
            .iter()
            .filter(|n| n.note_type == NoteType::Discharge)
            .all(|n| n.text.contains("Follow-up")));
    }
}
