//! Shared vocabulary: sentiment lexicon and topic word lists.
//!
//! Both the synthetic tweet generator and the LLM simulator's behavioural
//! task model use this vocabulary. That coupling is deliberate and mirrors
//! reality: a competent model recovers the sentiment a human author encoded;
//! here the generator encodes polarity with these words and the simulated
//! model decodes it with the same lexicon, with controlled ambiguity
//! supplying the error floor.

/// Strongly positive words.
pub const POSITIVE_WORDS: &[&str] = &[
    "love",
    "great",
    "awesome",
    "amazing",
    "happy",
    "wonderful",
    "excited",
    "fantastic",
    "best",
    "beautiful",
    "fun",
    "glad",
    "proud",
    "perfect",
    "sweet",
    "brilliant",
    "delighted",
    "enjoyed",
    "thrilled",
    "grateful",
];

/// Strongly negative words.
pub const NEGATIVE_WORDS: &[&str] = &[
    "hate",
    "awful",
    "terrible",
    "sad",
    "horrible",
    "worst",
    "angry",
    "annoyed",
    "miserable",
    "disappointed",
    "upset",
    "frustrated",
    "boring",
    "ruined",
    "sick",
    "tired",
    "failed",
    "ugh",
    "crying",
    "stressed",
];

/// Ambiguous words that weaken the polarity signal (used to create hard
/// items — the simulator's residual error source).
pub const AMBIGUOUS_WORDS: &[&str] = &[
    "okay",
    "fine",
    "whatever",
    "interesting",
    "unexpected",
    "surprising",
    "different",
    "busy",
    "quiet",
    "long",
];

/// School-topic nouns (the refined filter of Table 3 targets these).
pub const SCHOOL_WORDS: &[&str] = &[
    "school",
    "homework",
    "exam",
    "teacher",
    "class",
    "semester",
    "lecture",
    "campus",
    "finals",
    "professor",
    "studying",
    "grades",
];

/// Work-topic nouns.
pub const WORK_WORDS: &[&str] = &[
    "work", "meeting", "boss", "office", "deadline", "shift", "project", "overtime", "commute",
    "paycheck",
];

/// Weather-topic nouns.
pub const WEATHER_WORDS: &[&str] = &[
    "rain", "sunshine", "storm", "snow", "weather", "heatwave", "clouds", "wind", "fog", "thunder",
];

/// Sports-topic nouns.
pub const SPORTS_WORDS: &[&str] = &[
    "game", "team", "match", "season", "coach", "goal", "playoffs", "training", "score", "stadium",
];

/// Food-topic nouns.
pub const FOOD_WORDS: &[&str] = &[
    "coffee",
    "pizza",
    "dinner",
    "breakfast",
    "lunch",
    "dessert",
    "restaurant",
    "recipe",
    "snack",
    "burger",
];

fn words_of(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_lowercase)
}

/// Lexicon polarity score of `text`: +1 per positive word, −1 per negative
/// word. 0 means no (or balanced) signal.
#[must_use]
pub fn sentiment_score(text: &str) -> i32 {
    let mut score = 0;
    for w in words_of(text) {
        if POSITIVE_WORDS.contains(&w.as_str()) {
            score += 1;
        } else if NEGATIVE_WORDS.contains(&w.as_str()) {
            score -= 1;
        }
    }
    score
}

/// Whether `text` mentions a school-topic word.
#[must_use]
pub fn is_school_related(text: &str) -> bool {
    words_of(text).any(|w| SCHOOL_WORDS.contains(&w.as_str()))
}

/// Count of ambiguous words in `text` (difficulty proxy).
#[must_use]
pub fn ambiguity(text: &str) -> usize {
    words_of(text)
        .filter(|w| AMBIGUOUS_WORDS.contains(&w.as_str()))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_reflect_polarity() {
        assert!(sentiment_score("I love this awesome day") > 0);
        assert!(sentiment_score("worst day ever, so sad") < 0);
        assert_eq!(sentiment_score("the cat sat on the mat"), 0);
        assert_eq!(sentiment_score("love and hate"), 0, "balanced cancels");
    }

    #[test]
    fn scoring_is_case_and_punct_insensitive() {
        assert_eq!(sentiment_score("LOVE!!!"), 1);
        assert_eq!(sentiment_score("Hate."), -1);
    }

    #[test]
    fn school_detection() {
        assert!(is_school_related("so much homework tonight"));
        assert!(is_school_related("Finals week."));
        assert!(!is_school_related("the office meeting ran long"));
    }

    #[test]
    fn ambiguity_counts() {
        assert_eq!(ambiguity("it was okay I guess, fine really"), 2);
        assert_eq!(ambiguity("love it"), 0);
    }

    #[test]
    fn word_lists_are_disjoint() {
        for p in POSITIVE_WORDS {
            assert!(!NEGATIVE_WORDS.contains(p), "{p} in both polarities");
            assert!(!AMBIGUOUS_WORDS.contains(p), "{p} positive and ambiguous");
        }
        for n in NEGATIVE_WORDS {
            assert!(!AMBIGUOUS_WORDS.contains(n), "{n} negative and ambiguous");
        }
    }
}
