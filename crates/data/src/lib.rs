//! # spear-data — synthetic datasets and evaluation metrics
//!
//! Substitutes for the paper's gated data (DESIGN.md §1):
//!
//! - [`tweets`] — a seeded Sentiment140-style corpus generator with
//!   controllable class balance (→ filter selectivity for Table 4),
//!   school-topic fraction (→ the refined task of Table 3), and difficulty,
//! - [`clinical`] — synthetic discharge/radiology/nursing notes with
//!   Enoxaparin ground truth for the §2 use case,
//! - [`vocab`] — the sentiment lexicon and topic vocabularies shared with
//!   the LLM simulator's behavioural task model,
//! - [`metrics`] — confusion matrices, precision/recall/F1, accuracy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clinical;
pub mod metrics;
pub mod tweets;
pub mod vocab;

pub use clinical::{ClinicalConfig, ClinicalNote, Cohort, EnoxaparinTruth, NoteType};
pub use metrics::{confusion_from, Confusion};
pub use tweets::{generate as generate_tweets, Sentiment, Topic, Tweet, TweetConfig};
