//! Binary-classification evaluation metrics (Table 3 reports F1; Figure 1
//! and Table 4 report accuracy).

use serde::{Deserialize, Serialize};

/// A 2×2 confusion matrix for a binary task with one designated positive
/// class (for the paper's tasks, "negative sentiment" — or "negative AND
/// school-related" — is the positive class of the filter).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl Confusion {
    /// Record one `(predicted, actual)` observation.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision = TP / (TP + FP); 0 when undefined.
    #[must_use]
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall = TP / (TP + FN); 0 when undefined.
    #[must_use]
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 = harmonic mean of precision and recall; 0 when undefined.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy = (TP + TN) / total; 0 when empty.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Merge another confusion matrix into this one.
    pub fn absorb(&mut self, other: Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Build a confusion matrix from parallel prediction/truth slices.
///
/// # Panics
///
/// Panics when the slices' lengths differ (caller bug).
#[must_use]
pub fn confusion_from(predicted: &[bool], actual: &[bool]) -> Confusion {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "prediction/truth length mismatch"
    );
    let mut c = Confusion::default();
    for (&p, &a) in predicted.iter().zip(actual) {
        c.record(p, a);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let c = confusion_from(&[true, false, true], &[true, false, true]);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
    }

    #[test]
    fn textbook_values() {
        // TP=6, FP=2, FN=3, TN=9.
        let mut c = Confusion {
            tp: 6,
            fp: 2,
            tn: 9,
            fn_: 3,
        };
        assert!((c.precision() - 0.75).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 0.70588235).abs() < 1e-6);
        assert!((c.accuracy() - 0.75).abs() < 1e-12);
        let before = c.total();
        c.absorb(c);
        assert_eq!(c.total(), before * 2);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let empty = Confusion::default();
        assert_eq!(empty.f1(), 0.0);
        assert_eq!(empty.accuracy(), 0.0);

        // Never predicts positive.
        let c = confusion_from(&[false, false], &[true, false]);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = confusion_from(&[true], &[true, false]);
    }

    #[test]
    fn record_covers_all_cells() {
        let mut c = Confusion::default();
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (1, 1, 1, 1));
        assert_eq!(c.accuracy(), 0.5);
    }
}
