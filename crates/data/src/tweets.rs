//! Synthetic Sentiment140-style tweet corpus (DESIGN.md substitution for
//! the Kaggle dataset the paper samples).
//!
//! The generator produces class-balanced (or arbitrarily skewed) labelled
//! tweets over several topics, with social-media noise (hashtags, mentions,
//! URLs, elongations) and a controllable fraction of *hard* items whose
//! polarity signal is weakened by ambiguous wording. Everything is seeded:
//! the same config yields the same corpus, so every benchmark run is
//! reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::vocab;

/// Ground-truth sentiment label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sentiment {
    /// Positive tweet.
    Positive,
    /// Negative tweet.
    Negative,
}

impl Sentiment {
    /// Lowercase label string used by classifier outputs.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Sentiment::Positive => "positive",
            Sentiment::Negative => "negative",
        }
    }
}

/// Tweet topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topic {
    /// School / studying.
    School,
    /// Work / office.
    Work,
    /// Weather.
    Weather,
    /// Sports.
    Sports,
    /// Food.
    Food,
}

impl Topic {
    fn nouns(self) -> &'static [&'static str] {
        match self {
            Topic::School => vocab::SCHOOL_WORDS,
            Topic::Work => vocab::WORK_WORDS,
            Topic::Weather => vocab::WEATHER_WORDS,
            Topic::Sports => vocab::SPORTS_WORDS,
            Topic::Food => vocab::FOOD_WORDS,
        }
    }

    const NON_SCHOOL: [Topic; 4] = [Topic::Work, Topic::Weather, Topic::Sports, Topic::Food];
}

/// One labelled synthetic tweet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tweet {
    /// Stable id within the corpus.
    pub id: u64,
    /// Tweet text.
    pub text: String,
    /// Ground-truth sentiment.
    pub label: Sentiment,
    /// Topic the tweet was generated about.
    pub topic: Topic,
    /// Whether the item was generated as *hard* (ambiguous wording).
    pub hard: bool,
}

/// Corpus configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TweetConfig {
    /// Number of tweets.
    pub count: usize,
    /// Fraction with negative ground truth (0.5 = class-balanced, the
    /// paper's Table 3 setting; Table 4 sweeps this as filter selectivity).
    pub negative_fraction: f64,
    /// Fraction about school topics (drives the refined-task selectivity).
    pub school_fraction: f64,
    /// Fraction of hard (ambiguous) items.
    pub hard_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TweetConfig {
    fn default() -> Self {
        Self {
            count: 1000,
            negative_fraction: 0.5,
            school_fraction: 0.3,
            hard_fraction: 0.12,
            seed: 140,
        }
    }
}

const POSITIVE_TEMPLATES: &[&str] = &[
    "just had the most {adj} {noun} ever",
    "feeling so {adj} about {noun} today",
    "{noun} was absolutely {adj}, can't stop smiling",
    "honestly {adj} day thanks to {noun}",
    "that {noun} made my whole week, so {adj}",
];

const NEGATIVE_TEMPLATES: &[&str] = &[
    "this {noun} is {adj}, i want to go home",
    "so {adj} about {noun} right now",
    "{noun} again... absolutely {adj}",
    "can't believe how {adj} that {noun} was",
    "another {adj} day of {noun}, done with this",
];

const HASHTAGS: &[&str] = &["#monday", "#life", "#fml", "#blessed", "#nofilter", "#2009"];
const MENTIONS: &[&str] = &["@mike_88", "@sarah", "@jdawg", "@bestie", "@mom"];

/// Generate a corpus per `config`.
#[must_use]
pub fn generate(config: &TweetConfig) -> Vec<Tweet> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let negatives = (config.count as f64 * config.negative_fraction).round() as usize;
    let mut tweets = Vec::with_capacity(config.count);
    for id in 0..config.count {
        let label = if id < negatives {
            Sentiment::Negative
        } else {
            Sentiment::Positive
        };
        let topic = if rng.gen_bool(config.school_fraction.clamp(0.0, 1.0)) {
            Topic::School
        } else {
            *Topic::NON_SCHOOL.choose(&mut rng).expect("non-empty")
        };
        let hard = rng.gen_bool(config.hard_fraction.clamp(0.0, 1.0));
        let text = render(label, topic, hard, &mut rng);
        tweets.push(Tweet {
            id: id as u64,
            text,
            label,
            topic,
            hard,
        });
    }
    tweets.shuffle(&mut rng);
    tweets
}

fn render(label: Sentiment, topic: Topic, hard: bool, rng: &mut StdRng) -> String {
    let (templates, adjectives) = match label {
        Sentiment::Positive => (POSITIVE_TEMPLATES, vocab::POSITIVE_WORDS),
        Sentiment::Negative => (NEGATIVE_TEMPLATES, vocab::NEGATIVE_WORDS),
    };
    let template = templates.choose(rng).expect("non-empty");
    let noun = topic.nouns().choose(rng).expect("non-empty");
    // Hard items use an ambiguous adjective, keeping only a faint polarity
    // trace via an optional weak second clause.
    let adj = if hard {
        vocab::AMBIGUOUS_WORDS.choose(rng).expect("non-empty")
    } else {
        adjectives.choose(rng).expect("non-empty")
    };
    let mut text = template.replace("{adj}", adj).replace("{noun}", noun);
    if hard && rng.gen_bool(0.5) {
        // Faint signal so hard items are recoverable ~half the time.
        let weak = adjectives.choose(rng).expect("non-empty");
        text.push_str(&format!(" kind of {weak} i guess"));
    }
    // Social-media noise.
    if rng.gen_bool(0.4) {
        text.push(' ');
        text.push_str(HASHTAGS.choose(rng).expect("non-empty"));
    }
    if rng.gen_bool(0.25) {
        text = format!("{} {}", MENTIONS.choose(rng).expect("non-empty"), text);
    }
    if rng.gen_bool(0.15) {
        text.push_str(" http://t.co/");
        for _ in 0..6 {
            text.push(char::from(b'a' + rng.gen_range(0..26u8)));
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let cfg = TweetConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TweetConfig::default());
        let b = generate(&TweetConfig {
            seed: 141,
            ..TweetConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn class_balance_matches_config() {
        for frac in [0.1, 0.3, 0.5, 0.8, 1.0] {
            let tweets = generate(&TweetConfig {
                count: 1000,
                negative_fraction: frac,
                ..TweetConfig::default()
            });
            let neg = tweets
                .iter()
                .filter(|t| t.label == Sentiment::Negative)
                .count();
            assert_eq!(neg, (1000.0 * frac) as usize, "fraction {frac}");
        }
    }

    #[test]
    fn school_fraction_is_respected_approximately() {
        let tweets = generate(&TweetConfig {
            count: 2000,
            school_fraction: 0.3,
            ..TweetConfig::default()
        });
        let school = tweets.iter().filter(|t| t.topic == Topic::School).count();
        let frac = school as f64 / 2000.0;
        assert!((frac - 0.3).abs() < 0.05, "got {frac}");
    }

    #[test]
    fn easy_tweets_carry_recoverable_polarity() {
        let tweets = generate(&TweetConfig {
            count: 500,
            hard_fraction: 0.0,
            ..TweetConfig::default()
        });
        let recovered = tweets
            .iter()
            .filter(|t| {
                let score = crate::vocab::sentiment_score(&t.text);
                (score > 0) == (t.label == Sentiment::Positive) && score != 0
            })
            .count();
        assert_eq!(recovered, 500, "lexicon must recover easy ground truth");
    }

    #[test]
    fn hard_tweets_weaken_the_signal() {
        let tweets = generate(&TweetConfig {
            count: 600,
            hard_fraction: 1.0,
            ..TweetConfig::default()
        });
        let zero_signal = tweets
            .iter()
            .filter(|t| crate::vocab::sentiment_score(&t.text) == 0)
            .count();
        assert!(
            zero_signal > 150,
            "many hard items should have no lexicon signal, got {zero_signal}"
        );
    }

    #[test]
    fn school_topic_is_detectable() {
        let tweets = generate(&TweetConfig {
            count: 400,
            school_fraction: 1.0,
            ..TweetConfig::default()
        });
        let detected = tweets
            .iter()
            .filter(|t| crate::vocab::is_school_related(&t.text))
            .count();
        assert_eq!(detected, 400);
    }

    #[test]
    fn serde_roundtrip() {
        let tweets = generate(&TweetConfig {
            count: 3,
            ..TweetConfig::default()
        });
        let json = serde_json::to_string(&tweets).unwrap();
        let back: Vec<Tweet> = serde_json::from_str(&json).unwrap();
        assert_eq!(tweets, back);
    }
}
