//! Property tests for the retrieval engine: BM25 results must agree with a
//! brute-force reference on membership, structured filters must behave like
//! predicate evaluation, and limits must always be respected.

use std::collections::BTreeMap;

use proptest::prelude::*;
use spear_core::retriever::{RetrievalQuery, RetrievalRequest, Retriever};
use spear_core::value::Value;
use spear_retrieval::{DocStore, Document};

fn word() -> impl Strategy<Value = String> {
    // Small vocabulary → frequent overlaps between docs and queries.
    prop_oneof![
        Just("enoxaparin".to_string()),
        Just("dose".to_string()),
        Just("daily".to_string()),
        Just("order".to_string()),
        Just("negative".to_string()),
        Just("stable".to_string()),
        Just("imaging".to_string()),
        "[a-z]{3,7}".prop_map(|s| s),
    ]
}

fn doc_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(word(), 1..12).prop_map(|w| w.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every BM25 hit contains at least one query keyword, and every
    /// document containing a keyword is a hit (when the limit allows).
    #[test]
    fn bm25_membership_matches_brute_force(
        docs in proptest::collection::vec(doc_text(), 1..15),
        query in proptest::collection::vec(word(), 1..4),
    ) {
        let store = DocStore::new();
        for (i, text) in docs.iter().enumerate() {
            store.add(Document::new(format!("d{i}"), text.clone(), BTreeMap::new()));
        }
        let query_text = query.join(" ");
        let keywords: Vec<&String> = query.iter().filter(|w| w.len() >= 2).collect();
        let hits = store
            .retrieve(&RetrievalRequest {
                source: "s".into(),
                query: RetrievalQuery::Prompt(query_text),
                limit: docs.len() + 1,
            })
            .unwrap();

        let expected: Vec<usize> = docs
            .iter()
            .enumerate()
            .filter(|(_, text)| {
                let words: Vec<&str> = text.split_whitespace().collect();
                keywords.iter().any(|k| words.contains(&k.as_str()))
            })
            .map(|(i, _)| i)
            .collect();
        let mut got: Vec<usize> = hits
            .iter()
            .map(|h| h.id.trim_start_matches('d').parse().unwrap())
            .collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
        // Scores are positive and sorted descending by construction.
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    /// Structured filters behave exactly like predicate evaluation over the
    /// document fields.
    #[test]
    fn structured_filters_match_predicates(
        types in proptest::collection::vec(prop_oneof![Just("a"), Just("b"), Just("c")], 1..20),
        wanted in prop_oneof![Just("a"), Just("b"), Just("c")],
        ages in proptest::collection::vec(0u64..200, 1..20),
        max_age in 0u64..200,
    ) {
        let n = types.len().min(ages.len());
        let store = DocStore::new();
        for i in 0..n {
            let mut fields = BTreeMap::new();
            fields.insert("note_type".to_string(), Value::from(types[i]));
            fields.insert("age_hours".to_string(), Value::from(ages[i]));
            store.add(Document::new(format!("d{i}"), "text", fields));
        }
        let mut filters = BTreeMap::new();
        filters.insert("note_type".to_string(), Value::from(wanted));
        filters.insert("max_age_hours".to_string(), Value::from(max_age));
        let hits = store
            .retrieve(&RetrievalRequest {
                source: "s".into(),
                query: RetrievalQuery::Structured(filters),
                limit: n + 1,
            })
            .unwrap();
        let expected = (0..n)
            .filter(|&i| types[i] == wanted && ages[i] <= max_age)
            .count();
        prop_assert_eq!(hits.len(), expected);
    }

    /// Limits are respected in every query mode.
    #[test]
    fn limits_always_hold(
        docs in proptest::collection::vec(doc_text(), 0..12),
        limit in 0usize..6,
    ) {
        let store = DocStore::new();
        for (i, text) in docs.iter().enumerate() {
            store.add(Document::new(format!("d{i}"), text.clone(), BTreeMap::new()));
        }
        for query in [
            RetrievalQuery::All,
            RetrievalQuery::Prompt("enoxaparin dose order".into()),
            RetrievalQuery::Structured(BTreeMap::new()),
        ] {
            let hits = store
                .retrieve(&RetrievalRequest {
                    source: "s".into(),
                    query,
                    limit,
                })
                .unwrap();
            prop_assert!(hits.len() <= limit);
        }
    }
}
