//! Inverted index with BM25 ranking.
//!
//! A small, correct BM25 implementation over in-memory documents — the
//! ranking substrate behind prompt-based RET. Postings are
//! `term → (doc, tf)` lists; document length normalization uses the
//! standard `k1 = 1.2`, `b = 0.75` parameters.

use std::collections::HashMap;

use crate::text::words;

/// BM25 `k1` (term-frequency saturation).
pub const K1: f64 = 1.2;
/// BM25 `b` (length normalization).
pub const B: f64 = 0.75;

/// Internal document handle.
pub type DocId = usize;

#[derive(Debug, Default)]
struct Posting {
    docs: Vec<(DocId, u32)>,
}

/// An inverted index over documents added with [`InvertedIndex::add`].
#[derive(Debug, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Posting>,
    doc_lengths: Vec<u32>,
    total_len: u64,
}

impl InvertedIndex {
    /// Empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Index `text`, returning its [`DocId`] (dense, insertion-ordered).
    pub fn add(&mut self, text: &str) -> DocId {
        let id = self.doc_lengths.len();
        let mut tf: HashMap<String, u32> = HashMap::new();
        let mut len = 0u32;
        for w in words(text) {
            *tf.entry(w).or_default() += 1;
            len += 1;
        }
        for (term, count) in tf {
            self.postings
                .entry(term)
                .or_default()
                .docs
                .push((id, count));
        }
        self.doc_lengths.push(len);
        self.total_len += u64::from(len);
        id
    }

    /// Number of indexed documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.doc_lengths.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.doc_lengths.is_empty()
    }

    fn avgdl(&self) -> f64 {
        if self.doc_lengths.is_empty() {
            0.0
        } else {
            self.total_len as f64 / self.doc_lengths.len() as f64
        }
    }

    /// BM25-score `query_terms` (already analysed) against all documents;
    /// returns `(doc, score)` with score > 0, best first, ties broken by
    /// doc id for determinism.
    #[must_use]
    pub fn search(&self, query_terms: &[String], limit: usize) -> Vec<(DocId, f64)> {
        let n = self.doc_lengths.len() as f64;
        if n == 0.0 {
            return Vec::new();
        }
        let avgdl = self.avgdl().max(1.0);
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        for term in query_terms {
            let Some(posting) = self.postings.get(term) else {
                continue;
            };
            let df = posting.docs.len() as f64;
            // BM25+-style floor keeps idf positive for very common terms.
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for &(doc, tf) in &posting.docs {
                let tf = f64::from(tf);
                let dl = f64::from(self.doc_lengths[doc]);
                let norm = tf * (K1 + 1.0) / (tf + K1 * (1.0 - B + B * dl / avgdl));
                *scores.entry(doc).or_default() += idf * norm;
            }
        }
        let mut ranked: Vec<(DocId, f64)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        ranked.truncate(limit);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::keywords;

    fn sample() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.add("enoxaparin 40 mg daily for dvt prophylaxis");
        idx.add("no anticoagulation indicated, discharged on lisinopril");
        idx.add("enoxaparin held before procedure, enoxaparin resumed after");
        idx.add("ct angiogram negative for pulmonary embolism");
        idx
    }

    #[test]
    fn exact_term_matches_rank_by_tf() {
        let idx = sample();
        let hits = idx.search(&keywords("enoxaparin"), 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 2, "doc with tf=2 ranks first");
        assert_eq!(hits[1].0, 0);
        assert!(hits[0].1 > hits[1].1);
    }

    #[test]
    fn multi_term_queries_accumulate() {
        let idx = sample();
        let hits = idx.search(&keywords("enoxaparin dvt prophylaxis"), 10);
        assert_eq!(hits[0].0, 0, "doc matching all three terms wins");
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        let mut idx = InvertedIndex::new();
        for i in 0..20 {
            idx.add(&format!("common filler note number {i}"));
        }
        idx.add("common rareterm appears here");
        let hits = idx.search(&keywords("common rareterm"), 3);
        assert_eq!(hits[0].0, 20);
    }

    #[test]
    fn no_match_returns_empty() {
        let idx = sample();
        assert!(idx.search(&keywords("warfarin"), 10).is_empty());
        assert!(InvertedIndex::new().search(&keywords("x"), 5).is_empty());
    }

    #[test]
    fn limit_is_respected_and_order_deterministic() {
        let mut idx = InvertedIndex::new();
        for _ in 0..5 {
            idx.add("identical tied document text");
        }
        let hits = idx.search(&keywords("identical document"), 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(
            hits.iter().map(|h| h.0).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "ties break by doc id"
        );
    }

    #[test]
    fn scores_are_positive_for_all_hits() {
        let idx = sample();
        for (_, s) in idx.search(&keywords("enoxaparin procedure daily"), 10) {
            assert!(s > 0.0);
        }
    }
}
