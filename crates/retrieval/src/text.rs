//! Text analysis for indexing and querying: word tokenization and
//! stopword-aware keyword extraction for prompt-based retrieval.

/// English stopwords plus retrieval-prompt boilerplate ("retrieve",
/// "find", …) that carries no content signal.
const STOPWORDS: &[&str] = &[
    "a", "about", "all", "an", "and", "any", "are", "as", "at", "be", "but", "by", "fetch", "find",
    "for", "from", "get", "has", "have", "i", "in", "into", "is", "it", "its", "last", "list",
    "look", "lookup", "me", "my", "no", "not", "of", "on", "or", "our", "over", "past", "please",
    "related", "relevant", "retrieve", "show", "that", "the", "their", "them", "then", "there",
    "these", "they", "this", "to", "under", "up", "us", "was", "we", "were", "what", "when",
    "where", "which", "while", "who", "whose", "will", "with", "within", "you", "your",
];

/// Lowercased alphanumeric word stream.
pub fn words(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_lowercase)
}

/// Whether `word` (already lowercased) is a stopword.
#[must_use]
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Content keywords of a retrieval prompt: lowercased, de-duplicated (order
/// preserving), stopwords removed, length ≥ 2.
#[must_use]
pub fn keywords(prompt: &str) -> Vec<String> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for w in words(prompt) {
        if w.len() >= 2 && !is_stopword(&w) && seen.insert(w.clone()) {
            out.push(w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_table_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(STOPWORDS, sorted.as_slice(), "keep STOPWORDS sorted");
    }

    #[test]
    fn words_lowercase_and_split() {
        let w: Vec<String> = words("Enoxaparin 40mg, SC/daily!").collect();
        assert_eq!(w, vec!["enoxaparin", "40mg", "sc", "daily"]);
    }

    #[test]
    fn keywords_strip_boilerplate() {
        let k =
            keywords("Retrieve all medication orders related to Enoxaparin from the last 72 hours");
        assert_eq!(k, vec!["medication", "orders", "enoxaparin", "72", "hours"]);
    }

    #[test]
    fn keywords_deduplicate_preserving_order() {
        assert_eq!(keywords("dose dose timing dose"), vec!["dose", "timing"]);
    }

    #[test]
    fn stopword_checks() {
        assert!(is_stopword("the"));
        assert!(is_stopword("retrieve"));
        assert!(!is_stopword("enoxaparin"));
    }
}
