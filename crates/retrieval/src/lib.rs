//! # spear-retrieval — document store and BM25 retrieval engine
//!
//! The retrieval substrate behind SPEAR's RET operator. Implements the
//! [`spear_core::retriever::Retriever`] trait with three query modes:
//!
//! - **All** — bounded scan in insertion order,
//! - **Structured** — field-equality filters plus the paper's special
//!   cases (patient id, `max_age_hours` time windows),
//! - **Prompt** — natural-language retrieval intent: stopword-aware keyword
//!   extraction ([`text::keywords`]) ranked by BM25 ([`index`]). Because
//!   the intent prompt lives in **P**, REF can refine *what gets retrieved*
//!   at runtime (paper §2: `RET["med_context", prompt: P["retrieve_meds_72hr"]]`).
//!
//! ```
//! use std::collections::BTreeMap;
//! use spear_core::retriever::{RetrievalQuery, RetrievalRequest, Retriever};
//! use spear_retrieval::{DocStore, Document};
//!
//! let store = DocStore::new();
//! store.add(Document::new("n1", "enoxaparin 40 mg daily", BTreeMap::new()));
//! store.add(Document::new("n2", "vitals stable overnight", BTreeMap::new()));
//!
//! let hits = store
//!     .retrieve(&RetrievalRequest {
//!         source: "notes".into(),
//!         query: RetrievalQuery::Prompt("find enoxaparin orders".into()),
//!         limit: 5,
//!     })
//!     .unwrap();
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].id, "n1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod store;
pub mod text;

pub use index::{DocId, InvertedIndex};
pub use store::{doc_store_from_notes, DocStore, Document};
