//! The document store: structured + prompt-based retrieval behind the core
//! `Retriever` trait.
//!
//! RET's two query modes (paper §3.3) are both served here:
//!
//! - **structured** retrieval filters on document fields, with first-class
//!   support for the paper's examples — patient id and time windows
//!   (`RET["order_lookup", patient_id, time_window]`),
//! - **prompt-based** retrieval extracts content keywords from the rendered
//!   (and REF-refinable) retrieval prompt and ranks with BM25.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use spear_core::error::{Result, SpearError};
use spear_core::retriever::{RetrievalQuery, RetrievalRequest, RetrievedDoc, Retriever};
use spear_core::value::Value;

use crate::index::InvertedIndex;
use crate::text::keywords;

/// A stored document.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// External id.
    pub id: String,
    /// Document text.
    pub text: String,
    /// Structured fields (e.g. `patient_id`, `note_type`, `age_hours`).
    pub fields: BTreeMap<String, Value>,
}

impl Document {
    /// Create a document with fields.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        text: impl Into<String>,
        fields: BTreeMap<String, Value>,
    ) -> Self {
        Self {
            id: id.into(),
            text: text.into(),
            fields,
        }
    }
}

struct Inner {
    docs: Vec<Document>,
    index: InvertedIndex,
}

/// An indexed, concurrently readable document store.
pub struct DocStore {
    inner: RwLock<Inner>,
}

impl Default for DocStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DocStore {
    /// Empty store.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: RwLock::new(Inner {
                docs: Vec::new(),
                index: InvertedIndex::new(),
            }),
        }
    }

    /// Add one document (indexed immediately).
    pub fn add(&self, doc: Document) {
        let mut inner = self.inner.write();
        inner.index.add(&doc.text);
        inner.docs.push(doc);
    }

    /// Add many documents.
    pub fn add_all(&self, docs: impl IntoIterator<Item = Document>) {
        for d in docs {
            self.add(d);
        }
    }

    /// Number of documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().docs.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structured-filter match. Special keys:
    /// `max_age_hours` — numeric upper bound on the `age_hours` field;
    /// every other key requires exact equality with the document field.
    fn matches(doc: &Document, filters: &BTreeMap<String, Value>) -> Result<bool> {
        for (key, expected) in filters {
            if key == "max_age_hours" {
                let bound = expected.as_f64().ok_or_else(|| {
                    SpearError::Retrieval(format!("max_age_hours must be numeric, got {expected}"))
                })?;
                let age = doc
                    .fields
                    .get("age_hours")
                    .and_then(Value::as_f64)
                    .unwrap_or(f64::INFINITY);
                if age > bound {
                    return Ok(false);
                }
            } else if doc.fields.get(key) != Some(expected) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn to_retrieved(doc: &Document, score: f64) -> RetrievedDoc {
        RetrievedDoc {
            id: doc.id.clone(),
            text: doc.text.clone(),
            score,
            fields: doc.fields.clone(),
        }
    }
}

impl Retriever for DocStore {
    fn retrieve(&self, request: &RetrievalRequest) -> Result<Vec<RetrievedDoc>> {
        let inner = self.inner.read();
        let mut out = match &request.query {
            RetrievalQuery::All => inner
                .docs
                .iter()
                .map(|d| Self::to_retrieved(d, 0.0))
                .collect::<Vec<_>>(),
            RetrievalQuery::Structured(filters) => {
                let mut hits = Vec::new();
                for d in &inner.docs {
                    if Self::matches(d, filters)? {
                        hits.push(Self::to_retrieved(d, 0.0));
                    }
                }
                hits
            }
            RetrievalQuery::Prompt(prompt) => {
                let terms = keywords(prompt);
                inner
                    .index
                    .search(&terms, request.limit)
                    .into_iter()
                    .map(|(doc_id, score)| Self::to_retrieved(&inner.docs[doc_id], score))
                    .collect()
            }
        };
        out.truncate(request.limit);
        Ok(out)
    }
}

impl std::fmt::Debug for DocStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocStore")
            .field("docs", &self.len())
            .finish()
    }
}

/// Load a clinical cohort from `spear-data` into a [`DocStore`], mapping
/// note fields (`patient_id`, `note_type`, `age_hours`) to structured
/// filters.
#[must_use]
pub fn doc_store_from_notes(notes: &[spear_data::ClinicalNote]) -> DocStore {
    let store = DocStore::new();
    for n in notes {
        let mut fields = BTreeMap::new();
        fields.insert("patient_id".to_string(), Value::from(n.patient_id.clone()));
        fields.insert(
            "note_type".to_string(),
            Value::from(n.note_type.tag().to_string()),
        );
        fields.insert("age_hours".to_string(), Value::from(u64::from(n.age_hours)));
        store.add(Document::new(n.id.clone(), n.text.clone(), fields));
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect()
    }

    fn store() -> DocStore {
        let s = DocStore::new();
        s.add(Document::new(
            "n1",
            "enoxaparin 40 mg daily for dvt prophylaxis",
            fields(&[
                ("patient_id", Value::from("pt-1")),
                ("note_type", Value::from("discharge")),
                ("age_hours", Value::from(12)),
            ]),
        ));
        s.add(Document::new(
            "n2",
            "ct angiogram negative for pulmonary embolism",
            fields(&[
                ("patient_id", Value::from("pt-1")),
                ("note_type", Value::from("radiology")),
                ("age_hours", Value::from(80)),
            ]),
        ));
        s.add(Document::new(
            "n3",
            "administered enoxaparin 60 mg at 2100 per order",
            fields(&[
                ("patient_id", Value::from("pt-2")),
                ("note_type", Value::from("nursing")),
                ("age_hours", Value::from(30)),
            ]),
        ));
        s
    }

    fn req(query: RetrievalQuery, limit: usize) -> RetrievalRequest {
        RetrievalRequest {
            source: "notes".into(),
            query,
            limit,
        }
    }

    #[test]
    fn retrieve_all_in_insertion_order() {
        let s = store();
        let docs = s.retrieve(&req(RetrievalQuery::All, 10)).unwrap();
        assert_eq!(
            docs.iter().map(|d| d.id.as_str()).collect::<Vec<_>>(),
            vec!["n1", "n2", "n3"]
        );
    }

    #[test]
    fn structured_patient_and_time_window() {
        let s = store();
        // The paper's order-lookup: this patient, last 72 hours.
        let q = RetrievalQuery::Structured(fields(&[
            ("patient_id", Value::from("pt-1")),
            ("max_age_hours", Value::from(72)),
        ]));
        let docs = s.retrieve(&req(q, 10)).unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].id, "n1");
    }

    #[test]
    fn structured_note_type_dispatch() {
        let s = store();
        let q = RetrievalQuery::Structured(fields(&[("note_type", Value::from("nursing"))]));
        let docs = s.retrieve(&req(q, 10)).unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].id, "n3");
    }

    #[test]
    fn bad_time_window_type_is_an_error() {
        let s = store();
        let q = RetrievalQuery::Structured(fields(&[("max_age_hours", Value::from("soon"))]));
        assert!(matches!(
            s.retrieve(&req(q, 10)),
            Err(SpearError::Retrieval(_))
        ));
    }

    #[test]
    fn prompt_query_ranks_with_bm25() {
        let s = store();
        let q = RetrievalQuery::Prompt(
            "Retrieve all medication orders mentioning enoxaparin dosing".into(),
        );
        let docs = s.retrieve(&req(q, 10)).unwrap();
        assert_eq!(docs.len(), 2);
        assert!(docs.iter().all(|d| d.text.contains("enoxaparin")));
        assert!(docs[0].score >= docs[1].score);
    }

    #[test]
    fn limits_apply_to_every_mode() {
        let s = store();
        assert_eq!(s.retrieve(&req(RetrievalQuery::All, 2)).unwrap().len(), 2);
        let q = RetrievalQuery::Prompt("enoxaparin".into());
        assert_eq!(s.retrieve(&req(q, 1)).unwrap().len(), 1);
    }

    #[test]
    fn clinical_cohort_loads_with_fields() {
        let cohort = spear_data::clinical::generate(&spear_data::ClinicalConfig {
            patients: 5,
            ..spear_data::ClinicalConfig::default()
        });
        let s = doc_store_from_notes(&cohort.notes);
        assert_eq!(s.len(), 15);
        let pid = cohort.truth[0].patient_id.clone();
        let q = RetrievalQuery::Structured(fields(&[("patient_id", Value::from(pid))]));
        assert_eq!(s.retrieve(&req(q, 10)).unwrap().len(), 3);
    }
}
