//! Fleet-level payoff of prefix-aware placement: families stay warm on
//! their home nodes, hot families replicate under skew, and the
//! hash-random baseline pays for its scatter in fleet hit rate.

use spear_cluster::prelude::*;
use spear_serve::{generate, AdmissionConfig, LoadGenConfig, ServeConfig};

fn workload(zipf: f64) -> spear_serve::GeneratedWorkload {
    generate(&LoadGenConfig {
        seed: 140,
        requests: 256,
        families: 10,
        mean_interarrival_us: 300,
        family_zipf: zipf,
        ..LoadGenConfig::default()
    })
}

fn cluster(nodes: usize, policy: RouterPolicy) -> Cluster {
    Cluster::new(ClusterConfig {
        initial_nodes: nodes,
        node: ServeConfig {
            lanes: 1,
            admission: AdmissionConfig {
                max_depth: 100_000,
                bucket_capacity: 1 << 40,
                refill_per_us: 1_000_000.0,
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        },
        router: RouterConfig {
            policy,
            ..RouterConfig::default()
        },
        ..ClusterConfig::default()
    })
}

#[test]
fn prefix_aware_beats_hash_random_on_fleet_hit_rate() {
    for nodes in [2, 4, 8] {
        let prefix = cluster(nodes, RouterPolicy::PrefixAware)
            .run(workload(1.1))
            .report;
        let hash = cluster(nodes, RouterPolicy::HashRandom)
            .run(workload(1.1))
            .report;
        let (p, h) = (
            prefix.fleet_hit_rate().expect("tokens flowed"),
            hash.fleet_hit_rate().expect("tokens flowed"),
        );
        assert!(
            p > h,
            "at {nodes} nodes prefix-aware ({p:.3}) must beat hash-random ({h:.3})"
        );
    }
}

#[test]
fn replication_engages_under_zipf_head_load() {
    let report = cluster(8, RouterPolicy::PrefixAware)
        .run(workload(1.2))
        .report;
    assert!(
        report.router.replicated_families >= 1,
        "the Zipf head crosses the share threshold: {:?}",
        report.router
    );
    assert!(report.router.p2c_balanced > 0, "replicas share the load");
}

#[test]
fn uniform_load_below_the_share_threshold_does_not_replicate() {
    // 10 uniform families hold ~10% of arrivals each; against a 25%
    // per-replica target even early-arrival noise stays clear of the
    // threshold, so no family expands.
    let cluster = Cluster::new(ClusterConfig {
        initial_nodes: 8,
        node: ServeConfig {
            lanes: 1,
            admission: AdmissionConfig {
                max_depth: 100_000,
                bucket_capacity: 1 << 40,
                refill_per_us: 1_000_000.0,
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        },
        router: RouterConfig {
            replicate_share: 0.25,
            ..RouterConfig::default()
        },
        ..ClusterConfig::default()
    });
    let report = cluster.run(workload(0.0)).report;
    assert_eq!(report.router.replicated_families, 0);
    assert_eq!(report.router.replica_expansions, 0);
}

#[test]
fn single_node_cluster_matches_standalone_serving_shape() {
    let run = cluster(1, RouterPolicy::PrefixAware).run(workload(0.0));
    assert_eq!(run.report.nodes.len(), 1);
    assert_eq!(run.report.imbalance, 1.0);
    assert_eq!(run.report.completed, 256);
    let node = &run.report.nodes[0];
    assert_eq!(node.assigned, 256);
    assert_eq!(
        node.report.trace_fingerprint, node.report.trace_fingerprint,
        "sanity"
    );
    assert!(run.report.fleet_hit_rate().unwrap() > 0.5);
}

#[test]
fn replication_spreads_the_hot_family_across_nodes() {
    // Extreme skew: the head family dominates arrivals.
    let w = generate(&LoadGenConfig {
        seed: 9,
        requests: 384,
        families: 6,
        mean_interarrival_us: 200,
        family_zipf: 2.0,
        ..LoadGenConfig::default()
    });
    let run = cluster(8, RouterPolicy::PrefixAware).run(w);
    assert!(run.report.router.replica_expansions >= 1);
    // The busiest node carries less than the head family's share would
    // imply without replication (~2/3 of all arrivals at s=2.0).
    let max_assigned = run.report.nodes.iter().map(|n| n.assigned).max().unwrap();
    assert!(
        max_assigned < 384 * 2 / 3,
        "replication must split the head family, busiest node got {max_assigned}/384"
    );
}
