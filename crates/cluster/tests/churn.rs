//! Membership-churn semantics end to end: joins admit, drains stop
//! admission without dropping in-flight work, leaves imply drains, and
//! every drain hands its families off with an explicit manifest.

use spear_cluster::prelude::*;
use spear_serve::{generate, AdmissionConfig, LoadGenConfig, ServeConfig};

fn workload(requests: usize) -> spear_serve::GeneratedWorkload {
    generate(&LoadGenConfig {
        seed: 77,
        requests,
        families: 8,
        mean_interarrival_us: 500,
        family_zipf: 0.9,
        ..LoadGenConfig::default()
    })
}

fn config(initial_nodes: usize, churn: Vec<ChurnEvent>) -> ClusterConfig {
    ClusterConfig {
        initial_nodes,
        node: ServeConfig {
            lanes: 2,
            admission: AdmissionConfig {
                max_depth: 100_000,
                bucket_capacity: 1 << 40,
                refill_per_us: 1_000_000.0,
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        },
        churn,
        ..ClusterConfig::default()
    }
}

/// Arrival timestamp of the request with the given index.
fn arrival_of(requests: usize, index: usize) -> u64 {
    let w = workload(requests);
    w.requests[index].arrival_us
}

#[test]
fn drained_node_finishes_assigned_work_but_admits_nothing_new() {
    let requests = 128;
    let mid = arrival_of(requests, requests / 2);
    let run = Cluster::new(config(2, vec![ChurnEvent::drain(mid, 0)])).run(workload(requests));

    let node0 = &run.report.nodes[0];
    assert!(node0.drained);
    assert!(!node0.left);
    assert!(node0.assigned > 0, "node 0 served the first half");
    assert_eq!(
        node0.completed, node0.assigned,
        "drain never drops in-flight or queued work"
    );
    // Everything arriving after the drain went to node 1.
    let late_on_0 = run
        .report
        .nodes
        .iter()
        .find(|n| n.node_id == 0)
        .map(|n| n.assigned)
        .unwrap();
    let rerun_without_churn = Cluster::new(config(2, Vec::new())).run(workload(requests));
    let full_on_0 = rerun_without_churn.report.nodes[0].assigned;
    assert!(
        late_on_0 < full_on_0,
        "drain diverted traffic: {late_on_0} assigned with churn vs {full_on_0} without"
    );
    assert!(run.report.router.handoffs > 0, "families were handed off");
    assert!(!run.handoffs.is_empty());
    for handoff in &run.handoffs {
        assert_eq!(handoff.from, 0);
        // Re-placed families can only land on node 1; families that
        // already had a replica there are absorbed (`to: None`).
        assert!(matches!(handoff.to, Some(1) | None));
    }
    assert_eq!(run.report.completed, requests as u64);
}

#[test]
fn joined_node_serves_new_families_only() {
    let requests = 128;
    let early = arrival_of(requests, 8);
    let run = Cluster::new(config(1, vec![ChurnEvent::join(early, 1)])).run(workload(requests));

    let joined = run
        .report
        .nodes
        .iter()
        .find(|n| n.node_id == 1)
        .expect("joined node reports");
    assert_eq!(joined.joined_us, early);
    // All 8 families arrive within the first few requests with seed 77,
    // so stickiness keeps most (possibly all) traffic on node 0; what
    // matters is that the join changed nothing retroactively.
    assert_eq!(run.report.completed, requests as u64);
    assert_eq!(run.report.router.joins, 1);
    // Cluster linkage is stamped on both node reports.
    for node in &run.report.nodes {
        let linkage = node.report.cluster.as_ref().expect("stamped");
        assert_eq!(linkage.node_id, node.node_id);
        assert_eq!(linkage.joined_us, node.joined_us);
        assert_eq!(linkage.drained, node.drained);
    }
}

#[test]
fn leave_without_prior_drain_implies_one() {
    let requests = 96;
    let mid = arrival_of(requests, requests / 2);
    let run = Cluster::new(config(3, vec![ChurnEvent::leave(mid, 2)])).run(workload(requests));
    let gone = run
        .report
        .nodes
        .iter()
        .find(|n| n.node_id == 2)
        .expect("left node still reports its slice");
    assert!(gone.drained && gone.left);
    assert_eq!(gone.completed, gone.assigned, "leave is graceful");
    assert_eq!(run.report.router.drains, 1);
    assert_eq!(run.report.router.leaves, 1);
    assert_eq!(run.report.completed, requests as u64);
}

#[test]
fn churn_after_the_last_arrival_still_applies() {
    let run = Cluster::new(config(2, vec![ChurnEvent::drain(u64::MAX, 1)])).run(workload(64));
    assert_eq!(run.report.router.drains, 1);
    let node1 = run.report.nodes.iter().find(|n| n.node_id == 1).unwrap();
    assert!(node1.drained, "post-stream drain is recorded");
}

#[test]
#[should_panic(expected = "unplaced")]
fn draining_the_whole_fleet_mid_stream_panics() {
    let requests = 64;
    let early = arrival_of(requests, 4);
    let _ = Cluster::new(config(1, vec![ChurnEvent::drain(early, 0)])).run(workload(requests));
}
