//! The fabric's determinism contract: for a fixed cluster configuration,
//! [`ClusterReport::trace_fingerprint`] — and the placement behind it —
//! is byte-identical across host worker-lane counts, with and without
//! membership churn. This is the repo-wide invariant (virtual time, not
//! host time, orders everything) extended to the multi-node loop.

use spear_cluster::prelude::*;
use spear_serve::{generate, AdmissionConfig, LoadGenConfig, ServeConfig};

fn workload_config() -> LoadGenConfig {
    LoadGenConfig {
        seed: 1409,
        requests: 192,
        families: 10,
        mean_interarrival_us: 400,
        family_zipf: 1.1,
        ..LoadGenConfig::default()
    }
}

fn node_config(lanes: usize) -> ServeConfig {
    ServeConfig {
        lanes,
        admission: AdmissionConfig {
            max_depth: 100_000,
            bucket_capacity: 1 << 40,
            refill_per_us: 1_000_000.0,
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    }
}

fn run_at(lanes: usize, churn: Vec<ChurnEvent>) -> ClusterReport {
    let cluster = Cluster::new(ClusterConfig {
        initial_nodes: 4,
        node: node_config(lanes),
        churn,
        ..ClusterConfig::default()
    });
    cluster.run(generate(&workload_config())).report
}

fn churn_schedule() -> Vec<ChurnEvent> {
    // Horizon ≈ 192 × 400 µs; join two nodes early, drain one bootstrap
    // node mid-stream, lose another near the end.
    vec![
        ChurnEvent::join(15_000, 4),
        ChurnEvent::join(20_000, 5),
        ChurnEvent::drain(38_000, 0),
        ChurnEvent::leave(60_000, 1),
    ]
}

#[test]
fn fingerprint_is_invariant_across_host_lane_counts() {
    let baseline = run_at(1, Vec::new());
    for lanes in [4, 8] {
        let report = run_at(lanes, Vec::new());
        assert_eq!(
            report.trace_fingerprint, baseline.trace_fingerprint,
            "lanes={lanes} diverged from lanes=1"
        );
        // Placement itself is identical, not just the digest fold.
        for (a, b) in report.nodes.iter().zip(&baseline.nodes) {
            assert_eq!(a.node_id, b.node_id);
            assert_eq!(a.assigned, b.assigned, "node {} placement moved", a.node_id);
        }
        assert_eq!(report.router, baseline.router);
    }
}

#[test]
fn churn_replay_is_invariant_across_host_lane_counts() {
    let baseline = run_at(1, churn_schedule());
    assert!(baseline.router.joins == 2 && baseline.router.drains >= 2);
    assert!(baseline.router.handoffs > 0, "drains moved families");
    for lanes in [4, 8] {
        let report = run_at(lanes, churn_schedule());
        assert_eq!(
            report.trace_fingerprint, baseline.trace_fingerprint,
            "churn replay at lanes={lanes} diverged"
        );
        assert_eq!(report.router, baseline.router, "router counters diverged");
    }
}

#[test]
fn parallel_node_serving_matches_the_sequential_reference() {
    // Phase 2 runs one host thread per node; the sequential reference
    // serves the same slices on the calling thread. Everything observable
    // — fleet fingerprint, per-node reports, per-request outcomes — must
    // be identical, with and without churn.
    for churn in [Vec::new(), churn_schedule()] {
        let cluster = Cluster::new(ClusterConfig {
            initial_nodes: 4,
            node: node_config(2),
            churn,
            ..ClusterConfig::default()
        });
        let parallel = cluster.run(generate(&workload_config()));
        let sequential = cluster.run_sequential(generate(&workload_config()));
        assert_eq!(
            parallel.report, sequential.report,
            "parallel phase 2 must be invisible in the report"
        );
        assert_eq!(parallel.outcomes.len(), sequential.outcomes.len());
        for ((pn, po), (sn, so)) in parallel.outcomes.iter().zip(&sequential.outcomes) {
            assert_eq!(pn, sn, "request {} placed differently", po.id);
            assert_eq!(po, so, "request {} served differently", po.id);
        }
    }
}

#[test]
fn repeated_runs_are_bitwise_stable() {
    let a = run_at(4, churn_schedule());
    let b = run_at(4, churn_schedule());
    assert_eq!(a, b, "identical config must reproduce the identical report");
}

#[test]
fn every_request_gets_exactly_one_outcome() {
    let cluster = Cluster::new(ClusterConfig {
        initial_nodes: 4,
        node: node_config(2),
        churn: churn_schedule(),
        ..ClusterConfig::default()
    });
    let run = cluster.run(generate(&workload_config()));
    assert_eq!(run.outcomes.len(), 192);
    for (i, (_, outcome)) in run.outcomes.iter().enumerate() {
        assert_eq!(outcome.id, i as u64, "outcomes sorted and complete");
    }
    assert_eq!(
        run.report.completed, 192,
        "generous admission completes all"
    );
}
