//! Per-node bookkeeping inside the fabric.
//!
//! A cluster node *is* a [`spear_serve::ServeNode`] plus its own engine
//! (striped prefix cache, block pool, interner) and its own compiled
//! program cache — the fabric shares nothing between nodes except the
//! router's placement map. This module holds the handle the event loop
//! tracks per node before the serving pass materializes the real engine.

use spear_serve::ServeRequest;

/// Membership state and assigned work for one node.
#[derive(Debug)]
pub struct NodeHandle {
    /// Node id (also the engine-seed offset, so two nodes never alias
    /// each other's correctness draws).
    pub node_id: u64,
    /// Virtual timestamp the node joined the fabric (0 for bootstrap
    /// nodes).
    pub joined_us: u64,
    /// The node stopped admitting (drained or left).
    pub drained: bool,
    /// The node left the fabric entirely.
    pub left: bool,
    /// Requests routed here, in arrival order (the order
    /// [`spear_serve::ServeNode::run`] requires).
    pub assigned: Vec<ServeRequest>,
}

impl NodeHandle {
    /// A fresh, admitting node joined at `joined_us`.
    #[must_use]
    pub fn new(node_id: u64, joined_us: u64) -> Self {
        Self {
            node_id,
            joined_us,
            drained: false,
            left: false,
            assigned: Vec::new(),
        }
    }
}
