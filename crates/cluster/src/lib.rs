//! # spear-cluster — sharded multi-node serving fabric
//!
//! Scales the single-node serving layer ([`spear_serve`]) out to a
//! simulated fleet: N nodes, each owning its *own* striped prefix cache,
//! KV block pool, and compiled-program cache, behind a front-end
//! [`Router`] that places requests by **prompt identity** rather than by
//! hash. Prompt families — requests sharing a structured prefix, the
//! identity SPEAR makes first-class — stay on one node (or a small
//! replica set), so the fleet warms each shared prefix once instead of
//! once per node. This is the paper's §5–§6 payoff pushed one level up:
//! prefix reuse as a *placement* signal, not just a cache key.
//!
//! The pieces:
//!
//! - [`Router`] — rendezvous-consistent family placement over
//!   [`spear_llm::affinity_chain_key`] (the same chain-key fold the token
//!   interner uses), hot-prefix replication for Zipf-head families, and
//!   deterministic power-of-two-choices load balancing;
//! - [`ChurnEvent`] — virtual-time join/drain/leave schedule; drains
//!   produce an explicit family→node [`Handoff`] manifest;
//! - [`Cluster`] — the discrete-event loop merging churn with arrivals,
//!   running each node's slice on its own engine, and rolling up a
//!   [`ClusterReport`] (fleet hit rate, load imbalance, handoff
//!   counters, trace fingerprint).
//!
//! Determinism: placement is a pure function of the arrival-ordered
//! stream, and each node's virtual-time loop is host-thread-invariant,
//! so [`ClusterReport::trace_fingerprint`] is byte-identical across host
//! worker-lane counts — including replays of a churn schedule.
//!
//! ## Quick start
//!
//! ```
//! use spear_cluster::prelude::*;
//! use spear_serve::{generate, LoadGenConfig};
//!
//! // A Zipf-skewed workload: family popularity follows 1/(rank+1)^1.1.
//! let workload = generate(&LoadGenConfig {
//!     seed: 7,
//!     requests: 96,
//!     families: 8,
//!     family_zipf: 1.1,
//!     ..LoadGenConfig::default()
//! });
//!
//! let cluster = Cluster::new(ClusterConfig {
//!     initial_nodes: 4,
//!     ..ClusterConfig::default()
//! });
//! let run = cluster.run(workload);
//!
//! assert_eq!(run.report.requests, 96);
//! assert_eq!(run.report.nodes.len(), 4);
//! // Families are sticky, so the fleet still sees real prefix reuse.
//! assert!(run.report.fleet_hit_rate().unwrap() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::redundant_clone, clippy::inefficient_to_string)]

pub mod churn;
pub mod cluster;
pub mod node;
pub mod report;
pub mod router;

pub use churn::{ChurnAction, ChurnEvent};
pub use cluster::{static_token_upper_bound, Cluster, ClusterConfig, ClusterRun};
pub use node::NodeHandle;
pub use report::{fleet_fingerprint, ClusterReport, NodeReport};
pub use router::{Handoff, Router, RouterConfig, RouterPolicy, RouterReport};

/// Glob-import of the cluster fabric's main types.
pub mod prelude {
    pub use crate::churn::{ChurnAction, ChurnEvent};
    pub use crate::cluster::{Cluster, ClusterConfig, ClusterRun};
    pub use crate::report::{ClusterReport, NodeReport};
    pub use crate::router::{Handoff, Router, RouterConfig, RouterPolicy, RouterReport};
}
