//! Fleet-level metrics: per-node [`spear_serve::ServeReport`]s rolled up
//! into a [`ClusterReport`] with fleet-wide hit rate, load imbalance, and
//! a trace fingerprint that is byte-identical across host thread counts.

use serde::{Deserialize, Serialize};
use spear_serve::{ServeOutcome, ServeReport, ServeStatus};

use crate::router::RouterReport;

/// One node's slice of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// Node id.
    pub node_id: u64,
    /// Virtual timestamp the node joined (0 for bootstrap nodes).
    pub joined_us: u64,
    /// The node was drained before the run ended.
    pub drained: bool,
    /// The node left the fabric.
    pub left: bool,
    /// Requests routed to this node.
    pub assigned: u64,
    /// Requests completed by this node.
    pub completed: u64,
    /// Exact virtual execution time summed over this node's outcomes.
    pub service_us: u64,
    /// The node's local makespan.
    pub makespan_us: u64,
    /// The node's full serving report (its `cluster` linkage is stamped
    /// by the fabric).
    pub report: ServeReport,
}

impl NodeReport {
    /// Local prefix-cache hit rate over both classes, if any prompt
    /// tokens were processed.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let prompt = self.report.interactive.prompt_tokens + self.report.batch.prompt_tokens;
        let cached = self.report.interactive.cached_tokens + self.report.batch.cached_tokens;
        (prompt > 0).then(|| cached as f64 / prompt as f64)
    }
}

/// Aggregate view of a multi-node serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Per-node slices, sorted by node id.
    pub nodes: Vec<NodeReport>,
    /// Front-end placement counters.
    pub router: RouterReport,
    /// Requests submitted fleet-wide.
    pub requests: u64,
    /// Requests completed fleet-wide.
    pub completed: u64,
    /// Prompt tokens processed fleet-wide.
    pub fleet_prompt_tokens: u64,
    /// Prompt tokens served from a node-local prefix cache.
    pub fleet_cached_tokens: u64,
    /// Fleet makespan: the slowest node's local makespan (nodes run the
    /// same virtual clock, so this is when the last lane goes idle).
    pub makespan_us: u64,
    /// Load imbalance: max over mean of per-node `service_us`, taken
    /// over nodes that served at least one request. `1.0` is perfectly
    /// balanced (or a single node).
    pub imbalance: f64,
    /// Order-independent digest of `(request id, node, status, trace)`
    /// tuples — byte-identical across host thread counts and lane
    /// configurations for a fixed cluster configuration.
    pub trace_fingerprint: u64,
}

impl ClusterReport {
    /// Fleet-wide prefix-cache hit rate, if any prompt tokens were
    /// processed.
    #[must_use]
    pub fn fleet_hit_rate(&self) -> Option<f64> {
        (self.fleet_prompt_tokens > 0)
            .then(|| self.fleet_cached_tokens as f64 / self.fleet_prompt_tokens as f64)
    }

    /// Completed requests per virtual second.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_us == 0 {
            0.0
        } else {
            self.completed as f64 / (self.makespan_us as f64 / 1e6)
        }
    }
}

/// FNV-1a fold over id-sorted `(node, outcome)` pairs. Mixes the node id
/// so a placement change — not just an execution change — perturbs the
/// fingerprint.
#[must_use]
pub fn fleet_fingerprint(outcomes: &[(u64, ServeOutcome)]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (node, o) in outcomes {
        mix(o.id);
        mix(*node);
        let tag = match &o.status {
            ServeStatus::Completed => 1,
            ServeStatus::Rejected { .. } => 2,
            ServeStatus::DeadlineExceeded { .. } => 3,
            ServeStatus::Cancelled { .. } => 4,
            ServeStatus::Failed { .. } => 5,
        };
        mix(tag);
        mix(o.trace_digest.unwrap_or(0));
    }
    hash
}
