//! The fabric itself: a deterministic multi-node discrete-event loop.
//!
//! [`Cluster::run`] replays a generated workload against N simulated
//! nodes in three phases, all driven by virtual time:
//!
//! 1. **placement** — churn events and request arrivals are merged in
//!    `arrival_us` order; each arrival is routed by the front-end
//!    [`Router`] using the plan's affinity identity, with churn applied
//!    the instant it is scheduled;
//! 2. **service** — each node (own engine: striped prefix cache, block
//!    pool, interner; own program cache) runs its assigned slice through
//!    [`spear_serve::ServeNode`], whose virtual-time loop is already
//!    invariant to host thread count;
//! 3. **roll-up** — per-node reports are stamped with their
//!    [`spear_serve::ClusterLinkage`] and aggregated into a
//!    [`ClusterReport`] with a fleet trace fingerprint.
//!
//! Placement happens entirely before service and depends only on the
//! arrival-ordered stream, so the fabric inherits the repo-wide
//! determinism invariant: identical fingerprints across host worker-lane
//! counts, including under churn replay.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

use spear_core::llm::LlmClient;
use spear_core::plan::LoweredPlan;
use spear_core::runtime::Runtime;
use spear_llm::{EngineConfig, ModelProfile, SimLlm};
use spear_serve::{ClusterLinkage, GeneratedWorkload, ServeConfig, ServeNode, ServeOutcome};

use crate::churn::{ChurnAction, ChurnEvent};
use crate::node::NodeHandle;
use crate::report::{fleet_fingerprint, ClusterReport, NodeReport};
use crate::router::{Handoff, Router, RouterConfig};

/// Configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Bootstrap nodes (ids `0..initial_nodes`), all admitting at t=0.
    pub initial_nodes: usize,
    /// Per-node scheduler configuration (lanes, quantum, admission, …).
    pub node: ServeConfig,
    /// Front-end routing configuration.
    pub router: RouterConfig,
    /// Membership churn schedule (applied in `at_us` order).
    pub churn: Vec<ChurnEvent>,
    /// Model profile every node serves.
    pub profile: ModelProfile,
    /// Engine template; each node's engine gets `seed + node_id` so node
    /// identity never aliases correctness draws.
    pub engine: EngineConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            initial_nodes: 4,
            node: ServeConfig::default(),
            router: RouterConfig::default(),
            churn: Vec::new(),
            profile: ModelProfile::qwen25_7b_instruct(),
            engine: EngineConfig::default(),
        }
    }
}

/// Result of a cluster run.
#[derive(Debug)]
pub struct ClusterRun {
    /// `(node id, outcome)` per request, sorted by request id.
    pub outcomes: Vec<(u64, ServeOutcome)>,
    /// Cache-handoff manifests produced by drains, in schedule order.
    pub handoffs: Vec<Handoff>,
    /// Aggregate fleet report.
    pub report: ClusterReport,
}

/// A simulated multi-node serving fleet.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
}

impl Cluster {
    /// A cluster from `config`.
    ///
    /// # Panics
    ///
    /// Panics when `initial_nodes` is zero.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        assert!(
            config.initial_nodes > 0,
            "a cluster needs at least one node"
        );
        Self { config }
    }

    /// Replay `workload` through the fabric.
    ///
    /// Node slices are served on one host thread per node (scoped): each
    /// node owns its engine, runtime, and scheduler, shares nothing with
    /// its peers, and keeps time on its own virtual clock — so host
    /// interleaving cannot reach any observable output, and the fleet
    /// fingerprint equals [`Cluster::run_sequential`]'s (pinned by test).
    ///
    /// # Panics
    ///
    /// Panics when the churn schedule drains every node while requests
    /// still arrive, or when requests are not sorted by arrival time
    /// (a [`GeneratedWorkload`] always is).
    #[must_use]
    pub fn run(&self, workload: GeneratedWorkload) -> ClusterRun {
        self.run_inner(workload, true)
    }

    /// Reference implementation of [`Cluster::run`] that serves node
    /// slices one at a time on the calling thread. Same outputs, none of
    /// the host parallelism — tests pin `run`'s fingerprints against it.
    #[must_use]
    pub fn run_sequential(&self, workload: GeneratedWorkload) -> ClusterRun {
        self.run_inner(workload, false)
    }

    fn run_inner(&self, workload: GeneratedWorkload, parallel: bool) -> ClusterRun {
        let mut nodes: BTreeMap<u64, NodeHandle> = (0..self.config.initial_nodes as u64)
            .map(|id| (id, NodeHandle::new(id, 0)))
            .collect();
        let mut router = Router::new(self.config.router.clone(), nodes.keys().copied());

        // Phase 1: merge churn with arrivals in virtual-time order and
        // place every request. Stable sort keeps same-instant churn in
        // schedule order.
        let mut schedule = self.config.churn.clone();
        schedule.sort_by_key(|e| e.at_us);
        let mut churn = schedule.into_iter().peekable();
        let mut handoffs = Vec::new();

        // Static token upper bounds, memoized per plan fingerprint: the
        // load signal for requests that arrive without a caller-provided
        // estimate.
        let mut bound_memo: HashMap<u64, u64> = HashMap::new();
        for request in workload.requests {
            while churn
                .peek()
                .is_some_and(|event| event.at_us <= request.arrival_us)
            {
                let event = churn.next().expect("peeked");
                Self::apply_churn(event, &mut router, &mut nodes, &mut handoffs);
            }
            // Derived-facts routing: when the caller provides no token
            // estimate, the bytecode abstract interpreter's static upper
            // bound stands in (0 when the plan is unbounded or invalid —
            // the router then applies its own floor).
            let est_tokens = if request.est_tokens == 0 {
                *bound_memo
                    .entry(request.plan.fingerprint())
                    .or_insert_with(|| static_token_upper_bound(&request.plan))
            } else {
                request.est_tokens
            };
            let target = router.route(request.plan.affinity_seed(), request.id, est_tokens);
            nodes
                .get_mut(&target)
                .expect("router only targets known nodes")
                .assigned
                .push(request);
        }
        for event in churn {
            Self::apply_churn(event, &mut router, &mut nodes, &mut handoffs);
        }

        // Phase 2: serve each node's slice on its own engine — one scoped
        // host thread per node when `parallel`. Nodes share nothing (own
        // engine, runtime, scheduler) and keep virtual time, so host
        // interleaving cannot affect any output; joining in spawn (= id)
        // order restores the deterministic collection order.
        let entries: Vec<(u64, NodeHandle)> = nodes.into_iter().collect();
        let views = &workload.views;
        let node_runs: Vec<(NodeReport, Vec<(u64, ServeOutcome)>)> = if parallel {
            std::thread::scope(|scope| {
                let joins: Vec<_> = entries
                    .into_iter()
                    .map(|(id, handle)| scope.spawn(move || self.serve_slice(id, handle, views)))
                    .collect();
                joins
                    .into_iter()
                    .map(|j| j.join().expect("node serving threads do not panic"))
                    .collect()
            })
        } else {
            entries
                .into_iter()
                .map(|(id, handle)| self.serve_slice(id, handle, views))
                .collect()
        };

        let mut outcomes: Vec<(u64, ServeOutcome)> = Vec::new();
        let mut node_reports = Vec::with_capacity(node_runs.len());
        for (node_report, node_outcomes) in node_runs {
            node_reports.push(node_report);
            outcomes.extend(node_outcomes);
        }
        outcomes.sort_by_key(|(_, o)| o.id);

        // Phase 3: roll up.
        let report = Self::roll_up(node_reports, router, &outcomes);
        ClusterRun {
            outcomes,
            handoffs,
            report,
        }
    }

    /// Serve one node's assigned slice on a fresh engine + runtime +
    /// scheduler (phase 2's unit of work; host-thread-safe because the
    /// node shares nothing and keeps virtual time).
    fn serve_slice(
        &self,
        id: u64,
        handle: NodeHandle,
        views: &spear_core::view::ViewCatalog,
    ) -> (NodeReport, Vec<(u64, ServeOutcome)>) {
        let engine = Arc::new(SimLlm::with_config(
            self.config.profile.clone(),
            EngineConfig {
                seed: self.config.engine.seed.wrapping_add(id),
                ..self.config.engine.clone()
            },
        ));
        let runtime = Runtime::builder()
            .llm(Arc::clone(&engine) as Arc<dyn LlmClient>)
            .views(views.clone())
            .build();
        let serve_node = ServeNode::new(self.config.node.clone());
        let assigned = handle.assigned.len() as u64;
        let run = serve_node.run(&runtime, Some(&engine), handle.assigned);

        let mut report = run.report;
        report.cluster = Some(ClusterLinkage {
            node_id: id,
            joined_us: handle.joined_us,
            drained: handle.drained,
        });
        let completed = report.interactive.completed + report.batch.completed;
        let service_us: u64 = run.outcomes.iter().map(|o| o.service_us).sum();
        let node_report = NodeReport {
            node_id: id,
            joined_us: handle.joined_us,
            drained: handle.drained,
            left: handle.left,
            assigned,
            completed,
            service_us,
            makespan_us: report.makespan_us,
            report,
        };
        let outcomes = run.outcomes.into_iter().map(|o| (id, o)).collect();
        (node_report, outcomes)
    }

    fn apply_churn(
        event: ChurnEvent,
        router: &mut Router,
        nodes: &mut BTreeMap<u64, NodeHandle>,
        handoffs: &mut Vec<Handoff>,
    ) {
        match event.action {
            ChurnAction::Join => {
                let handle = nodes
                    .entry(event.node)
                    .or_insert_with(|| NodeHandle::new(event.node, event.at_us));
                handle.drained = false;
                router.join(event.node);
            }
            ChurnAction::Drain => {
                if let Some(handle) = nodes.get_mut(&event.node) {
                    handle.drained = true;
                }
                handoffs.extend(router.drain(event.node));
            }
            ChurnAction::Leave => {
                if let Some(handle) = nodes.get_mut(&event.node) {
                    handle.drained = true;
                    handle.left = true;
                }
                handoffs.extend(router.leave(event.node));
            }
        }
    }

    fn roll_up(
        nodes: Vec<NodeReport>,
        router: Router,
        outcomes: &[(u64, ServeOutcome)],
    ) -> ClusterReport {
        let requests = outcomes.len() as u64;
        let completed = nodes.iter().map(|n| n.completed).sum();
        let fleet_prompt_tokens = nodes
            .iter()
            .map(|n| n.report.interactive.prompt_tokens + n.report.batch.prompt_tokens)
            .sum();
        let fleet_cached_tokens = nodes
            .iter()
            .map(|n| n.report.interactive.cached_tokens + n.report.batch.cached_tokens)
            .sum();
        let makespan_us = nodes.iter().map(|n| n.makespan_us).max().unwrap_or(0);
        let serving: Vec<u64> = nodes
            .iter()
            .filter(|n| n.assigned > 0)
            .map(|n| n.service_us)
            .collect();
        let imbalance = if serving.len() <= 1 {
            1.0
        } else {
            let max = *serving.iter().max().expect("non-empty") as f64;
            let mean = serving.iter().sum::<u64>() as f64 / serving.len() as f64;
            if mean == 0.0 {
                1.0
            } else {
                max / mean
            }
        };
        ClusterReport {
            router: router.report(),
            nodes,
            requests,
            completed,
            fleet_prompt_tokens,
            fleet_cached_tokens,
            makespan_us,
            imbalance,
            trace_fingerprint: fleet_fingerprint(outcomes),
        }
    }
}

/// The statically derived worst-case completion-token count of `plan`:
/// compile it to bytecode and take the abstract interpreter's token
/// interval upper bound. Returns `0` — "no information", router applies
/// its own floor — when the plan fails structural verification or when
/// the bound is unbounded (cyclic bytecode).
#[must_use]
pub fn static_token_upper_bound(plan: &LoweredPlan) -> u64 {
    let Ok(program) = spear_core::vm::compile(plan) else {
        return 0;
    };
    let bounds =
        spear_core::analysis::analyze(&program, &spear_core::analysis::ResourceModel::default());
    if bounds.tokens.hi == u64::MAX {
        0
    } else {
        bounds.tokens.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_core::history::RefinementMode;
    use spear_core::pipeline::Pipeline;
    use spear_core::plan::{lower, LoweredOp};

    #[test]
    fn static_upper_bound_sums_gen_budgets() {
        let plan = lower(
            &Pipeline::builder("two-gens")
                .create_text("p", "base", RefinementMode::Manual)
                .gen("a", "p")
                .gen("b", "p")
                .build(),
        )
        .unwrap();
        // Two GENs at the default 256-token cap each.
        assert_eq!(static_token_upper_bound(&plan), 512);
    }

    #[test]
    fn invalid_plans_yield_no_information() {
        let plan = LoweredPlan {
            name: "broken".into(),
            source_size: 1,
            ops: vec![LoweredOp::Jump { target: usize::MAX }],
        };
        assert_eq!(static_token_upper_bound(&plan), 0);
    }
}
