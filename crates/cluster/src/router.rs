//! The cluster front-end: placement of requests onto serving nodes.
//!
//! Placement is **prefix-aware**: requests whose plans share an
//! [`spear_core::plan::LoweredPlan::affinity_key`] (a prompt *family*)
//! land on the same node, so the family's shared instruction prefix is
//! warmed exactly once per replica fleet-wide. The family identity used
//! for placement is [`spear_llm::affinity_chain_key`] — the same seeded
//! chain-key fold the engine's [`spear_llm::TokenInterner`] uses for
//! block identity, so the routing tier and the cache tier agree on what
//! "the same prefix" means without sharing state.
//!
//! Three mechanisms compose:
//!
//! - **consistent placement** — candidate nodes are ranked by rendezvous
//!   (highest-random-weight) hashing over the family chain key; node
//!   join/leave moves only the families whose top-ranked candidate
//!   changes, never a wholesale reshuffle;
//! - **power-of-two-choices** — at first placement the two top-ranked
//!   candidates compete on accumulated load, and among a hot family's
//!   replicas each request deterministically samples two and takes the
//!   less loaded one;
//! - **hot-prefix replication** — when a family's share of total arrivals
//!   crosses [`RouterConfig::replicate_share`], it is expanded onto the
//!   next rendezvous-ranked nodes (bounded by
//!   [`RouterConfig::max_replicas`] and the admitting-node count), trading
//!   one extra prefix warm-up per replica for parallel service of a
//!   Zipf-head family that would otherwise serialize on one node.
//!
//! Everything is a pure function of the arrival-ordered request stream
//! and the churn schedule: no wall clock, no randomness beyond seeded
//! hashes, so cluster traces fingerprint identically across host thread
//! counts.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use spear_kv::shard::fnv1a;
use spear_llm::{affinity_chain_key, chain_key};

/// Placement policy of the front-end router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Family-sticky rendezvous placement with hot-prefix replication
    /// (the fabric's native policy).
    PrefixAware,
    /// Hash each request id uniformly over admitting nodes, ignoring
    /// prompt identity — the scatter baseline `bench_cluster` compares
    /// against.
    HashRandom,
}

/// Router tuning knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Placement policy.
    pub policy: RouterPolicy,
    /// Target arrival-rate share per replica: a family holding more than
    /// `replicas * replicate_share` of total arrivals is expanded onto
    /// another node. `1.0` disables replication.
    pub replicate_share: f64,
    /// Upper bound on replicas per family (further bounded by the number
    /// of admitting nodes).
    pub max_replicas: usize,
    /// Total arrivals observed before replication decisions engage;
    /// avoids replicating on the noise of the first few requests.
    pub min_arrivals_for_replication: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            policy: RouterPolicy::PrefixAware,
            replicate_share: 0.125,
            max_replicas: 4,
            min_arrivals_for_replication: 32,
        }
    }
}

/// Counters describing what the router did over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterReport {
    /// Requests placed by family affinity.
    pub prefix_routed: u64,
    /// Requests placed by id hash (the `HashRandom` policy, plus keyless
    /// plans under `PrefixAware`).
    pub hash_routed: u64,
    /// Families that gained a second replica at least once.
    pub replicated_families: u64,
    /// Total replica expansions (a family going 2 → 3 counts again).
    pub replica_expansions: u64,
    /// Requests steered to a non-primary replica by power-of-two-choices.
    pub p2c_balanced: u64,
    /// Families whose placement changed because a node drained or left.
    pub handoffs: u64,
    /// Churn joins applied (bootstrap nodes are not counted).
    pub joins: u64,
    /// Drains applied.
    pub drains: u64,
    /// Leaves applied.
    pub leaves: u64,
}

/// One entry of the family→node map delta produced by a drain: the
/// router hands this to the fabric so cache state (the family's warmed
/// prefix) can be re-established on the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Handoff {
    /// Family chain key (see [`spear_llm::affinity_chain_key`]).
    pub family: u64,
    /// Node the family is leaving.
    pub from: u64,
    /// New primary when the family had to be re-placed; `None` when its
    /// surviving replicas absorb the traffic.
    pub to: Option<u64>,
}

#[derive(Debug)]
struct FamilyState {
    /// Replica node ids, primary first, in expansion order.
    replicas: Vec<u64>,
    arrivals: u64,
}

/// The front-end placement engine. Owns no nodes — only the
/// family→replica map, per-node load estimates, and the admitting set.
#[derive(Debug)]
pub struct Router {
    config: RouterConfig,
    /// Nodes accepting new placements, ordered for deterministic
    /// iteration.
    admitting: BTreeSet<u64>,
    /// Family chain key → placement state.
    families: BTreeMap<u64, FamilyState>,
    /// Cumulative estimated tokens assigned per node (the p2c load
    /// signal). Never reset — drained nodes keep their history.
    loads: BTreeMap<u64, u64>,
    total_arrivals: u64,
    report: RouterReport,
}

impl Router {
    /// A router with an initial admitting set (not counted as joins).
    #[must_use]
    pub fn new(config: RouterConfig, initial_nodes: impl IntoIterator<Item = u64>) -> Self {
        let admitting: BTreeSet<u64> = initial_nodes.into_iter().collect();
        let loads = admitting.iter().map(|&n| (n, 0)).collect();
        Self {
            config,
            admitting,
            families: BTreeMap::new(),
            loads,
            total_arrivals: 0,
            report: RouterReport::default(),
        }
    }

    /// Counters so far.
    #[must_use]
    pub fn report(&self) -> RouterReport {
        self.report
    }

    /// Nodes currently accepting new placements.
    pub fn admitting(&self) -> impl Iterator<Item = u64> + '_ {
        self.admitting.iter().copied()
    }

    /// Cumulative estimated tokens routed to `node`.
    #[must_use]
    pub fn load_of(&self, node: u64) -> u64 {
        self.loads.get(&node).copied().unwrap_or(0)
    }

    /// Replica set of a family chain key (primary first), if placed.
    #[must_use]
    pub fn replicas_of(&self, family: u64) -> Option<&[u64]> {
        self.families.get(&family).map(|f| f.replicas.as_slice())
    }

    /// Place one request and return the target node id.
    ///
    /// `affinity_seed` is [`spear_core::plan::LoweredPlan::affinity_seed`]
    /// (`None` for opaque plans, which fall back to id-hash placement).
    ///
    /// # Panics
    ///
    /// Panics when no node is admitting — churn schedules must keep at
    /// least one node open while requests arrive.
    pub fn route(&mut self, affinity_seed: Option<u64>, request_id: u64, est_tokens: u64) -> u64 {
        assert!(
            !self.admitting.is_empty(),
            "router has no admitting nodes; churn schedule drained the cluster mid-stream"
        );
        self.total_arrivals += 1;
        let node = match (self.config.policy, affinity_seed) {
            (RouterPolicy::PrefixAware, Some(seed)) => {
                self.report.prefix_routed += 1;
                self.route_family(affinity_chain_key(seed), request_id)
            }
            _ => {
                self.report.hash_routed += 1;
                self.hash_pick(request_id)
            }
        };
        // est_tokens is a pre-execution estimate and may be 0; still count
        // the request so empty-estimate streams exercise p2c.
        *self.loads.entry(node).or_insert(0) += est_tokens.max(1);
        node
    }

    /// Uniform placement over admitting nodes by request-id hash.
    fn hash_pick(&self, request_id: u64) -> u64 {
        let hash = fnv1a(&request_id.to_le_bytes());
        let index = (hash % self.admitting.len() as u64) as usize;
        *self.admitting.iter().nth(index).expect("index in range")
    }

    /// Family-sticky placement with replication and p2c balancing.
    fn route_family(&mut self, family: u64, request_id: u64) -> u64 {
        if !self.families.contains_key(&family) {
            let ranked = self.rendezvous(family);
            // p2c at first placement: the two top-ranked rendezvous
            // candidates compete on accumulated load, so a run of new
            // families doesn't pile onto coincidentally-aligned winners.
            let primary = match ranked.as_slice() {
                [only] => *only,
                [a, b, ..] => self.less_loaded(*a, *b),
                [] => unreachable!("admitting set is non-empty"),
            };
            self.families.insert(
                family,
                FamilyState {
                    replicas: vec![primary],
                    arrivals: 0,
                },
            );
        }
        let arrivals = {
            let state = self.families.get_mut(&family).expect("just placed");
            state.arrivals += 1;
            state.arrivals
        };
        self.maybe_replicate(family, arrivals);

        let state = self.families.get(&family).expect("placed");
        match state.replicas.as_slice() {
            [only] => *only,
            replicas => {
                // Deterministic p2c among replicas: two hash draws seeded
                // by (family, request id) pick the candidates, load breaks
                // the tie. Every host replays the same choice.
                let len = replicas.len() as u64;
                let h1 = chain_key(family, request_id);
                let h2 = chain_key(h1, request_id);
                let a = replicas[(h1 % len) as usize];
                let b = replicas[(h2 % len) as usize];
                let chosen = self.less_loaded(a, b);
                if chosen != replicas[0] {
                    self.report.p2c_balanced += 1;
                }
                chosen
            }
        }
    }

    /// Expand a family's replica set when its arrival share outgrows the
    /// per-replica target.
    fn maybe_replicate(&mut self, family: u64, family_arrivals: u64) {
        if self.config.replicate_share >= 1.0
            || self.total_arrivals < self.config.min_arrivals_for_replication
        {
            return;
        }
        let share = family_arrivals as f64 / self.total_arrivals as f64;
        let cap = self.config.max_replicas.min(self.admitting.len()).max(1);
        let desired = ((share / self.config.replicate_share).ceil() as usize).clamp(1, cap);
        let current = self.families[&family].replicas.len();
        if desired <= current {
            return;
        }
        let ranked = self.rendezvous(family);
        let mut added = 0u64;
        let state = self.families.get_mut(&family).expect("placed");
        for candidate in ranked {
            if state.replicas.len() >= desired {
                break;
            }
            if !state.replicas.contains(&candidate) {
                state.replicas.push(candidate);
                added += 1;
            }
        }
        if current == 1 && added > 0 {
            self.report.replicated_families += 1;
        }
        self.report.replica_expansions += added;
    }

    /// Admitting nodes ranked by rendezvous score for `family`, best
    /// first. Ties (never in practice — fnv1a over distinct ids) break
    /// toward the smaller node id for determinism.
    fn rendezvous(&self, family: u64) -> Vec<u64> {
        let mut scored: Vec<(u64, u64)> = self
            .admitting
            .iter()
            .map(|&node| (chain_key(family, node), node))
            .collect();
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.into_iter().map(|(_, node)| node).collect()
    }

    fn less_loaded(&self, a: u64, b: u64) -> u64 {
        let (la, lb) = (self.load_of(a), self.load_of(b));
        if lb < la || (lb == la && b < a) {
            b
        } else {
            a
        }
    }

    /// Open `node` for placements. Idempotent; re-admitting a previously
    /// drained node is allowed (its cache may still be warm).
    pub fn join(&mut self, node: u64) {
        if self.admitting.insert(node) {
            self.loads.entry(node).or_insert(0);
            self.report.joins += 1;
        }
    }

    /// Stop placing onto `node` and re-place the families it served,
    /// returning the family→node map delta (the cache-handoff manifest).
    /// In-flight work is unaffected — the fabric lets the node finish its
    /// assigned requests.
    ///
    /// # Panics
    ///
    /// Panics when draining the last admitting node while families remain
    /// placed: the fabric would have nowhere to send their traffic.
    pub fn drain(&mut self, node: u64) -> Vec<Handoff> {
        if !self.admitting.remove(&node) {
            return Vec::new();
        }
        self.report.drains += 1;
        let mut delta = Vec::new();
        // Collect re-placements first: rendezvous ranking must not see
        // half-updated family state.
        let affected: Vec<u64> = self
            .families
            .iter()
            .filter(|(_, s)| s.replicas.contains(&node))
            .map(|(&family, _)| family)
            .collect();
        for family in affected {
            let survivors = {
                let state = self.families.get_mut(&family).expect("affected");
                state.replicas.retain(|&r| r != node);
                state.replicas.len()
            };
            let to = if survivors == 0 {
                assert!(
                    !self.admitting.is_empty(),
                    "drain of node {node} leaves family {family:#x} unplaced"
                );
                let ranked = self.rendezvous(family);
                let new_primary = match ranked.as_slice() {
                    [only] => *only,
                    [a, b, ..] => self.less_loaded(*a, *b),
                    [] => unreachable!("checked non-empty"),
                };
                self.families
                    .get_mut(&family)
                    .expect("affected")
                    .replicas
                    .push(new_primary);
                Some(new_primary)
            } else {
                None
            };
            self.report.handoffs += 1;
            delta.push(Handoff {
                family,
                from: node,
                to,
            });
        }
        delta
    }

    /// Remove `node` from the fabric entirely. Implies a drain when the
    /// node was still admitting; returns that drain's handoff delta.
    pub fn leave(&mut self, node: u64) -> Vec<Handoff> {
        let delta = self.drain(node);
        self.report.leaves += 1;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(nodes: u64) -> Router {
        Router::new(RouterConfig::default(), 0..nodes)
    }

    #[test]
    fn family_placement_is_sticky() {
        let mut r = router(8);
        let first = r.route(Some(7), 0, 100);
        for id in 1..20 {
            assert_eq!(r.route(Some(7), id, 100), first, "family stays put");
        }
        assert_eq!(r.report().prefix_routed, 20);
    }

    #[test]
    fn distinct_families_spread_across_nodes() {
        let mut r = router(8);
        let targets: BTreeSet<u64> = (0..64).map(|f| r.route(Some(f), f, 100)).collect();
        assert!(
            targets.len() >= 4,
            "64 families over 8 nodes hit at least half the fleet, got {targets:?}"
        );
    }

    #[test]
    fn keyless_requests_hash_over_admitting_nodes() {
        let mut r = router(4);
        let targets: BTreeSet<u64> = (0..32).map(|id| r.route(None, id, 10)).collect();
        assert!(targets.len() > 1, "id hash scatters keyless plans");
        assert_eq!(r.report().hash_routed, 32);
    }

    #[test]
    fn hash_random_policy_ignores_family_identity() {
        let mut r = Router::new(
            RouterConfig {
                policy: RouterPolicy::HashRandom,
                ..RouterConfig::default()
            },
            0..4,
        );
        let targets: BTreeSet<u64> = (0..32).map(|id| r.route(Some(7), id, 10)).collect();
        assert!(targets.len() > 1, "one family scatters under HashRandom");
        assert_eq!(r.report().prefix_routed, 0);
    }

    #[test]
    fn hot_family_replicates_and_balances() {
        let mut r = router(8);
        // One family takes every arrival: share 1.0 forces the replica
        // count to the cap.
        for id in 0..256 {
            r.route(Some(3), id, 500);
        }
        let replicas = r.replicas_of(affinity_chain_key(3)).expect("placed");
        assert_eq!(
            replicas.len(),
            RouterConfig::default().max_replicas,
            "share 1.0 expands to the replica cap"
        );
        let report = r.report();
        assert!(report.replicated_families >= 1);
        assert!(report.replica_expansions >= 3);
        assert!(report.p2c_balanced > 0, "p2c uses the extra replicas");
        // Load spreads: no replica holds everything.
        let max = replicas.iter().map(|&n| r.load_of(n)).max().unwrap();
        assert!(max < 256 * 500, "replication split the family's load");
    }

    #[test]
    fn cold_families_do_not_replicate() {
        let mut r = router(8);
        // 64 families, uniform: each share is far below replicate_share.
        for id in 0..256 {
            r.route(Some(id % 64), id, 100);
        }
        assert_eq!(r.report().replicated_families, 0);
        assert_eq!(r.report().replica_expansions, 0);
    }

    #[test]
    fn drain_replaces_families_and_reports_the_delta() {
        let mut r = router(4);
        let mut owned = BTreeMap::new();
        for f in 0..16 {
            owned.insert(f, r.route(Some(f), f, 100));
        }
        let victim = *owned.values().next().unwrap();
        let delta = r.drain(victim);
        assert!(!delta.is_empty(), "victim owned at least one family");
        for handoff in &delta {
            assert_eq!(handoff.from, victim);
            let dest = handoff.to.expect("single-replica families re-place");
            assert_ne!(dest, victim);
        }
        // New placements avoid the drained node; moved families are sticky
        // on their new home.
        for f in 0..16 {
            let node = r.route(Some(f), 1000 + f, 100);
            assert_ne!(node, victim, "drained node receives nothing new");
        }
        assert_eq!(r.report().handoffs, delta.len() as u64);
    }

    #[test]
    fn join_is_sticky_for_existing_families() {
        let mut r = router(2);
        let mut before = BTreeMap::new();
        for f in 0..12 {
            before.insert(f, r.route(Some(f), f, 100));
        }
        r.join(9);
        for (f, node) in &before {
            assert_eq!(
                r.route(Some(*f), 100 + f, 100),
                *node,
                "join does not move placed families"
            );
        }
    }

    #[test]
    fn leave_implies_drain() {
        let mut r = router(3);
        r.route(Some(1), 0, 10);
        let victim = r.replicas_of(affinity_chain_key(1)).unwrap()[0];
        let delta = r.leave(victim);
        assert_eq!(delta.len(), 1);
        assert_eq!(r.report().drains, 1);
        assert_eq!(r.report().leaves, 1);
        assert_eq!(r.admitting().count(), 2);
    }

    #[test]
    #[should_panic(expected = "no admitting nodes")]
    fn routing_with_everything_drained_panics() {
        let mut r = router(1);
        r.drain(0);
        r.route(Some(1), 0, 10);
    }
}
