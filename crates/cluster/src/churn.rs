//! Membership churn: a virtual-time schedule of node join/drain/leave
//! events, merged with the arrival stream by the fabric's event loop.
//!
//! Semantics (all in virtual microseconds, the same clock request
//! arrivals use):
//!
//! - **Join** — the node starts admitting new placements at `at_us`.
//!   Placement is sticky, so families placed before the join stay where
//!   they are; only new families (and replica expansions) can land on it.
//! - **Drain** — the node stops admitting at `at_us`. Requests already
//!   assigned to it still run to completion; the families it served are
//!   re-placed and the resulting family→node map delta is the cache
//!   handoff the router reports.
//! - **Leave** — the node is removed from the fabric. A leave without a
//!   prior drain performs the drain implicitly.
//!
//! Events are applied in `at_us` order; an event tied with a request
//! arrival applies *before* that arrival (membership changes take effect
//! at the instant they are scheduled). Ties between events preserve
//! schedule order. Because the merge is by virtual time only, a churn
//! schedule replays identically at any host thread count.

use serde::{Deserialize, Serialize};

/// What happens to a node at a churn instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnAction {
    /// Start admitting placements (add the node if it is new).
    Join,
    /// Stop admitting; hand the node's families off, finish in-flight
    /// work.
    Drain,
    /// Remove the node (implies a drain when still admitting).
    Leave,
}

/// One scheduled membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Virtual timestamp the change takes effect.
    pub at_us: u64,
    /// Target node id.
    pub node: u64,
    /// The change.
    pub action: ChurnAction,
}

impl ChurnEvent {
    /// A join at `at_us`.
    #[must_use]
    pub fn join(at_us: u64, node: u64) -> Self {
        Self {
            at_us,
            node,
            action: ChurnAction::Join,
        }
    }

    /// A drain at `at_us`.
    #[must_use]
    pub fn drain(at_us: u64, node: u64) -> Self {
        Self {
            at_us,
            node,
            action: ChurnAction::Drain,
        }
    }

    /// A leave at `at_us`.
    #[must_use]
    pub fn leave(at_us: u64, node: u64) -> Self {
        Self {
            at_us,
            node,
            action: ChurnAction::Leave,
        }
    }
}
