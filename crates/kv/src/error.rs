//! Error types for the key-value substrate.

use std::fmt;

/// Convenience alias used throughout `spear-kv`.
pub type Result<T> = std::result::Result<T, KvError>;

/// Errors produced by the key-value store and its persistence log.
#[derive(Debug)]
pub enum KvError {
    /// The requested key does not exist (or is deleted at the read point).
    KeyNotFound(String),
    /// The requested version of a key does not exist.
    VersionNotFound {
        /// Key whose version chain was consulted.
        key: String,
        /// Version that was requested.
        version: u64,
    },
    /// A compare-and-swap failed because the current version did not match.
    VersionConflict {
        /// Key the CAS targeted.
        key: String,
        /// Version the caller expected.
        expected: u64,
        /// Version actually found.
        found: u64,
    },
    /// An I/O error from the persistence log.
    Io(std::io::Error),
    /// A (de)serialization error from the persistence log.
    Serde(String),
    /// The persistence log contained a structurally invalid record.
    CorruptLog {
        /// 1-based line number of the bad record.
        line: usize,
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::KeyNotFound(k) => write!(f, "key not found: {k:?}"),
            KvError::VersionNotFound { key, version } => {
                write!(f, "version {version} of key {key:?} not found")
            }
            KvError::VersionConflict {
                key,
                expected,
                found,
            } => write!(
                f,
                "version conflict on key {key:?}: expected {expected}, found {found}"
            ),
            KvError::Io(e) => write!(f, "kv log i/o error: {e}"),
            KvError::Serde(e) => write!(f, "kv log serialization error: {e}"),
            KvError::CorruptLog { line, reason } => {
                write!(f, "corrupt kv log at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for KvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for KvError {
    fn from(e: std::io::Error) -> Self {
        KvError::Io(e)
    }
}

impl From<serde_json::Error> for KvError {
    fn from(e: serde_json::Error) -> Self {
        KvError::Serde(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = KvError::KeyNotFound("p/qa".into());
        assert!(e.to_string().contains("p/qa"));

        let e = KvError::VersionConflict {
            key: "k".into(),
            expected: 3,
            found: 5,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('5'));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e = KvError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
