//! The sharded, versioned key-value store.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{KvError, Result};
use crate::shard::{shard_for, DEFAULT_SHARDS};
use crate::snapshot::Snapshot;
use crate::stats::{StatsSnapshot, StoreStats};

/// One version of a key's value.
///
/// `value == None` marks a tombstone: the key was deleted at this version.
/// Tombstones stay in the chain so snapshots taken before the delete still
/// see the prior value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue<V> {
    /// Per-key version number, starting at 1 and increasing by 1 per write.
    pub version: u64,
    /// Global sequence number the write was assigned; orders writes across
    /// keys and drives snapshot visibility.
    pub seq: u64,
    /// The written value, or `None` for a tombstone.
    pub value: Option<V>,
}

/// A key's version chain, oldest first.
#[derive(Debug, Clone)]
struct Chain<V> {
    versions: Vec<VersionedValue<V>>,
}

impl<V> Chain<V> {
    fn latest(&self) -> &VersionedValue<V> {
        self.versions
            .last()
            .expect("chains are created non-empty and never fully drained")
    }

    /// Latest version whose seq is `<= seq_bound` (for snapshot reads).
    fn visible_at(&self, seq_bound: u64) -> Option<&VersionedValue<V>> {
        self.versions.iter().rev().find(|v| v.seq <= seq_bound)
    }
}

type ShardMap<V> = BTreeMap<String, Chain<V>>;

pub(crate) struct Inner<V> {
    shards: Vec<RwLock<ShardMap<V>>>,
    /// Next global sequence number to hand out. Sequence numbers are
    /// allocated while holding the target shard's write lock, which makes
    /// snapshot reads (at `seq <= snapshot.seq`) consistent: a snapshot can
    /// never observe a sequence number whose write has not landed.
    next_seq: AtomicU64,
    stats: StoreStats,
    max_versions: usize,
}

/// Configures and constructs a [`KvStore`].
#[derive(Debug, Clone)]
pub struct KvStoreBuilder {
    shards: usize,
    max_versions: usize,
}

impl Default for KvStoreBuilder {
    fn default() -> Self {
        Self {
            shards: DEFAULT_SHARDS,
            max_versions: 64,
        }
    }
}

impl KvStoreBuilder {
    /// Number of lock-striped shards (must be ≥ 1).
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Maximum retained versions per key (must be ≥ 1). When a chain grows
    /// past this bound its oldest versions are pruned.
    #[must_use]
    pub fn max_versions(mut self, n: usize) -> Self {
        self.max_versions = n.max(1);
        self
    }

    /// Build the store.
    #[must_use]
    pub fn build<V: Clone>(self) -> KvStore<V> {
        let shards = (0..self.shards)
            .map(|_| RwLock::new(BTreeMap::new()))
            .collect();
        KvStore {
            inner: Arc::new(Inner {
                shards,
                next_seq: AtomicU64::new(1),
                stats: StoreStats::default(),
                max_versions: self.max_versions,
            }),
        }
    }
}

/// Sharded, concurrent, versioned key-value store.
///
/// Cloning a `KvStore` is cheap and yields a handle to the same underlying
/// store (it is internally `Arc`ed), so it can be shared freely across the
/// SPEAR runtime, optimizer, and benchmark threads.
pub struct KvStore<V> {
    inner: Arc<Inner<V>>,
}

impl<V> Clone for KvStore<V> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V: Clone> Default for KvStore<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> KvStore<V> {
    /// Create a store with default sharding (16 shards, 64 versions/key).
    #[must_use]
    pub fn new() -> Self {
        KvStoreBuilder::default().build()
    }

    /// Start configuring a store.
    #[must_use]
    pub fn builder() -> KvStoreBuilder {
        KvStoreBuilder::default()
    }

    fn shard(&self, key: &str) -> &RwLock<ShardMap<V>> {
        &self.inner.shards[shard_for(key, self.inner.shards.len())]
    }

    /// Write `value` under `key`, returning the new per-key version number.
    pub fn put(&self, key: impl Into<String>, value: V) -> u64 {
        let key = key.into();
        let mut shard = self.shard(&key).write();
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let chain = shard.entry(key).or_insert_with(|| Chain {
            versions: Vec::with_capacity(1),
        });
        let version = chain.versions.last().map_or(1, |v| v.version + 1);
        chain.versions.push(VersionedValue {
            version,
            seq,
            value: Some(value),
        });
        Self::prune(chain, self.inner.max_versions);
        self.inner.stats.record_write();
        version
    }

    /// Compare-and-swap: write `value` only if the key's current version is
    /// `expected` (use `0` for "key must not exist or be deleted").
    ///
    /// # Errors
    ///
    /// Returns [`KvError::VersionConflict`] when the current version differs.
    pub fn put_cas(&self, key: impl Into<String>, expected: u64, value: V) -> Result<u64> {
        let key = key.into();
        let mut shard = self.shard(&key).write();
        let current = shard.get(&key).map_or(0, |c| {
            let latest = c.latest();
            if latest.value.is_some() {
                latest.version
            } else {
                0
            }
        });
        if current != expected {
            self.inner.stats.record_cas_failure();
            return Err(KvError::VersionConflict {
                key,
                expected,
                found: current,
            });
        }
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let chain = shard.entry(key).or_insert_with(|| Chain {
            versions: Vec::with_capacity(1),
        });
        let version = chain.versions.last().map_or(1, |v| v.version + 1);
        chain.versions.push(VersionedValue {
            version,
            seq,
            value: Some(value),
        });
        Self::prune(chain, self.inner.max_versions);
        self.inner.stats.record_write();
        Ok(version)
    }

    fn prune(chain: &mut Chain<V>, max: usize) {
        if chain.versions.len() > max {
            let excess = chain.versions.len() - max;
            chain.versions.drain(..excess);
        }
    }

    /// Read the latest live value of `key`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<V> {
        let shard = self.shard(key).read();
        let out = shard
            .get(key)
            .and_then(|c| c.latest().value.as_ref().cloned());
        self.inner.stats.record_read(out.is_some());
        out
    }

    /// Read the latest entry of `key` with its version metadata. Returns a
    /// tombstone entry (with `value: None`) if the key was deleted.
    #[must_use]
    pub fn get_versioned(&self, key: &str) -> Option<VersionedValue<V>> {
        let shard = self.shard(key).read();
        let out = shard.get(key).map(|c| c.latest().clone());
        self.inner
            .stats
            .record_read(out.as_ref().is_some_and(|v| v.value.is_some()));
        out
    }

    /// Read a specific retained version of `key`.
    #[must_use]
    pub fn get_version(&self, key: &str, version: u64) -> Option<V> {
        let shard = self.shard(key).read();
        let out = shard.get(key).and_then(|c| {
            c.versions
                .iter()
                .find(|v| v.version == version)
                .and_then(|v| v.value.clone())
        });
        self.inner.stats.record_read(out.is_some());
        out
    }

    /// All retained versions of `key`, oldest first (tombstones included).
    #[must_use]
    pub fn history(&self, key: &str) -> Vec<VersionedValue<V>> {
        self.shard(key)
            .read()
            .get(key)
            .map(|c| c.versions.clone())
            .unwrap_or_default()
    }

    /// Delete `key` by writing a tombstone. Returns `true` if the key was
    /// live before the call.
    pub fn delete(&self, key: &str) -> bool {
        let mut shard = self.shard(key).write();
        let Some(chain) = shard.get_mut(key) else {
            return false;
        };
        if chain.latest().value.is_none() {
            return false; // already deleted
        }
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let version = chain.latest().version + 1;
        chain.versions.push(VersionedValue {
            version,
            seq,
            value: None,
        });
        Self::prune(chain, self.inner.max_versions);
        self.inner.stats.record_delete();
        true
    }

    /// Whether `key` currently has a live (non-deleted) value.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.shard(key)
            .read()
            .get(key)
            .is_some_and(|c| c.latest().value.is_some())
    }

    /// Number of live keys. O(keys); intended for tests and diagnostics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .filter(|c| c.latest().value.is_some())
                    .count()
            })
            .sum()
    }

    /// Whether the store holds no live keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All live keys, sorted.
    #[must_use]
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .inner
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .filter(|(_, c)| c.latest().value.is_some())
                    .map(|(k, _)| k.clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Live `(key, value)` pairs whose key starts with `prefix`, sorted by
    /// key. Shards keep ordered maps, so each shard contributes a contiguous
    /// range; results are merged and sorted across shards.
    #[must_use]
    pub fn prefix_scan(&self, prefix: &str) -> Vec<(String, V)> {
        let mut out: Vec<(String, V)> = self
            .inner
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .range(prefix.to_string()..)
                    .take_while(|(k, _)| k.starts_with(prefix))
                    .filter_map(|(k, c)| c.latest().value.as_ref().map(|v| (k.clone(), v.clone())))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Take a consistent point-in-time snapshot. The snapshot sees exactly
    /// the writes with sequence number `<` the snapshot's bound; later writes
    /// and deletes are invisible to it.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot<V> {
        // `next_seq` is the next seq to be handed out; everything below it
        // has already been inserted (allocation happens under the shard
        // write lock).
        let bound = self
            .inner
            .next_seq
            .load(Ordering::Relaxed)
            .saturating_sub(1);
        Snapshot::new(Arc::clone(&self.inner), bound)
    }

    /// Current operation counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Remove every key and its history. Sequence numbers keep advancing, so
    /// snapshots taken before `clear` are invalidated (they will see nothing).
    pub fn clear(&self) {
        for s in &self.inner.shards {
            s.write().clear();
        }
    }
}

impl<V: Clone> Inner<V> {
    pub(crate) fn read_at(&self, key: &str, seq_bound: u64) -> Option<V> {
        let shard = &self.shards[shard_for(key, self.shards.len())];
        shard
            .read()
            .get(key)
            .and_then(|c| c.visible_at(seq_bound))
            .and_then(|v| v.value.clone())
    }

    pub(crate) fn keys_at(&self, seq_bound: u64) -> Vec<String> {
        let mut keys: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .filter(|(_, c)| c.visible_at(seq_bound).is_some_and(|v| v.value.is_some()))
                    .map(|(k, _)| k.clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        keys.sort_unstable();
        keys
    }
}

impl<V: Clone + std::fmt::Debug> std::fmt::Debug for KvStore<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore")
            .field("shards", &self.inner.shards.len())
            .field("live_keys", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let s: KvStore<i64> = KvStore::new();
        assert_eq!(s.put("a", 1), 1);
        assert_eq!(s.put("a", 2), 2);
        assert_eq!(s.get("a"), Some(2));
        assert_eq!(s.get("missing"), None);
    }

    #[test]
    fn versions_are_retained_and_addressable() {
        let s: KvStore<&str> = KvStore::new();
        s.put("k", "one");
        s.put("k", "two");
        s.put("k", "three");
        assert_eq!(s.get_version("k", 1), Some("one"));
        assert_eq!(s.get_version("k", 2), Some("two"));
        assert_eq!(s.get_version("k", 3), Some("three"));
        assert_eq!(s.get_version("k", 4), None);
        assert_eq!(s.history("k").len(), 3);
    }

    #[test]
    fn delete_writes_tombstone_but_preserves_history() {
        let s: KvStore<i32> = KvStore::new();
        s.put("k", 10);
        assert!(s.delete("k"));
        assert!(!s.delete("k"), "double delete is a no-op");
        assert_eq!(s.get("k"), None);
        assert!(!s.contains("k"));
        assert_eq!(s.get_version("k", 1), Some(10), "history survives delete");
        // A put after delete resurrects the key at the next version.
        assert_eq!(s.put("k", 20), 3);
        assert_eq!(s.get("k"), Some(20));
    }

    #[test]
    fn delete_missing_key_is_false() {
        let s: KvStore<i32> = KvStore::new();
        assert!(!s.delete("nope"));
    }

    #[test]
    fn cas_succeeds_only_on_matching_version() {
        let s: KvStore<i32> = KvStore::new();
        assert_eq!(s.put_cas("k", 0, 1).unwrap(), 1);
        assert_eq!(s.put_cas("k", 1, 2).unwrap(), 2);
        let err = s.put_cas("k", 1, 3).unwrap_err();
        match err {
            KvError::VersionConflict {
                expected, found, ..
            } => {
                assert_eq!(expected, 1);
                assert_eq!(found, 2);
            }
            other => panic!("unexpected error: {other}"),
        }
        assert_eq!(s.stats().cas_failures, 1);
    }

    #[test]
    fn cas_on_deleted_key_expects_zero() {
        let s: KvStore<i32> = KvStore::new();
        s.put("k", 1);
        s.delete("k");
        assert!(s.put_cas("k", 1, 2).is_err());
        assert!(s.put_cas("k", 0, 2).is_ok());
    }

    #[test]
    fn prefix_scan_is_sorted_and_filtered() {
        let s: KvStore<i32> = KvStore::<i32>::builder().shards(4).build();
        s.put("prompt/qa", 1);
        s.put("prompt/summary", 2);
        s.put("ctx/answer", 3);
        s.put("prompt/deleted", 4);
        s.delete("prompt/deleted");
        let hits = s.prefix_scan("prompt/");
        assert_eq!(
            hits,
            vec![
                ("prompt/qa".to_string(), 1),
                ("prompt/summary".to_string(), 2)
            ]
        );
        assert!(s.prefix_scan("nothing/").is_empty());
    }

    #[test]
    fn len_and_keys_track_live_keys_only() {
        let s: KvStore<i32> = KvStore::new();
        s.put("a", 1);
        s.put("b", 2);
        s.delete("a");
        assert_eq!(s.len(), 1);
        assert_eq!(s.keys(), vec!["b".to_string()]);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn version_pruning_bounds_chain_length() {
        let s: KvStore<u64> = KvStore::<u64>::builder().max_versions(3).build();
        for i in 0..10 {
            s.put("k", i);
        }
        let hist = s.history("k");
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[0].version, 8);
        assert_eq!(s.get("k"), Some(9));
        assert_eq!(s.get_version("k", 1), None, "pruned version is gone");
    }

    #[test]
    fn snapshot_isolation_from_later_writes() {
        let s: KvStore<i32> = KvStore::new();
        s.put("a", 1);
        s.put("b", 1);
        let snap = s.snapshot();
        s.put("a", 2);
        s.delete("b");
        s.put("c", 1);
        assert_eq!(snap.get("a"), Some(1), "snapshot sees pre-write value");
        assert_eq!(snap.get("b"), Some(1), "snapshot sees pre-delete value");
        assert_eq!(snap.get("c"), None, "snapshot does not see later insert");
        assert_eq!(s.get("a"), Some(2));
    }

    #[test]
    fn snapshot_of_empty_store() {
        let s: KvStore<i32> = KvStore::new();
        let snap = s.snapshot();
        s.put("a", 1);
        assert_eq!(snap.get("a"), None);
        assert!(snap.keys().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let a: KvStore<i32> = KvStore::new();
        let b = a.clone();
        a.put("k", 7);
        assert_eq!(b.get("k"), Some(7));
    }

    #[test]
    fn concurrent_writers_produce_distinct_versions() {
        let s: KvStore<usize> = KvStore::new();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        s.put("shared", t * 1000 + i);
                        s.put(format!("own-{t}"), i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 8 threads * 100 writes to "shared" => version 800 (pruned chain,
        // but the version counter keeps increasing monotonically).
        assert_eq!(s.get_versioned("shared").unwrap().version, 800);
        assert_eq!(s.len(), 9);
        assert_eq!(s.stats().writes, 1600);
    }

    #[test]
    fn stats_reflect_reads() {
        let s: KvStore<i32> = KvStore::new();
        s.put("k", 1);
        let _ = s.get("k");
        let _ = s.get("nope");
        let st = s.stats();
        assert_eq!(st.reads, 2);
        assert_eq!(st.read_hits, 1);
    }
}
