//! Consistent point-in-time snapshots.

use std::sync::Arc;

use crate::store::Inner;

/// A read-only, point-in-time view of a [`crate::KvStore`].
///
/// The snapshot pins a global sequence bound: reads see exactly the writes
/// whose sequence number is `<=` the bound, regardless of later puts or
/// deletes. Snapshots hold no locks — they read version chains lazily — so
/// they are cheap to create and keep around. They do not pin memory beyond
/// the store's per-key version retention limit: if a chain is pruned past
/// the snapshot's bound, the snapshot no longer sees that key (this mirrors
/// the behaviour of MVCC stores with bounded history).
pub struct Snapshot<V> {
    inner: Arc<Inner<V>>,
    seq_bound: u64,
}

impl<V: Clone> Snapshot<V> {
    pub(crate) fn new(inner: Arc<Inner<V>>, seq_bound: u64) -> Self {
        Self { inner, seq_bound }
    }

    /// The sequence bound this snapshot reads at.
    #[must_use]
    pub fn sequence(&self) -> u64 {
        self.seq_bound
    }

    /// Value of `key` as of the snapshot point, if it was live then.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<V> {
        self.inner.read_at(key, self.seq_bound)
    }

    /// Whether `key` was live at the snapshot point.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// All keys live at the snapshot point, sorted.
    #[must_use]
    pub fn keys(&self) -> Vec<String> {
        self.inner.keys_at(self.seq_bound)
    }
}

impl<V> Clone for Snapshot<V> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
            seq_bound: self.seq_bound,
        }
    }
}

impl<V> std::fmt::Debug for Snapshot<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("seq_bound", &self.seq_bound)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::KvStore;

    #[test]
    fn successive_snapshots_see_successive_states() {
        let s: KvStore<i32> = KvStore::new();
        let s0 = s.snapshot();
        s.put("k", 1);
        let s1 = s.snapshot();
        s.put("k", 2);
        let s2 = s.snapshot();

        assert_eq!(s0.get("k"), None);
        assert_eq!(s1.get("k"), Some(1));
        assert_eq!(s2.get("k"), Some(2));
        assert!(s1.contains("k"));
        assert!(!s0.contains("k"));
        assert!(s0.sequence() < s1.sequence());
    }

    #[test]
    fn snapshot_keys_exclude_later_deletes_from_live_view_only() {
        let s: KvStore<i32> = KvStore::new();
        s.put("a", 1);
        s.put("b", 2);
        let snap = s.snapshot();
        s.delete("a");
        assert_eq!(snap.keys(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(s.keys(), vec!["b".to_string()]);
    }

    #[test]
    fn snapshot_clone_reads_same_point() {
        let s: KvStore<i32> = KvStore::new();
        s.put("k", 1);
        let snap = s.snapshot();
        let snap2 = snap.clone();
        s.put("k", 2);
        assert_eq!(snap2.get("k"), Some(1));
        assert_eq!(snap2.sequence(), snap.sequence());
    }
}
