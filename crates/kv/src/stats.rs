//! Operation counters for the store.
//!
//! Counters are plain relaxed atomics: they are diagnostics, not control
//! state, so no ordering stronger than `Relaxed` is needed.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters maintained by a [`crate::KvStore`].
#[derive(Debug, Default)]
pub struct StoreStats {
    reads: AtomicU64,
    read_hits: AtomicU64,
    writes: AtomicU64,
    deletes: AtomicU64,
    cas_failures: AtomicU64,
}

/// A point-in-time copy of [`StoreStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Total `get*` calls.
    pub reads: u64,
    /// `get*` calls that found a live value.
    pub read_hits: u64,
    /// Total successful `put*` calls.
    pub writes: u64,
    /// Total successful deletes (tombstone writes).
    pub deletes: u64,
    /// Compare-and-swap attempts that failed on a version mismatch.
    pub cas_failures: u64,
}

impl StoreStats {
    pub(crate) fn record_read(&self, hit: bool) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        if hit {
            self.read_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_delete(&self) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cas_failure(&self) {
        self.cas_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current counter values.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            read_hits: self.read_hits.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            cas_failures: self.cas_failures.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Fraction of reads that found a live value, in `[0, 1]`.
    /// Returns `None` when no reads have happened yet.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        if self.reads == 0 {
            None
        } else {
            Some(self.read_hits as f64 / self.reads as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = StoreStats::default();
        s.record_read(true);
        s.record_read(false);
        s.record_write();
        s.record_delete();
        s.record_cas_failure();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.read_hits, 1);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.deletes, 1);
        assert_eq!(snap.cas_failures, 1);
    }

    #[test]
    fn hit_rate_handles_zero_reads() {
        assert_eq!(StatsSnapshot::default().hit_rate(), None);
        let snap = StatsSnapshot {
            reads: 4,
            read_hits: 1,
            ..Default::default()
        };
        assert!((snap.hit_rate().unwrap() - 0.25).abs() < 1e-12);
    }
}
