//! Hash-based shard routing.
//!
//! The store splits its keyspace across a fixed number of shards, each
//! protected by its own `RwLock`, so unrelated keys never contend. Shard
//! selection uses a stable FNV-1a hash of the key bytes — stable so that the
//! mapping survives process restarts, which matters when replaying a
//! persistence log into a store with the same shard count.

/// Default number of shards. A small power of two keeps the modulo cheap and
/// is plenty for the prompt/context workloads SPEAR generates.
pub const DEFAULT_SHARDS: usize = 16;

/// FNV-1a 64-bit offset basis — the initial state of the hash.
pub const FNV1A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV1A_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a hash. Deliberately not `DefaultHasher`: we need a hash that
/// is stable across Rust versions and processes.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV1A_OFFSET, bytes)
}

/// Fold `bytes` into an in-progress FNV-1a state. Because FNV-1a is a plain
/// byte fold, hashing a stream in arbitrary chunks yields exactly the same
/// value as hashing the concatenation in one call — which is what lets the
/// prefix cache hash token blocks incrementally without materializing a
/// byte buffer.
#[must_use]
pub fn fnv1a_extend(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV1A_PRIME);
    }
    h
}

/// Map a key to a shard index in `0..num_shards`.
///
/// # Panics
///
/// Panics if `num_shards` is zero; the store builder guarantees it never is.
#[must_use]
pub fn shard_for(key: &str, num_shards: usize) -> usize {
    assert!(num_shards > 0, "shard count must be non-zero");
    (fnv1a(key.as_bytes()) % num_shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Reference values for FNV-1a 64-bit.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_extend_equals_batch_hash() {
        let data = "the quick brown fox jumps over the lazy dog 🦀".as_bytes();
        let batch = fnv1a(data);
        for split in 0..=data.len() {
            let streamed = fnv1a_extend(fnv1a_extend(FNV1A_OFFSET, &data[..split]), &data[split..]);
            assert_eq!(streamed, batch, "split at {split}");
        }
        assert_eq!(fnv1a_extend(FNV1A_OFFSET, b""), fnv1a(b""));
    }

    #[test]
    fn shard_is_stable_and_in_range() {
        for key in ["", "a", "prompt/qa", "ctx/answer_0", "🦀"] {
            let s = shard_for(key, DEFAULT_SHARDS);
            assert!(s < DEFAULT_SHARDS);
            assert_eq!(s, shard_for(key, DEFAULT_SHARDS), "must be deterministic");
        }
    }

    #[test]
    fn keys_spread_across_shards() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..256 {
            seen.insert(shard_for(&format!("key-{i}"), DEFAULT_SHARDS));
        }
        // With 256 keys over 16 shards, expect every shard hit.
        assert_eq!(seen.len(), DEFAULT_SHARDS);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_shards_panics() {
        let _ = shard_for("k", 0);
    }
}
