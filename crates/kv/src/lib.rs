//! # spear-kv — versioned key-value substrate for SPEAR stores
//!
//! The SPEAR paper (§6) notes that the prompt store **P**, context **C**, and
//! metadata **M** "may be in-memory or backed by high-performance key-value
//! systems, enabling low-latency and distributed deployments". This crate is
//! that substrate: a sharded, concurrent, **versioned** key-value store with
//!
//! - per-key version chains (every write produces a new version; old versions
//!   remain readable until pruned),
//! - consistent point-in-time [`Snapshot`]s driven by a global sequence
//!   number,
//! - ordered prefix scans (each shard keeps a `BTreeMap`; scans merge across
//!   shards),
//! - operation statistics ([`StoreStats`]), and
//! - optional durability through an append-only JSONL [`log`] with replay.
//!
//! Keys are `String`s; values are generic (`V: Clone`). The store is the
//! backing layer for `spear-core`'s `PromptStore` and `Context`, where values
//! are structured prompt entries, and for the structured prompt-cache index in
//! `spear-optimizer`.
//!
//! ## Example
//!
//! ```
//! use spear_kv::KvStore;
//!
//! let store: KvStore<String> = KvStore::new();
//! store.put("prompt/qa", "v1 text".to_string());
//! store.put("prompt/qa", "v2 text".to_string());
//!
//! assert_eq!(store.get("prompt/qa").as_deref(), Some("v2 text"));
//! // Both versions remain addressable:
//! assert_eq!(store.get_version("prompt/qa", 1).as_deref(), Some("v1 text"));
//! assert_eq!(store.get_version("prompt/qa", 2).as_deref(), Some("v2 text"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Hot-path hygiene: these crates sit on the per-request fast path, where a
// stray clone or to_string() is a real regression, not a style nit.
#![deny(clippy::redundant_clone, clippy::inefficient_to_string)]

pub mod error;
pub mod log;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod store;

pub use error::{KvError, Result};
pub use log::{DurableStore, JsonlLog, LogOp, LogRecord, Persister};
pub use snapshot::Snapshot;
pub use stats::StoreStats;
pub use store::{KvStore, KvStoreBuilder, VersionedValue};
