//! Property-based tests: the sharded versioned store must behave exactly
//! like a simple model (a `BTreeMap` plus per-key version counters) under
//! arbitrary interleavings of puts, deletes, and reads, and snapshots must
//! be immune to subsequent mutations.

use std::collections::BTreeMap;

use proptest::prelude::*;
use spear_kv::KvStore;

#[derive(Debug, Clone)]
enum Cmd {
    Put(u8, i64),
    Delete(u8),
    Get(u8),
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        (any::<u8>(), any::<i64>()).prop_map(|(k, v)| Cmd::Put(k % 16, v)),
        any::<u8>().prop_map(|k| Cmd::Delete(k % 16)),
        any::<u8>().prop_map(|k| Cmd::Get(k % 16)),
    ]
}

fn key(k: u8) -> String {
    format!("key-{k}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The store agrees with a model map on every read, and per-key version
    /// numbers count every write (including tombstones).
    #[test]
    fn store_matches_model(cmds in proptest::collection::vec(cmd_strategy(), 1..200)) {
        let store: KvStore<i64> = KvStore::<i64>::builder().max_versions(1024).build();
        let mut model: BTreeMap<String, i64> = BTreeMap::new();
        let mut write_counts: BTreeMap<String, u64> = BTreeMap::new();

        for cmd in cmds {
            match cmd {
                Cmd::Put(k, v) => {
                    let k = key(k);
                    let version = store.put(k.clone(), v);
                    *write_counts.entry(k.clone()).or_default() += 1;
                    prop_assert_eq!(version, write_counts[&k]);
                    model.insert(k, v);
                }
                Cmd::Delete(k) => {
                    let k = key(k);
                    let was_live = model.remove(&k).is_some();
                    prop_assert_eq!(store.delete(&k), was_live);
                    if was_live {
                        *write_counts.entry(k).or_default() += 1;
                    }
                }
                Cmd::Get(k) => {
                    let k = key(k);
                    prop_assert_eq!(store.get(&k), model.get(&k).copied());
                }
            }
        }

        // Final state agrees everywhere.
        let live: Vec<String> = model.keys().cloned().collect();
        prop_assert_eq!(store.keys(), live);
        prop_assert_eq!(store.len(), model.len());
    }

    /// Snapshots pin state: any sequence of later mutations leaves every
    /// snapshot read unchanged.
    #[test]
    fn snapshots_are_immutable(
        before in proptest::collection::vec(cmd_strategy(), 0..60),
        after in proptest::collection::vec(cmd_strategy(), 0..60),
    ) {
        let store: KvStore<i64> = KvStore::<i64>::builder().max_versions(4096).build();
        let mut model: BTreeMap<String, i64> = BTreeMap::new();
        for cmd in before {
            match cmd {
                Cmd::Put(k, v) => { store.put(key(k), v); model.insert(key(k), v); }
                Cmd::Delete(k) => { store.delete(&key(k)); model.remove(&key(k)); }
                Cmd::Get(_) => {}
            }
        }
        let snap = store.snapshot();
        for cmd in after {
            match cmd {
                Cmd::Put(k, v) => { store.put(key(k), v); }
                Cmd::Delete(k) => { store.delete(&key(k)); }
                Cmd::Get(_) => {}
            }
        }
        for k in 0..16u8 {
            let k = key(k);
            prop_assert_eq!(snap.get(&k), model.get(&k).copied(), "key {}", k);
        }
    }

    /// Prefix scans return exactly the live keys with that prefix, sorted.
    #[test]
    fn prefix_scan_matches_model(
        entries in proptest::collection::btree_map("[ab]/[a-d]{1,3}", any::<i64>(), 0..40),
        deleted in proptest::collection::vec("[ab]/[a-d]{1,3}", 0..10),
    ) {
        let store: KvStore<i64> = KvStore::new();
        let mut model = entries.clone();
        for (k, v) in &entries {
            store.put(k.clone(), *v);
        }
        for k in &deleted {
            store.delete(k);
            model.remove(k);
        }
        for prefix in ["a/", "b/", ""] {
            let got = store.prefix_scan(prefix);
            let want: Vec<(String, i64)> = model
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            prop_assert_eq!(got, want, "prefix {}", prefix);
        }
    }
}
