//! Property tests for the host fast path (DESIGN.md §10).
//!
//! Two invariants keep the fast path observably invisible: encoding a
//! prompt segment-by-segment through the [`StreamingEncoder`] must equal
//! encoding the joined string in one pass, for *any* segment split — the
//! splits land mid-word, mid-punctuation, and between multi-byte
//! characters — and the [`TokenInterner`] must stay bounded and
//! content-consistent under concurrent access.

use std::sync::Arc;

use proptest::prelude::*;
use spear_core::llm::{GenRequest, LlmClient};
use spear_core::segment::{SegmentedText, TextSegment};
use spear_kv::shard::fnv1a;
use spear_llm::{
    chain_key, InternedChain, ModelProfile, SimLlm, StreamingEncoder, Token, TokenInterner,
    Tokenizer, CHAIN_SEED,
};

fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z]{1,12}",
        "[A-Z0-9]{1,8}",
        Just(" ".to_string()),
        Just("\n".to_string()),
        Just(", ".to_string()),
        Just("! ".to_string()),
        Just("wörter, naïve".to_string()),
        Just("don't".to_string()),
        Just("{{x}}".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Streaming encoding over an arbitrary split equals whole-string
    /// encoding — the foundation the interner's resume-from-chain logic
    /// rests on.
    #[test]
    fn streaming_over_any_split_equals_whole_string_encoding(
        fragments in proptest::collection::vec(fragment(), 0..12)
    ) {
        let text: String = fragments.concat();
        let tokenizer = Tokenizer::new();
        let expected = tokenizer.encode(&text);
        let mut encoder = StreamingEncoder::new();
        let mut got = Vec::new();
        for f in &fragments {
            encoder.feed(f, &mut got);
        }
        encoder.finish(&mut got);
        prop_assert_eq!(got, expected);
    }

    /// End to end: a segmented request (arbitrary literal/value split)
    /// produces a byte-identical `GenResponse` to the same text sent flat,
    /// on the first pass (cold interner) and the second (warm chains).
    /// Debug asserts inside the engine additionally pin the token count
    /// against a full recount.
    #[test]
    fn segmented_requests_are_engine_equivalent(
        pieces in proptest::collection::vec((any::<bool>(), fragment()), 1..8)
    ) {
        let fast = SimLlm::new(ModelProfile::qwen25_7b_instruct());
        let flat = SimLlm::new(ModelProfile::qwen25_7b_instruct());
        // Two passes: the second resumes from chains the first interned.
        for _pass in 0..2 {
            let mut segments = SegmentedText::new();
            for (literal, text) in &pieces {
                if *literal {
                    segments.push_segment(TextSegment::from_shared(
                        Arc::from(text.as_str()),
                        fnv1a(text.as_bytes()),
                    ));
                } else {
                    segments.push(text.clone());
                }
            }
            let text = segments.join();
            prop_assume!(!text.is_empty());
            let seg_req =
                GenRequest::structured(text.clone(), "view:prop@1#0/v1").with_segments(segments);
            let flat_req = GenRequest::structured(text, "view:prop@1#0/v1");
            prop_assert_eq!(
                fast.generate(&seg_req).unwrap(),
                flat.generate(&flat_req).unwrap()
            );
        }
    }
}

/// Hammer a small interner from many threads over an overlapping keyspace
/// larger than its capacity: residency stays bounded, the counters add up,
/// and every hit returns the content its key determines (no cross-key
/// corruption under eviction races).
#[test]
fn interner_is_bounded_and_consistent_under_concurrent_access() {
    let capacity = 32;
    let interner = TokenInterner::new(capacity, 4);
    let threads = 8;
    let per_thread = 400;
    std::thread::scope(|s| {
        for t in 0..threads {
            let interner = &interner;
            s.spawn(move || {
                for i in 0..per_thread {
                    let salt = ((t + i) % 48) as u64;
                    let key = chain_key(CHAIN_SEED, salt);
                    match interner.get(key) {
                        Some(chain) => {
                            assert_eq!(chain.tokens.len(), (salt as usize % 7) + 1);
                            assert_eq!(chain.block_hashes.as_ref(), &[salt]);
                            assert_eq!(chain.tokens[0], Token(salt));
                        }
                        None => {
                            interner.insert(
                                key,
                                InternedChain {
                                    tokens: (0..(salt as usize % 7) + 1)
                                        .map(|j| Token(salt ^ j as u64))
                                        .collect(),
                                    pending: Arc::from(""),
                                    block_hashes: Arc::from(&[salt][..]),
                                },
                            );
                        }
                    }
                }
            });
        }
    });
    let stats = interner.stats();
    assert!(stats.resident <= capacity as u64, "{stats:?}");
    assert_eq!(stats.hits + stats.misses, (threads * per_thread) as u64);
    assert_eq!(
        stats.resident,
        stats.insertions - stats.evictions,
        "{stats:?}"
    );
    assert!(stats.evictions > 0, "keyspace exceeds capacity: {stats:?}");
}
