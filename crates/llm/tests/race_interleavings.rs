//! Loom-style exhaustive interleaving check for the lock-striped prefix
//! cache's **owner discipline**: an owner's hit sequence may depend only
//! on its own history plus pre-warmed shared blocks — never on how its
//! operations interleave with another owner's.
//!
//! Instead of a stochastic thread stress (that is
//! `striped_cache_stress.rs`), this test *enumerates every schedule*: all
//! C(n+m, n) merge orders of two owners' operation logs. Each schedule is
//! driven through the real cache on two real threads that hand the turn
//! to each other (condvar turnstile), so the shard mutexes see genuine
//! cross-thread handoffs at every enumerated point. The invariant: every
//! owner's per-request hit counts equal its solo baseline, under every
//! schedule, and the aggregate stats are schedule-invariant.
//!
//! Referenced from DESIGN.md §5; run it alone via `just race`.

use std::sync::{Arc, Condvar, Mutex};

use spear_llm::{StripedPrefixCache, Token};

const BLOCK_SIZE: usize = 4;
const CAPACITY_BLOCKS: usize = 1024;
const NUM_SHARDS: usize = 4;

fn tokens(raw: &[u64]) -> Vec<Token> {
    raw.iter().map(|&t| Token(t)).collect()
}

/// A fresh cache pre-warmed with one shared 2-block prefix.
fn fresh_cache() -> StripedPrefixCache {
    let cache = StripedPrefixCache::new(BLOCK_SIZE, CAPACITY_BLOCKS, NUM_SHARDS);
    cache.warm(&tokens(&[1, 2, 3, 4, 5, 6, 7, 8]));
    cache
}

/// Enumerate every merge order of `a` slots for owner 0 and `b` slots for
/// owner 1 (each schedule is a vector of owner ids, C(a+b, a) in total).
fn schedules(a: usize, b: usize) -> Vec<Vec<usize>> {
    fn go(a: usize, b: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if a == 0 && b == 0 {
            out.push(prefix.clone());
            return;
        }
        if a > 0 {
            prefix.push(0);
            go(a - 1, b, prefix, out);
            prefix.pop();
        }
        if b > 0 {
            prefix.push(1);
            go(a, b - 1, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    go(a, b, &mut Vec::new(), &mut out);
    out
}

/// Turnstile: threads block until `turns[pos]` names them, perform one
/// operation, then advance `pos` and wake the other thread.
struct Turnstile {
    turns: Vec<usize>,
    pos: Mutex<usize>,
    cv: Condvar,
}

impl Turnstile {
    fn new(turns: Vec<usize>) -> Self {
        Self {
            turns,
            pos: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Run `op` at each of `who`'s scheduled turns, in order.
    fn drive<T>(&self, who: usize, mut op: impl FnMut() -> T) -> Vec<T> {
        let mut results = Vec::new();
        loop {
            let mut pos = self.pos.lock().expect("turnstile poisoned");
            while *pos < self.turns.len() && self.turns[*pos] != who {
                pos = self.cv.wait(pos).expect("turnstile poisoned");
            }
            if *pos >= self.turns.len() {
                return results;
            }
            drop(pos);
            // The turn is ours: touch the cache *outside* the turnstile
            // lock so the shard mutexes really arbitrate the handoff.
            results.push(op());
            let mut pos = self.pos.lock().expect("turnstile poisoned");
            *pos += 1;
            self.cv.notify_all();
        }
    }
}

/// Per-owner operation logs: overlapping prefixes, both extending the
/// warm shared prefix and each other's (which owner discipline must keep
/// invisible across owners).
fn logs() -> [Vec<Vec<Token>>; 2] {
    [
        vec![
            tokens(&[1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13]), // warm + private
            tokens(&[1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13]), // full self-hit
            tokens(&[1, 2, 3, 4, 20, 21, 22, 23]),             // half warm + private
            tokens(&[40, 41, 42, 43]),                         // cold
        ],
        vec![
            tokens(&[1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13]), // same bytes as owner 0!
            tokens(&[1, 2, 3, 4, 20, 21, 22, 23]),             // same as owner 0's third
            tokens(&[40, 41, 42, 43]),                         // same cold run
            tokens(&[1, 2, 3, 4, 5, 6, 7, 8]),                 // pure warm hit
        ],
    ]
}

/// Each owner's hit counts with the other owner absent entirely.
fn solo_baseline(log: &[Vec<Token>], owner: u64) -> Vec<usize> {
    let cache = fresh_cache();
    log.iter().map(|t| cache.lookup_insert(t, owner)).collect()
}

#[test]
fn owner_discipline_holds_under_every_interleaving() {
    let [log_a, log_b] = logs();
    let solo = [solo_baseline(&log_a, 1), solo_baseline(&log_b, 2)];
    let all = schedules(log_a.len(), log_b.len());
    assert_eq!(all.len(), 70, "C(8,4) schedules");

    let mut stats_witness = None;
    for schedule in all {
        let cache = Arc::new(fresh_cache());
        let turnstile = Arc::new(Turnstile::new(schedule.clone()));
        let mut per_owner: Vec<Vec<usize>> = Vec::with_capacity(2);
        std::thread::scope(|s| {
            let handles: Vec<_> = [&log_a, &log_b]
                .into_iter()
                .enumerate()
                .map(|(who, log)| {
                    let cache = Arc::clone(&cache);
                    let turnstile = Arc::clone(&turnstile);
                    s.spawn(move || {
                        let mut next = 0usize;
                        turnstile.drive(who, || {
                            let hits = cache.lookup_insert(&log[next], who as u64 + 1);
                            next += 1;
                            hits
                        })
                    })
                })
                .collect();
            for handle in handles {
                per_owner.push(handle.join().expect("worker panicked"));
            }
        });

        for (who, observed) in per_owner.iter().enumerate() {
            assert_eq!(
                observed,
                &solo[who],
                "owner {} saw schedule-dependent hits under {:?}",
                who + 1,
                schedule
            );
        }
        // Aggregate stats are schedule-invariant too: same ops happened,
        // only their order differed, and order is unobservable.
        let stats = cache.stats();
        match &stats_witness {
            None => stats_witness = Some(stats),
            Some(expected) => assert_eq!(&stats, expected, "stats drifted under {schedule:?}"),
        }
    }
}

#[test]
fn schedule_enumeration_is_exhaustive_and_unique() {
    let all = schedules(3, 2);
    assert_eq!(all.len(), 10, "C(5,3)");
    let unique: std::collections::BTreeSet<Vec<usize>> = all.iter().cloned().collect();
    assert_eq!(unique.len(), all.len(), "no duplicate schedules");
    for s in &all {
        assert_eq!(s.iter().filter(|&&w| w == 0).count(), 3);
        assert_eq!(s.iter().filter(|&&w| w == 1).count(), 2);
    }
}
