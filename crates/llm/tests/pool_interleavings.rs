//! Exhaustive interleaving check for the [`BlockPool`] **pin invariant**
//! on a single pool stripe: under *every* schedule of 2 allocator threads
//! × 1 evictor thread, a leased path is never (even partially) evicted,
//! capacity is never breached, and the counters reconcile after every
//! single operation.
//!
//! Like `race_interleavings.rs`, this enumerates all merge orders of the
//! participants' operation logs — here the multinomial (3+3+2)!/(3!·3!·2!)
//! = 560 schedules — and drives each through the real pool on three real
//! threads handing the turn over via a condvar turnstile, so the stripe
//! mutex sees genuine cross-thread handoffs at every enumerated point.
//! Eviction *counts* may differ between schedules (eviction is the
//! documented interleaving-dependent escape hatch); safety must not.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use spear_llm::BlockPool;

const CAPACITY: usize = 6;

/// Shared family prefix + per-sequence private tail.
fn chain(seq: u64, len: usize) -> Vec<u64> {
    (0..len as u64)
        .map(|i| if i < 2 { 100 + i } else { seq * 1_000 + i })
        .collect()
}

/// All merge orders of logs with the given per-participant lengths.
fn schedules(lens: &[usize]) -> Vec<Vec<usize>> {
    fn go(remaining: &mut [usize], prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.iter().all(|&r| r == 0) {
            out.push(prefix.clone());
            return;
        }
        for who in 0..remaining.len() {
            if remaining[who] > 0 {
                remaining[who] -= 1;
                prefix.push(who);
                go(remaining, prefix, out);
                prefix.pop();
                remaining[who] += 1;
            }
        }
    }
    let mut out = Vec::new();
    go(&mut lens.to_vec(), &mut Vec::new(), &mut out);
    out
}

struct Turnstile {
    turns: Vec<usize>,
    pos: Mutex<usize>,
    cv: Condvar,
}

impl Turnstile {
    fn new(turns: Vec<usize>) -> Self {
        Self {
            turns,
            pos: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Run `op(step)` at each of `who`'s scheduled turns, in order.
    fn drive(&self, who: usize, mut op: impl FnMut(usize)) {
        let mut step = 0usize;
        loop {
            let mut pos = self.pos.lock().expect("turnstile poisoned");
            while *pos < self.turns.len() && self.turns[*pos] != who {
                pos = self.cv.wait(pos).expect("turnstile poisoned");
            }
            if *pos >= self.turns.len() {
                return;
            }
            drop(pos);
            // Our turn: touch the pool *outside* the turnstile lock so the
            // stripe mutex really arbitrates the handoff.
            op(step);
            step += 1;
            let mut pos = self.pos.lock().expect("turnstile poisoned");
            *pos += 1;
            self.cv.notify_all();
        }
    }
}

/// Shared ground truth of which chains are currently leased. Updated and
/// checked inside each turn (turns are serialized by the turnstile, so a
/// plain mutex-protected map is a faithful observer).
#[derive(Default)]
struct Registry {
    leases: HashMap<u64, usize>,
}

fn check_safety(pool: &BlockPool, registry: &Registry, who: usize, step: usize) {
    assert!(
        pool.live_blocks() <= pool.capacity(),
        "participant {who} step {step}: capacity breached"
    );
    let s = pool.stats();
    assert_eq!(
        s.inserted_blocks - s.evicted_blocks - s.freed_blocks,
        pool.live_blocks() as u64,
        "participant {who} step {step}: counters do not reconcile"
    );
    for (&seq, &len) in &registry.leases {
        assert_eq!(
            pool.peek(&chain(seq, len)),
            len,
            "participant {who} step {step}: pinned path of seq {seq} evicted"
        );
    }
}

#[test]
fn pin_invariant_holds_under_every_allocator_evictor_schedule() {
    // Per-participant logs: allocator `seq` grows a lease in two steps
    // (shared prefix, then a private tail) and then frees it; the evictor
    // fires twice. 2 allocators × 3 ops + 1 evictor × 2 ops = 8 turns.
    let all = schedules(&[3, 3, 2]);
    assert_eq!(all.len(), 560, "(3+3+2)!/(3!·3!·2!) schedules");

    for schedule in all {
        // One stripe: every chain, lease, and eviction contends on the
        // same mutex — the hardest case for the pin discipline.
        let pool = Arc::new(BlockPool::new(CAPACITY, 1));
        let turnstile = Arc::new(Turnstile::new(schedule.clone()));
        let registry = Arc::new(Mutex::new(Registry::default()));

        std::thread::scope(|scope| {
            for who in 0..2usize {
                let pool = Arc::clone(&pool);
                let turnstile = Arc::clone(&turnstile);
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    let seq = who as u64 + 1;
                    turnstile.drive(who, |step| {
                        let mut reg = registry.lock().expect("registry poisoned");
                        match step {
                            0 | 1 => {
                                // Grow the lease: 2 shared blocks, then +2
                                // private ones.
                                let len = (step + 1) * 2;
                                if pool.allocate(seq, &chain(seq, len)).is_ok() {
                                    reg.leases.insert(seq, len);
                                }
                            }
                            _ => {
                                pool.free(seq);
                                reg.leases.remove(&seq);
                            }
                        }
                        check_safety(&pool, &reg, who, step);
                    })
                });
            }
            let pool_e = Arc::clone(&pool);
            let turnstile_e = Arc::clone(&turnstile);
            let registry_e = Arc::clone(&registry);
            scope.spawn(move || {
                turnstile_e.drive(2, |step| {
                    let reg = registry_e.lock().expect("registry poisoned");
                    pool_e.evict_idle(2);
                    check_safety(&pool_e, &reg, 2, step);
                });
            });
        });

        // End state: both sequences freed their leases, so nothing is
        // pinned; whatever survived is evictable cache.
        assert_eq!(pool.pinned_blocks(), 0, "dangling pins under {schedule:?}");
        pool.evict_idle(usize::MAX);
        assert_eq!(
            pool.live_blocks(),
            0,
            "unreachable blocks under {schedule:?}"
        );
        let s = pool.stats();
        assert_eq!(
            s.inserted_blocks,
            s.evicted_blocks + s.freed_blocks,
            "final counters do not reconcile under {schedule:?}"
        );
    }
}

#[test]
fn schedule_enumeration_is_exhaustive_and_unique() {
    let all = schedules(&[2, 2, 1]);
    assert_eq!(all.len(), 30, "5!/(2!·2!·1!)");
    let unique: std::collections::BTreeSet<Vec<usize>> = all.iter().cloned().collect();
    assert_eq!(unique.len(), all.len(), "no duplicate schedules");
    for s in &all {
        assert_eq!(s.iter().filter(|&&w| w == 0).count(), 2);
        assert_eq!(s.iter().filter(|&&w| w == 1).count(), 2);
        assert_eq!(s.iter().filter(|&&w| w == 2).count(), 1);
    }
}
