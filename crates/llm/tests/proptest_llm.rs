//! Property tests for the inference simulator: the radix prefix cache must
//! agree with a brute-force reference model, and the latency model must be
//! monotone in cached tokens.

use std::collections::HashSet;

use proptest::prelude::*;
use spear_llm::{ModelProfile, PrefixCache, Token};

const BLOCK: usize = 4;

/// Reference model: the set of inserted block-aligned prefixes; a lookup
/// returns the longest block-aligned prefix of the query present in the set.
#[derive(Default)]
struct ReferenceCache {
    prefixes: HashSet<Vec<u64>>,
}

impl ReferenceCache {
    fn insert(&mut self, tokens: &[u64]) {
        let full_blocks = tokens.len() / BLOCK;
        for b in 1..=full_blocks {
            self.prefixes.insert(tokens[..b * BLOCK].to_vec());
        }
    }

    fn lookup(&self, tokens: &[u64]) -> usize {
        let full_blocks = tokens.len() / BLOCK;
        (1..=full_blocks)
            .rev()
            .find(|b| self.prefixes.contains(&tokens[..b * BLOCK]))
            .map_or(0, |b| b * BLOCK)
    }
}

fn token_seq() -> impl Strategy<Value = Vec<u64>> {
    // A tiny alphabet maximizes shared prefixes between sequences.
    proptest::collection::vec(0u64..4, 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Without eviction pressure, the radix cache's hit lengths match the
    /// brute-force reference on arbitrary insert/lookup interleavings.
    #[test]
    fn prefix_cache_matches_reference_model(
        ops in proptest::collection::vec((any::<bool>(), token_seq()), 1..40)
    ) {
        let mut cache = PrefixCache::new(BLOCK, 1 << 16);
        let mut reference = ReferenceCache::default();
        for (is_insert, raw) in &ops {
            let tokens: Vec<Token> = raw.iter().map(|&t| Token(t)).collect();
            if *is_insert {
                cache.insert(&tokens);
                reference.insert(raw);
            } else {
                prop_assert_eq!(cache.lookup(&tokens), reference.lookup(raw));
            }
        }
    }

    /// Hit length never exceeds the block-aligned query length, and
    /// lookup-after-insert of the same sequence returns all full blocks.
    #[test]
    fn lookup_bounds(raw in token_seq()) {
        let tokens: Vec<Token> = raw.iter().map(|&t| Token(t)).collect();
        let mut cache = PrefixCache::new(BLOCK, 1 << 16);
        prop_assert_eq!(cache.lookup(&tokens), 0, "cold cache misses");
        cache.insert(&tokens);
        let hit = cache.lookup(&tokens);
        prop_assert_eq!(hit, (raw.len() / BLOCK) * BLOCK);
    }

    /// The latency model is strictly decreasing in cached tokens (at fixed
    /// totals) and strictly increasing in decode tokens, for every
    /// evaluation profile.
    #[test]
    fn latency_monotonicity(
        prompt in 1u64..2000,
        cached_a in 0u64..2000,
        cached_b in 0u64..2000,
        decode in 0u64..500,
    ) {
        let lo = cached_a.min(cached_b).min(prompt);
        let hi = cached_a.max(cached_b).min(prompt);
        prop_assume!(lo < hi);
        for profile in ModelProfile::evaluation_models() {
            let more_cached = profile.latency_us(prompt - hi, hi, decode);
            let less_cached = profile.latency_us(prompt - lo, lo, decode);
            prop_assert!(
                more_cached < less_cached,
                "{}: caching more must be faster",
                profile.name
            );
            let more_decode = profile.latency_us(prompt, 0, decode + 1);
            let base = profile.latency_us(prompt, 0, decode);
            prop_assert!(more_decode > base);
        }
    }

    /// Evicting caches never return hits for sequences they could not
    /// still hold (sanity under pressure: no phantom hits longer than the
    /// query, never a panic).
    #[test]
    fn eviction_pressure_is_safe(
        ops in proptest::collection::vec(token_seq(), 1..30)
    ) {
        let mut cache = PrefixCache::new(BLOCK, 4); // tiny: constant eviction
        for raw in &ops {
            let tokens: Vec<Token> = raw.iter().map(|&t| Token(t)).collect();
            cache.insert(&tokens);
            let hit = cache.lookup(&tokens);
            prop_assert!(hit <= tokens.len());
            prop_assert_eq!(hit % BLOCK, 0, "hits are block-aligned");
            prop_assert!(cache.len_blocks() <= 4 + 1);
        }
    }
}
