//! Property tests for the bounded KV [`BlockPool`]: for *arbitrary*
//! sequences of allocate / release / free / evict operations, the pool's
//! three safety invariants hold after every single step —
//!
//! 1. pinned (leased) blocks are never evicted: every active lease's full
//!    path stays resident;
//! 2. `live_blocks() <= capacity()` at all times;
//! 3. the counters reconcile exactly:
//!    `inserted − evicted − freed == live`.
//!
//! On failure proptest shrinks to a minimal counterexample op sequence.

use std::collections::HashMap;

use proptest::prelude::*;
use spear_llm::BlockPool;

const FAMILIES: u64 = 4;
const MAX_SEQS: u64 = 6;

/// Block hash `i` of family `fam` — sequences of the same family share a
/// physical prefix, which is what makes ref-counting interesting.
fn family_chain(fam: u64, len: usize) -> Vec<u64> {
    (0..len as u64)
        .map(|i| (fam + 1) * 10_000 + i + 1)
        .collect()
}

#[derive(Debug, Clone)]
enum Op {
    /// Allocate (or extend) sequence `seq`'s lease to `len` blocks of
    /// family `fam` (the family is fixed by the sequence's first
    /// allocation; later ones only ever extend the same chain).
    Allocate { seq: u64, fam: u64, len: usize },
    /// Unpin, keeping blocks resident.
    Release { seq: u64 },
    /// Unpin and drop private blocks (preemption).
    Free { seq: u64 },
    /// Background reclamation of up to `n` unpinned blocks.
    EvictIdle { n: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..MAX_SEQS, 0..FAMILIES, 0..10usize)
            .prop_map(|(seq, fam, len)| Op::Allocate { seq, fam, len }),
        2 => (0..MAX_SEQS).prop_map(|seq| Op::Release { seq }),
        2 => (0..MAX_SEQS).prop_map(|seq| Op::Free { seq }),
        1 => (1..6usize).prop_map(|n| Op::EvictIdle { n }),
    ]
}

/// The reference model: which chain each active lease pins.
#[derive(Default)]
struct Model {
    /// `seq -> (family, leased chain length)`.
    leases: HashMap<u64, (u64, usize)>,
}

fn check_invariants(pool: &BlockPool, model: &Model, step: usize, op: &Op) {
    let live = pool.live_blocks();
    assert!(
        live <= pool.capacity(),
        "step {step} ({op:?}): live {live} exceeds capacity {}",
        pool.capacity()
    );
    let s = pool.stats();
    assert_eq!(
        s.inserted_blocks - s.evicted_blocks - s.freed_blocks,
        live as u64,
        "step {step} ({op:?}): counters do not reconcile: {s:?}"
    );
    for (&seq, &(fam, len)) in &model.leases {
        let chain = family_chain(fam, len);
        assert_eq!(
            pool.lease_blocks(seq),
            Some(len),
            "step {step} ({op:?}): lease length drifted for seq {seq}"
        );
        assert_eq!(
            pool.peek(&chain),
            len,
            "step {step} ({op:?}): pinned path of seq {seq} partially evicted"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pool_invariants_hold_for_arbitrary_op_sequences(
        capacity in 2..16usize,
        stripes in 1..3usize,
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let pool = BlockPool::new(capacity, stripes);
        let mut model = Model::default();
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Allocate { seq, fam, len } => {
                    // A sequence's chain is fixed at first allocation;
                    // later allocations extend it (the pool contract).
                    let (fam, len) = match model.leases.get(&seq) {
                        Some(&(held_fam, held_len)) => (held_fam, held_len.max(len)),
                        None => (fam, len),
                    };
                    let chain = family_chain(fam, len);
                    let before_live = pool.live_blocks();
                    let before_stats = pool.stats();
                    match pool.allocate(seq, &chain) {
                        Ok(grant) => {
                            prop_assert_eq!(grant.lease_blocks, len);
                            if len > 0 {
                                model.leases.insert(seq, (fam, len));
                            }
                        }
                        Err(_) => {
                            // Failure must not mutate residency or
                            // pin state (only the failure counters).
                            prop_assert_eq!(pool.live_blocks(), before_live);
                            let after = pool.stats();
                            prop_assert_eq!(
                                after.inserted_blocks,
                                before_stats.inserted_blocks
                            );
                            prop_assert_eq!(
                                after.evicted_blocks,
                                before_stats.evicted_blocks
                            );
                            prop_assert_eq!(
                                after.alloc_failures,
                                before_stats.alloc_failures + 1
                            );
                        }
                    }
                }
                Op::Release { seq } => {
                    pool.release(seq);
                    model.leases.remove(&seq);
                }
                Op::Free { seq } => {
                    pool.free(seq);
                    model.leases.remove(&seq);
                }
                Op::EvictIdle { n } => {
                    pool.evict_idle(n);
                }
            }
            check_invariants(&pool, &model, step, op);
        }
        // Drain every lease: with nothing pinned, evict_idle can take the
        // pool to empty and the counters still reconcile to zero.
        let seqs: Vec<u64> = model.leases.keys().copied().collect();
        for seq in seqs {
            pool.release(seq);
        }
        model.leases.clear();
        pool.evict_idle(usize::MAX);
        prop_assert_eq!(pool.live_blocks(), 0);
        prop_assert_eq!(pool.pinned_blocks(), 0);
        let s = pool.stats();
        prop_assert_eq!(s.inserted_blocks, s.evicted_blocks + s.freed_blocks);
    }
}
