//! Concurrency stress test for the lock-striped prefix cache.
//!
//! Eight threads (one per owner) hammer one [`StripedPrefixCache`] with
//! overlapping prefixes — some shared and pre-warmed, some private
//! extensions — in every interleaving the scheduler cares to produce.
//! The determinism contract says interleaving must be *unobservable*:
//! per-request hit counts and the aggregate [`CacheStats`] must match a
//! single-threaded replay of the same request log exactly.
//!
//! This is the cache-level half of the batch executor's byte-identical
//! trace invariant (`tests/concurrent_batch.rs` is the pipeline-level
//! half).

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use spear_llm::{CacheStats, StripedPrefixCache, Token};

const BLOCK_SIZE: usize = 4;
const NUM_THREADS: usize = 8;
/// Far above the worst-case working set so LRU eviction — the documented
/// escape hatch from the determinism contract — never triggers.
const CAPACITY_BLOCKS: usize = 16 * 1024;
const NUM_SHARDS: usize = 8;

/// One cache request: start from a warm prefix, then diverge.
#[derive(Debug, Clone)]
struct Request {
    /// Index into the warm-prefix pool (modulo its length).
    prefix: usize,
    /// How many whole blocks of the warm prefix to keep.
    keep_blocks: usize,
    /// Private extension appended after the kept prefix.
    extension: Vec<u64>,
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (0usize..8, 0usize..4, vec(0u64..32, 0..16)).prop_map(|(prefix, keep_blocks, extension)| {
        Request {
            prefix,
            keep_blocks,
            extension,
        }
    })
}

/// The full token stream for a request given the warm pool.
fn tokens_of(req: &Request, warm: &[Vec<u64>]) -> Vec<Token> {
    let base = &warm[req.prefix % warm.len()];
    let keep = (req.keep_blocks * BLOCK_SIZE).min(base.len());
    base[..keep]
        .iter()
        .chain(req.extension.iter())
        .map(|&t| Token(t))
        .collect()
}

fn fresh_cache(warm: &[Vec<u64>]) -> StripedPrefixCache {
    let cache = StripedPrefixCache::new(BLOCK_SIZE, CAPACITY_BLOCKS, NUM_SHARDS);
    for prefix in warm {
        let tokens: Vec<Token> = prefix.iter().map(|&t| Token(t)).collect();
        cache.warm(&tokens);
    }
    cache
}

/// Apply each owner's request log on its own thread, all at once.
fn run_concurrent(warm: &[Vec<u64>], logs: &[Vec<Request>]) -> (Vec<Vec<usize>>, CacheStats) {
    let cache = Arc::new(fresh_cache(warm));
    let mut hits: Vec<Vec<usize>> = Vec::with_capacity(logs.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = logs
            .iter()
            .enumerate()
            .map(|(t, log)| {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    let owner = t as u64 + 1;
                    log.iter()
                        .map(|req| cache.lookup_insert(&tokens_of(req, warm), owner))
                        .collect::<Vec<usize>>()
                })
            })
            .collect();
        for handle in handles {
            hits.push(handle.join().expect("worker panicked"));
        }
    });
    (hits, cache.stats())
}

/// Apply the same logs owner-by-owner on one thread.
fn run_sequential(warm: &[Vec<u64>], logs: &[Vec<Request>]) -> (Vec<Vec<usize>>, CacheStats) {
    let cache = fresh_cache(warm);
    let hits = logs
        .iter()
        .enumerate()
        .map(|(t, log)| {
            let owner = t as u64 + 1;
            log.iter()
                .map(|req| cache.lookup_insert(&tokens_of(req, warm), owner))
                .collect()
        })
        .collect();
    (hits, cache.stats())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn concurrent_hits_match_single_threaded_replay(
        warm in vec(vec(0u64..32, 4..20), 1..5),
        logs in vec(vec(request_strategy(), 1..12), NUM_THREADS..(NUM_THREADS + 1)),
    ) {
        let (concurrent_hits, concurrent_stats) = run_concurrent(&warm, &logs);
        let (replay_hits, replay_stats) = run_sequential(&warm, &logs);

        for (owner, (got, want)) in
            concurrent_hits.iter().zip(replay_hits.iter()).enumerate()
        {
            prop_assert_eq!(
                got, want,
                "owner {} saw interleaving-dependent hit counts", owner + 1
            );
        }
        prop_assert_eq!(concurrent_stats, replay_stats);
        prop_assert_eq!(
            concurrent_stats.evicted_blocks, 0,
            "workload must stay under capacity for the contract to apply"
        );
    }

    #[test]
    fn repeated_requests_always_fully_hit(
        warm in vec(vec(0u64..32, 4..20), 1..3),
        req in request_strategy(),
    ) {
        // Sanity for the generator itself: issuing the same stream twice
        // under one owner must hit every whole block the second time
        // (lookup_insert reports cached *tokens*; the partial tail block
        // is never cached).
        let cache = fresh_cache(&warm);
        let tokens = tokens_of(&req, &warm);
        cache.lookup_insert(&tokens, 1);
        let second = cache.lookup_insert(&tokens, 1);
        prop_assert_eq!(second, (tokens.len() / BLOCK_SIZE) * BLOCK_SIZE);
    }
}

/// Deterministic (non-proptest) smoke: heavy contention on a single shared
/// prefix from all threads, many repetitions, so the test exercises real
/// lock contention even when proptest generates sparse workloads.
#[test]
fn contended_shared_prefix_is_interleaving_independent() {
    let warm: Vec<Vec<u64>> = vec![(0..16).collect()];
    let logs: Vec<Vec<Request>> = (0..NUM_THREADS)
        .map(|t| {
            (0..32)
                .map(|i| Request {
                    prefix: 0,
                    keep_blocks: 4,
                    extension: vec![t as u64 * 1000 + i % 3],
                })
                .collect()
        })
        .collect();
    for _ in 0..8 {
        let (concurrent_hits, concurrent_stats) = run_concurrent(&warm, &logs);
        let (replay_hits, replay_stats) = run_sequential(&warm, &logs);
        assert_eq!(concurrent_hits, replay_hits);
        assert_eq!(concurrent_stats, replay_stats);
    }
}
