//! Whole-call generation reuse: a bounded, lock-striped, exact-match
//! output memo with single-flight coalescing (DESIGN.md §15).
//!
//! The prompt-as-data thesis makes this sound: a generation's observable
//! outcome is a pure function of (rendered prompt ⊕ identity class ⊕
//! model ⊕ decode params), so requests that agree on that identity may
//! share one execution. [`GenMemo`] stores the *content-pure* part of a
//! completed generation — output text, confidence, token counts, and the
//! prompt's block-hash chain — and the engine replays per-request state
//! (prefix-cache admission, latency, virtual clock) live on every hit,
//! which is what keeps reuse observably invisible (see
//! `SimLlm::generate_with_reuse`).
//!
//! ## Single flight
//!
//! Concurrent lanes racing on one key coalesce: the first becomes the
//! *leader* and executes; followers block on the shard's condvar and
//! adopt the completed entry. A leader that fails (or panics — the guard
//! is drop-safe) removes its in-flight marker and wakes all followers,
//! one of which becomes the new leader: errors are never cached and
//! never poison the key.
//!
//! ## Eviction
//!
//! Per-shard LRU over *completed* entries only; in-flight markers are
//! pinned (there is nothing to evict yet, and followers hold the key's
//! identity in their stacks). Capacity is split evenly across shards.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard};

use spear_core::llm::FinishReason;

/// Number of lock stripes. Matches the interner's default: enough to keep
/// 8 serving lanes from contending, cheap enough to aggregate.
const NUM_SHARDS: usize = 16;

/// The content-pure result of one generation, keyed by reuse identity.
///
/// Everything here is a function of the request's reuse key alone —
/// nothing depends on cache temperature, clock state, or which lane ran
/// it. Per-request numbers (cached tokens, latency) are deliberately
/// absent: the engine re-derives them live on every hit.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoEntry {
    /// Generated text (post `max_tokens` truncation).
    pub text: String,
    /// Model confidence.
    pub confidence: f64,
    /// Prompt length in tokens.
    pub prompt_tokens: u64,
    /// Completion length in tokens (post truncation).
    pub completion_tokens: u64,
    /// Why decoding stopped.
    pub finish: FinishReason,
    /// FNV block-hash chain of the full prompt-token blocks, as the
    /// prefix cache keys them. Hits replay these through
    /// `StripedPrefixCache::lookup_insert_hashed` so cache state and
    /// stats evolve exactly as if the prompt had been re-tokenized.
    pub block_hashes: Vec<u64>,
}

impl MemoEntry {
    /// Approximate resident size of this entry in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        (self.text.len() + self.block_hashes.len() * 8 + std::mem::size_of::<Self>()) as u64
    }
}

/// Counters over the memo's lifetime, aggregated across shards.
///
/// `hits` and `coalesced_waits` count *physical* events on this host run
/// (a follower that raced a leader, a warm lookup); they are not
/// lane-invariant and are deliberately excluded from serve reports, which
/// derive their reuse ledger from per-request metadata instead.
/// `insertions`/`evictions`/`resident`/`resident_bytes` are functions of
/// the key set alone (single-flight admits one execution per key), so
/// with ample capacity they are deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Completed entries adopted without executing (incl. coalesced
    /// followers).
    pub hits: u64,
    /// Lookups that blocked on an in-flight leader before adopting.
    pub coalesced_waits: u64,
    /// Lookups that became leaders (one per executed generation).
    pub leads: u64,
    /// Entries completed into the memo.
    pub insertions: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Completed entries currently resident.
    pub resident: u64,
    /// Approximate bytes held by resident entries.
    pub resident_bytes: u64,
}

enum Slot {
    /// A leader is executing this key; followers wait on the shard
    /// condvar.
    InFlight,
    /// A completed generation.
    Ready { entry: MemoEntry, last_used: u64 },
}

#[derive(Default)]
struct ShardState {
    slots: HashMap<u64, Slot>,
    tick: u64,
    hits: u64,
    coalesced_waits: u64,
    leads: u64,
    insertions: u64,
    evictions: u64,
    resident_bytes: u64,
}

impl ShardState {
    fn ready_count(&self) -> u64 {
        self.slots
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count() as u64
    }
}

struct Shard {
    state: Mutex<ShardState>,
    woken: Condvar,
}

/// Outcome of [`GenMemo::lookup_or_lead`].
pub enum Lookup<'a> {
    /// A completed entry existed (or a coalesced leader finished while we
    /// waited); adopt it.
    Hit(MemoEntry),
    /// The caller is the leader for this key: execute the generation and
    /// either [`LeadGuard::complete`] it or drop the guard on error.
    Lead(LeadGuard<'a>),
}

/// Leadership of an in-flight key. Dropping the guard without calling
/// [`LeadGuard::complete`] releases waiting followers to elect a new
/// leader — an error path can never poison the memo.
pub struct LeadGuard<'a> {
    memo: &'a GenMemo,
    key: u64,
    done: bool,
}

impl LeadGuard<'_> {
    /// Publish the completed entry and wake all followers.
    pub fn complete(mut self, entry: MemoEntry) {
        self.done = true;
        self.memo.publish(self.key, entry);
    }
}

impl Drop for LeadGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.memo.abandon(self.key);
        }
    }
}

/// A bounded, lock-striped, single-flight exact-match generation memo.
pub struct GenMemo {
    shards: Vec<Shard>,
    capacity_per_shard: usize,
}

impl GenMemo {
    /// A memo bounded at roughly `capacity` completed entries, split
    /// evenly across the lock stripes (each stripe holds at least one).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            shards: (0..NUM_SHARDS)
                .map(|_| Shard {
                    state: Mutex::new(ShardState::default()),
                    woken: Condvar::new(),
                })
                .collect(),
            capacity_per_shard: capacity.div_ceil(NUM_SHARDS).max(1),
        }
    }

    fn shard(&self, key: u64) -> &Shard {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Ignore poisoning: shard state is a plain map + counters, always
    /// internally consistent at every unlock point, and the in-flight
    /// protocol recovers from abandoned leaders by construction.
    fn lock(shard: &Shard) -> MutexGuard<'_, ShardState> {
        match shard.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Look `key` up, coalescing with any in-flight execution.
    ///
    /// Returns [`Lookup::Hit`] with the completed entry, blocking first if
    /// a leader is mid-execution, or [`Lookup::Lead`] making the caller
    /// the leader. The call only blocks while some other thread is
    /// actively executing the same key — the definition of single-flight.
    pub fn lookup_or_lead(&self, key: u64) -> Lookup<'_> {
        let shard = self.shard(key);
        let mut state = Self::lock(shard);
        loop {
            let in_flight = match state.slots.get(&key) {
                Some(Slot::Ready { .. }) => {
                    state.tick += 1;
                    let tick = state.tick;
                    let Some(Slot::Ready { entry, last_used }) = state.slots.get_mut(&key) else {
                        unreachable!("slot checked under the same lock");
                    };
                    *last_used = tick;
                    let entry = entry.clone();
                    state.hits += 1;
                    return Lookup::Hit(entry);
                }
                Some(Slot::InFlight) => true,
                None => false,
            };
            if in_flight {
                state.coalesced_waits += 1;
                state = match shard.woken.wait(state) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                // Loop: the leader either published (Ready → hit) or
                // abandoned (absent → we may lead).
            } else {
                state.slots.insert(key, Slot::InFlight);
                state.leads += 1;
                return Lookup::Lead(LeadGuard {
                    memo: self,
                    key,
                    done: false,
                });
            }
        }
    }

    /// A non-coalescing peek used by tests: `Some` iff a completed entry
    /// is resident (never blocks, never leads, does not touch LRU order).
    #[must_use]
    pub fn peek(&self, key: u64) -> Option<MemoEntry> {
        let state = Self::lock(self.shard(key));
        match state.slots.get(&key) {
            Some(Slot::Ready { entry, .. }) => Some(entry.clone()),
            _ => None,
        }
    }

    fn publish(&self, key: u64, entry: MemoEntry) {
        let shard = self.shard(key);
        let mut state = Self::lock(shard);
        // Evict LRU completed entries to stay within bound; the slot being
        // published replaces an InFlight marker, so resident count grows
        // by one. In-flight markers are pinned.
        while state.ready_count() >= self.capacity_per_shard as u64 {
            let victim = state
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } => Some((*last_used, *k)),
                    Slot::InFlight => None,
                })
                .min();
            let Some((_, victim)) = victim else { break };
            if let Some(Slot::Ready { entry, .. }) = state.slots.remove(&victim) {
                state.resident_bytes -= entry.bytes();
                state.evictions += 1;
            }
        }
        state.tick += 1;
        let tick = state.tick;
        state.resident_bytes += entry.bytes();
        state.insertions += 1;
        state.slots.insert(
            key,
            Slot::Ready {
                entry,
                last_used: tick,
            },
        );
        drop(state);
        shard.woken.notify_all();
    }

    fn abandon(&self, key: u64) {
        let shard = self.shard(key);
        let mut state = Self::lock(shard);
        // Only remove our own in-flight marker: if the slot is Ready some
        // later flight already published (cannot happen while we hold
        // leadership, but stay defensive).
        if matches!(state.slots.get(&key), Some(Slot::InFlight)) {
            state.slots.remove(&key);
        }
        drop(state);
        shard.woken.notify_all();
    }

    /// Lifetime counters, aggregated across shards.
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        let mut out = MemoStats::default();
        for shard in &self.shards {
            let state = Self::lock(shard);
            out.hits += state.hits;
            out.coalesced_waits += state.coalesced_waits;
            out.leads += state.leads;
            out.insertions += state.insertions;
            out.evictions += state.evictions;
            out.resident += state.ready_count();
            out.resident_bytes += state.resident_bytes;
        }
        out
    }

    /// Drop every completed entry (between benchmark configurations).
    /// In-flight markers are left alone; their leaders still own them.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut state = Self::lock(shard);
            state.slots.retain(|_, slot| matches!(slot, Slot::InFlight));
            state.resident_bytes = 0;
        }
    }
}

impl std::fmt::Debug for GenMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenMemo")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier};

    fn entry(text: &str) -> MemoEntry {
        MemoEntry {
            text: text.to_string(),
            confidence: 0.9,
            prompt_tokens: 10,
            completion_tokens: 3,
            finish: FinishReason::Stop,
            block_hashes: vec![1, 2, 3],
        }
    }

    #[test]
    fn lead_then_hit() {
        let memo = GenMemo::new(64);
        match memo.lookup_or_lead(7) {
            Lookup::Lead(guard) => guard.complete(entry("out")),
            Lookup::Hit(_) => panic!("empty memo cannot hit"),
        }
        match memo.lookup_or_lead(7) {
            Lookup::Hit(e) => assert_eq!(e.text, "out"),
            Lookup::Lead(_) => panic!("completed key must hit"),
        }
        let stats = memo.stats();
        assert_eq!(stats.leads, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.resident, 1);
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn abandoned_lead_releases_key_without_caching() {
        let memo = GenMemo::new(64);
        match memo.lookup_or_lead(7) {
            Lookup::Lead(guard) => drop(guard),
            Lookup::Hit(_) => panic!("empty memo cannot hit"),
        }
        assert!(memo.peek(7).is_none(), "errors are never cached");
        // The key is immediately leadable again.
        assert!(matches!(memo.lookup_or_lead(7), Lookup::Lead(_)));
    }

    #[test]
    fn lru_eviction_is_bounded_and_recency_ordered() {
        let memo = GenMemo::new(1); // 1 entry per shard
                                    // Two keys on the same shard: k and k + NUM_SHARDS as u64.
        let (a, b) = (3u64, 3 + NUM_SHARDS as u64);
        for key in [a, b] {
            match memo.lookup_or_lead(key) {
                Lookup::Lead(g) => g.complete(entry(&format!("v{key}"))),
                Lookup::Hit(_) => panic!(),
            }
        }
        assert!(memo.peek(a).is_none(), "oldest entry evicted");
        assert_eq!(memo.peek(b).unwrap().text, format!("v{b}"));
        let stats = memo.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident, 1);
    }

    #[test]
    fn clear_drops_completed_entries() {
        let memo = GenMemo::new(64);
        if let Lookup::Lead(g) = memo.lookup_or_lead(1) {
            g.complete(entry("x"));
        }
        memo.clear();
        assert!(memo.peek(1).is_none());
        assert_eq!(memo.stats().resident, 0);
        assert_eq!(memo.stats().resident_bytes, 0);
    }

    /// Single-flight under racing threads: exactly one execution per key,
    /// every other thread adopts the leader's entry.
    #[test]
    fn racing_lookups_coalesce_to_one_execution() {
        const THREADS: usize = 8;
        let memo = Arc::new(GenMemo::new(64));
        let start = Arc::new(Barrier::new(THREADS));
        let executions = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let memo = Arc::clone(&memo);
            let start = Arc::clone(&start);
            let executions = Arc::clone(&executions);
            handles.push(std::thread::spawn(move || {
                start.wait();
                match memo.lookup_or_lead(42) {
                    Lookup::Hit(e) => e.text,
                    Lookup::Lead(guard) => {
                        executions.fetch_add(1, Ordering::SeqCst);
                        // Give followers time to queue up on the condvar.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        guard.complete(entry("once"));
                        "once".to_string()
                    }
                }
            }));
        }
        for handle in handles {
            assert_eq!(handle.join().unwrap(), "once");
        }
        assert_eq!(executions.load(Ordering::SeqCst), 1, "exactly one leader");
        let stats = memo.stats();
        assert_eq!(stats.leads, 1);
        assert_eq!(stats.hits, THREADS as u64 - 1);
    }

    /// An error-path leader wakes followers, one of which re-leads and
    /// completes; the memo is never poisoned.
    #[test]
    fn failed_leader_hands_off_to_a_follower() {
        const FOLLOWERS: usize = 4;
        let memo = Arc::new(GenMemo::new(64));
        let leader_in = Arc::new(Barrier::new(2));
        let leads = Arc::new(AtomicU64::new(0));

        // Thread A becomes the leader, then fails.
        let failing = {
            let memo = Arc::clone(&memo);
            let leader_in = Arc::clone(&leader_in);
            std::thread::spawn(move || {
                let Lookup::Lead(guard) = memo.lookup_or_lead(9) else {
                    panic!("first flight leads");
                };
                leader_in.wait(); // followers may now pile up
                std::thread::sleep(std::time::Duration::from_millis(20));
                drop(guard); // simulated backend error
            })
        };
        leader_in.wait();
        let mut handles = Vec::new();
        for _ in 0..FOLLOWERS {
            let memo = Arc::clone(&memo);
            let leads = Arc::clone(&leads);
            handles.push(std::thread::spawn(move || match memo.lookup_or_lead(9) {
                Lookup::Hit(e) => e.text,
                Lookup::Lead(guard) => {
                    leads.fetch_add(1, Ordering::SeqCst);
                    guard.complete(entry("recovered"));
                    "recovered".to_string()
                }
            }));
        }
        failing.join().unwrap();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), "recovered");
        }
        assert_eq!(
            leads.load(Ordering::SeqCst),
            1,
            "exactly one follower re-led after the failure"
        );
        assert_eq!(memo.peek(9).unwrap().text, "recovered");
    }
}
