//! The simulated inference engine: a [`spear_core::LlmClient`]
//! implementation combining the tokenizer, the prefix cache, the latency
//! model, and the behavioural task model.
//!
//! ## Structure gates caching
//!
//! By default the engine registers and reuses prefix-cache entries only for
//! requests whose [`PromptIdentity`] is `Structured` — i.e. prompts that
//! came from SPEAR's prompt store or views. Opaque ad-hoc strings bypass
//! the cache. This operationalizes the paper's core claim: a serving layer
//! can only exploit reuse it can *see*, and structured prompt management is
//! what makes reuse visible. (Set
//! [`EngineConfig::cache_opaque_prompts`] to study the counterfactual.)

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spear_core::error::Result;
use spear_core::llm::{
    FinishReason, GenRequest, GenResponse, GenReuse, LlmClient, PromptIdentity, ReusePolicy,
};
use spear_core::metadata::TokenUsage;
use spear_core::scope;
use spear_core::segment::SegmentedText;

use crate::cache::{
    BlockHasher, CacheStats, StripedPrefixCache, DEFAULT_BLOCK_SIZE, DEFAULT_NUM_SHARDS,
};
use crate::clock::SimClock;
use crate::intern::{chain_key, InternStats, InternedChain, TokenInterner, CHAIN_SEED};
use crate::memo::{GenMemo, Lookup, MemoEntry, MemoStats};
use crate::profile::ModelProfile;
use crate::task::{self, TaskParams};
use crate::tokenizer::{StreamingEncoder, Token, Tokenizer};

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Master switch for the prefix cache.
    pub cache_enabled: bool,
    /// Also cache opaque (ad-hoc) prompts — OFF by default; turning it on
    /// simulates a serving stack that hashes raw strings without prompt
    /// identity (used by the cache ablation).
    pub cache_opaque_prompts: bool,
    /// Tokens per cache block.
    pub block_size: usize,
    /// Cache capacity in blocks.
    pub capacity_blocks: usize,
    /// Lock stripes for the prefix cache (shards of the radix tree).
    pub cache_shards: usize,
    /// Run seed for the task model's correctness draws.
    pub seed: u64,
    /// Memoize tokenization and block hashing of shared segment chains
    /// (the host fast path, DESIGN.md §10). Pure host-side optimization:
    /// responses are byte-identical with it on or off.
    pub intern_enabled: bool,
    /// Capacity (completed entries) of the whole-call generation memo
    /// consulted under [`spear_core::llm::ReusePolicy::Exact`]
    /// (DESIGN.md §15). The memo is always constructed; requests only
    /// touch it when their execution state opts in, so the default policy
    /// pays nothing.
    pub reuse_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            cache_enabled: true,
            cache_opaque_prompts: false,
            block_size: DEFAULT_BLOCK_SIZE,
            capacity_blocks: 64 * 1024,
            cache_shards: DEFAULT_NUM_SHARDS,
            seed: 42,
            intern_enabled: true,
            reuse_capacity: 8192,
        }
    }
}

/// The simulated LLM.
pub struct SimLlm {
    profile: ModelProfile,
    tokenizer: Tokenizer,
    cache: StripedPrefixCache,
    interner: TokenInterner,
    memo: GenMemo,
    clock: SimClock,
    config: EngineConfig,
}

/// Per-thread reusable prefill buffers: after the first few requests on a
/// thread, tokenizing and block-hashing a prompt allocates nothing.
struct Scratch {
    tokens: Vec<Token>,
    hashes: Vec<u64>,
    keys: Vec<u64>,
    encoder: StreamingEncoder,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch {
        tokens: Vec::new(),
        hashes: Vec::new(),
        keys: Vec::new(),
        encoder: StreamingEncoder::new(),
    });
}

/// Owner ids handed to requests inside [`SimLlm::submit_many`]. The high
/// bit keeps them disjoint from [`spear_core::batch::BatchRunner`]'s
/// owner sequence, so batch pipelines and direct engine batches never
/// alias each other's private cache state.
const SUBMIT_OWNER_BASE: u64 = 1 << 63;
static SUBMIT_OWNER_SEQ: AtomicU64 = AtomicU64::new(0);

impl SimLlm {
    /// Engine with default config.
    #[must_use]
    pub fn new(profile: ModelProfile) -> Self {
        Self::with_config(profile, EngineConfig::default())
    }

    /// Engine with explicit config.
    #[must_use]
    pub fn with_config(profile: ModelProfile, config: EngineConfig) -> Self {
        Self {
            profile,
            tokenizer: Tokenizer::new(),
            cache: StripedPrefixCache::new(
                config.block_size,
                config.capacity_blocks,
                config.cache_shards,
            ),
            interner: TokenInterner::with_defaults(),
            memo: GenMemo::new(config.reuse_capacity),
            clock: SimClock::new(),
            config,
        }
    }

    /// The model profile.
    #[must_use]
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// The virtual clock (total simulated busy time of this engine).
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Prefix-cache statistics, aggregated across all lock stripes.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drop all cached blocks (between benchmark configurations).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Pre-register a prompt's blocks, simulating a prior pipeline run that
    /// left the view's rendered prefix resident (Table 3's setting: the
    /// base view V had already executed).
    pub fn warm(&self, text: &str) {
        if self.config.cache_enabled {
            let tokens = self.tokenizer.encode(text);
            self.cache.warm(&tokens);
        }
    }

    /// Token-interner statistics (the host fast path's memoization layer).
    #[must_use]
    pub fn interner_stats(&self) -> InternStats {
        self.interner.stats()
    }

    /// Generation-reuse memo statistics (DESIGN.md §15). Physical host
    /// counters — serve reports derive their lane-invariant reuse ledger
    /// from per-request metadata instead, and only use the deterministic
    /// subset of these (insertions, evictions, resident bytes).
    #[must_use]
    pub fn reuse_stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Pre-resolve a prompt family's shared prefix through the token
    /// interner: tokenize `segments` and intern the leading literal-run
    /// chains so the first real request of the family starts warm. Used by
    /// the serving layer when it specializes a compiled program for an
    /// affinity group.
    ///
    /// Only host-side memoization state is touched — the prefix cache and
    /// every response-visible number (tokens, hits, latency) are left
    /// alone, so specialization is observably invisible to traces and
    /// fingerprints.
    pub fn preresolve(&self, segments: &SegmentedText) {
        if !self.config.intern_enabled || segments.segments().is_empty() {
            return;
        }
        SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            // `cacheable: false` keeps the prefix cache untouched; interning
            // happens regardless because it is keyed by content alone.
            let _ = self.segmented_prefill(segments, false, scratch);
        });
    }

    fn cacheable(&self, identity: &PromptIdentity) -> bool {
        self.config.cache_enabled
            && (matches!(identity, PromptIdentity::Structured { .. })
                || self.config.cache_opaque_prompts)
    }

    /// Tokenize the prompt, consult the prefix cache, and return
    /// `(prompt_tokens, cached_tokens)`.
    ///
    /// Requests that arrive with a segmented rendering take the interned
    /// fast path; everything else re-derives tokens from the flat string.
    /// Both paths produce identical numbers — the fast path is proven
    /// equivalent by the streaming-encoder and hashed-cache interop tests
    /// plus the segmented-encoding property test.
    fn prefill(&self, request: &GenRequest) -> (u64, u64) {
        self.prefill_capturing(request, None)
    }

    /// [`Self::prefill`], optionally copying the prompt's full-block
    /// hash chain into `capture` — the content-pure identity the
    /// generation memo stores so later hits can replay cache admission
    /// without re-tokenizing (see [`Self::generate_with_reuse`]).
    fn prefill_capturing(
        &self,
        request: &GenRequest,
        capture: Option<&mut Vec<u64>>,
    ) -> (u64, u64) {
        let cacheable = self.cacheable(&request.identity);
        let (prompt_tokens, cached_tokens) = SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            let counts = match &request.segments {
                Some(segments) if self.config.intern_enabled && !segments.is_empty() => {
                    self.segmented_prefill(segments, cacheable, scratch)
                }
                _ => self.whole_text_prefill(&request.text, cacheable, scratch, capture.is_some()),
            };
            if let Some(out) = capture {
                // Both paths leave the full-block chain in scratch.hashes
                // (the segmented path always, the flat path on demand).
                out.clear();
                out.extend_from_slice(&scratch.hashes);
            }
            counts
        });
        debug_assert_eq!(
            prompt_tokens,
            self.tokenizer.count(&request.text) as u64,
            "prefill paths must agree on the token count"
        );
        (prompt_tokens, cached_tokens)
    }

    /// The original prefill: encode the flat text (into a reused buffer)
    /// and walk the cache by tokens. `hash` additionally folds the token
    /// stream through a [`BlockHasher`] into `scratch.hashes` (the memo's
    /// leader path needs the chain; plain generation skips the work).
    fn whole_text_prefill(
        &self,
        text: &str,
        cacheable: bool,
        scratch: &mut Scratch,
        hash: bool,
    ) -> (u64, u64) {
        self.tokenizer.encode_into(text, &mut scratch.tokens);
        let prompt_tokens = scratch.tokens.len() as u64;
        if hash {
            scratch.hashes.clear();
            let mut hasher = BlockHasher::new(self.config.block_size);
            for &t in &scratch.tokens {
                hasher.push(t, &mut scratch.hashes);
            }
        }
        let cached = if cacheable {
            // The owner comes from the ambient execution scope: pipeline
            // instances under a BatchRunner each see shared (pre-warmed)
            // blocks plus their own insert history, which keeps this hit
            // count independent of concurrent interleaving. Outside any
            // scope the owner is ambient and all blocks are shared —
            // exactly the original single-threaded semantics.
            self.cache.lookup_insert(&scratch.tokens, scope::owner()) as u64
        } else {
            0
        };
        (prompt_tokens, cached)
    }

    /// The host fast path: resume tokenization and block hashing from the
    /// longest interned literal-segment chain, so a warm prompt-family
    /// prefix costs O(suffix) per request instead of O(prompt).
    fn segmented_prefill(
        &self,
        segments: &SegmentedText,
        cacheable: bool,
        scratch: &mut Scratch,
    ) -> (u64, u64) {
        let segs = segments.segments();
        let bs = self.config.block_size;

        // Chain keys over the leading literal run — the only prefixes
        // whose tokenization recurs across requests of a prompt family.
        let literal_run = segs.iter().take_while(|s| s.is_literal()).count();
        scratch.keys.clear();
        let mut key = CHAIN_SEED;
        for seg in &segs[..literal_run] {
            key = chain_key(key, seg.hash());
            scratch.keys.push(key);
        }

        // Longest interned chain wins.
        let mut base: Option<(usize, InternedChain)> = None;
        for i in (0..literal_run).rev() {
            if let Some(chain) = self.interner.get(scratch.keys[i]) {
                base = Some((i + 1, chain));
                break;
            }
        }
        let (covered, base_tokens, base_hashes, base_pending): (usize, &[Token], &[u64], &str) =
            match &base {
                Some((covered, chain)) => {
                    (*covered, &chain.tokens, &chain.block_hashes, &chain.pending)
                }
                None => (0, &[], &[], ""),
            };

        // Resume the block-hash chain: interned full-block hashes, then the
        // straddling partial block's tokens re-folded into the hasher state.
        scratch.tokens.clear();
        scratch.hashes.clear();
        scratch.hashes.extend_from_slice(base_hashes);
        let mut hasher = BlockHasher::new(bs);
        for &t in &base_tokens[base_hashes.len() * bs..] {
            hasher.push(t, &mut scratch.hashes);
        }

        // Resume the encoder mid-word and feed the remaining segments.
        // `scratch.tokens` holds only suffix tokens — the interned prefix is
        // never copied per request.
        scratch.encoder.reset(base_pending);
        let mut hashed_upto = 0usize;
        for (i, seg) in segs.iter().enumerate().skip(covered) {
            scratch.encoder.feed(seg.text(), &mut scratch.tokens);
            for &t in &scratch.tokens[hashed_upto..] {
                hasher.push(t, &mut scratch.hashes);
            }
            hashed_upto = scratch.tokens.len();
            if i < literal_run {
                // Cold literal chain: memoize it for every later request
                // sharing this prefix. Allocation happens only here, once
                // per distinct chain per process.
                let mut tokens: Vec<Token> =
                    Vec::with_capacity(base_tokens.len() + scratch.tokens.len());
                tokens.extend_from_slice(base_tokens);
                tokens.extend_from_slice(&scratch.tokens);
                self.interner.insert(
                    scratch.keys[i],
                    InternedChain {
                        tokens: tokens.into(),
                        pending: Arc::from(scratch.encoder.pending()),
                        block_hashes: scratch.hashes.clone().into(),
                    },
                );
            }
        }
        let flushed = scratch.tokens.len();
        scratch.encoder.finish(&mut scratch.tokens);
        for &t in &scratch.tokens[flushed..] {
            hasher.push(t, &mut scratch.hashes);
        }

        let total_tokens = base_tokens.len() + scratch.tokens.len();
        let cached = if cacheable {
            self.cache
                .lookup_insert_hashed(&scratch.hashes, total_tokens, scope::owner())
                as u64
        } else {
            0
        };
        (total_tokens as u64, cached)
    }
}

impl SimLlm {
    /// Fraction of the per-request overhead each batched request still pays
    /// (scheduling/sampling are amortized under continuous batching, but
    /// not free).
    pub const BATCH_MARGINAL_OVERHEAD: f64 = 0.1;

    /// Run several requests as one continuously batched submission.
    ///
    /// Models vLLM-style continuous batching: the full request overhead is
    /// paid once per batch; every subsequent request pays only
    /// [`Self::BATCH_MARGINAL_OVERHEAD`] of it. Token costs are unchanged,
    /// and requests are admitted in order, so later requests hit prefix
    /// blocks that earlier ones inserted — which is why "batched tasks with
    /// shared scaffolds" (paper §5) benefit twice: amortized overhead *and*
    /// intra-batch prefix reuse.
    ///
    /// Each response's `latency` is that request's marginal contribution;
    /// the virtual clock advances by the batch total.
    ///
    /// # Errors
    ///
    /// Propagates the first failing request.
    pub fn generate_batch(
        &self,
        requests: &[GenRequest],
    ) -> spear_core::error::Result<Vec<GenResponse>> {
        let mut out = Vec::with_capacity(requests.len());
        for (i, request) in requests.iter().enumerate() {
            let mut response = self.generate(request)?;
            if i > 0 {
                let discount =
                    self.profile.request_overhead_us * (1.0 - Self::BATCH_MARGINAL_OVERHEAD);
                let discounted = response
                    .latency
                    .saturating_sub(std::time::Duration::from_micros(discount as u64));
                // generate() already advanced the clock by the full
                // latency; take the amortized part back.
                self.clock
                    .advance_signed_rollback(response.latency, discounted);
                response.latency = discounted;
            }
            out.push(response);
        }
        Ok(out)
    }

    /// Submit many independent requests across a worker pool, returning
    /// responses in submission order.
    ///
    /// This is the engine-level parallel entry point (the pipeline-level
    /// one is `spear_core::batch::BatchRunner`). Requests are striped
    /// across `workers` std threads statically (worker `w` runs requests
    /// `w, w+W, …`), each request under its own fresh cache owner, so for
    /// a fixed request list the responses — including cached-token counts
    /// and latencies — are byte-identical at any worker count:
    /// every request sees exactly the pre-warmed shared blocks (see
    /// [`Self::warm`]) plus nothing else.
    ///
    /// The trade-off is that requests inside one `submit_many` call do
    /// not serve each other's freshly inserted prefixes; warm shared
    /// scaffolds first when cross-request reuse matters. Use
    /// [`Self::generate_batch`] for continuous-batching semantics
    /// (sequential, amortized overhead, intra-batch reuse).
    ///
    /// # Errors
    ///
    /// Propagates the failure of the earliest-submitted failing request.
    pub fn submit_many(&self, requests: &[GenRequest], workers: usize) -> Result<Vec<GenResponse>> {
        let n = requests.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = workers.max(1).min(n);
        let owner_base =
            SUBMIT_OWNER_BASE | SUBMIT_OWNER_SEQ.fetch_add(n as u64, Ordering::Relaxed);
        let mut slots: Vec<Option<Result<GenResponse>>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|lane| {
                    s.spawn(move || {
                        let mut produced = Vec::new();
                        let mut index = lane;
                        while index < n {
                            let _scope = scope::enter(owner_base + index as u64, lane);
                            produced.push((index, self.generate(&requests[index])));
                            index += workers;
                        }
                        produced
                    })
                })
                .collect();
            for handle in handles {
                for (index, result) in handle.join().expect("submit worker panicked") {
                    slots[index] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every request index is assigned exactly once"))
            .collect()
    }
}

impl SimLlm {
    /// Everything after prefill: the behavioural task model, `max_tokens`
    /// truncation, the latency model, and the clock advance. Pure in the
    /// request given fixed engine config — only prefill depends on live
    /// cache state, which is why the reuse memo stores this part's output
    /// and replays prefill accounting live.
    fn decode(&self, request: &GenRequest, prompt_tokens: u64, cached_tokens: u64) -> GenResponse {
        let structured = matches!(request.identity, PromptIdentity::Structured { .. });
        let mut outcome = task::detect_and_run(
            request.options.task.as_deref(),
            &request.text,
            &TaskParams {
                profile: &self.profile,
                structured_identity: structured,
                seed: self.config.seed,
            },
        );

        // Enforce max_tokens on the output.
        let mut completion_tokens = self.tokenizer.count(&outcome.text) as u64;
        let mut finish = FinishReason::Stop;
        let max = u64::from(request.options.max_tokens);
        if completion_tokens > max {
            // Truncate at a word boundary approximately proportional to the
            // token budget.
            let words: Vec<&str> = outcome.text.split_whitespace().collect();
            let keep = (words.len() as u64 * max / completion_tokens.max(1)) as usize;
            let keep = keep.min(words.len());
            // Whitespace separates tokens without emitting any, so the
            // count of the re-joined truncated text is the sum of the
            // per-word counts — no second tokenization pass over the join.
            completion_tokens = words[..keep]
                .iter()
                .map(|w| self.tokenizer.count(w) as u64)
                .sum();
            outcome.text = words[..keep].join(" ");
            finish = FinishReason::Length;
        }

        let latency_us = self.profile.latency_us(
            prompt_tokens - cached_tokens,
            cached_tokens,
            completion_tokens,
        );
        let latency = std::time::Duration::from_micros(latency_us as u64);
        self.clock.advance(latency);

        GenResponse {
            text: outcome.text,
            confidence: outcome.confidence,
            usage: TokenUsage {
                prompt_tokens,
                cached_tokens,
                completion_tokens,
            },
            latency,
            model: self.profile.name.clone(),
            finish,
        }
    }

    /// The memo key of `request`: a chain-key fold over everything the
    /// response observably depends on — the rendered content (segment-hash
    /// chain when a segmented rendering exists, a tagged hash of the flat
    /// text otherwise; the two keyspaces are disjoint, so a prompt that
    /// arrives both ways executes twice rather than ever aliasing), the
    /// identity class (structured vs opaque feeds the task model and the
    /// cacheability gate), and the decode parameters. Engine-fixed inputs
    /// (model, seed, config) need no folding: the memo lives inside one
    /// engine.
    fn reuse_key(&self, request: &GenRequest) -> u64 {
        const SEGMENTED_TAG: u64 = 0x7365_676d;
        const FLAT_TAG: u64 = 0x666c_6174;
        let mut key = match &request.segments {
            Some(segments) if !segments.is_empty() => {
                let mut key = chain_key(CHAIN_SEED, SEGMENTED_TAG);
                for seg in segments.segments() {
                    key = chain_key(key, seg.hash());
                }
                key
            }
            _ => chain_key(
                chain_key(CHAIN_SEED, FLAT_TAG),
                spear_kv::shard::fnv1a(request.text.as_bytes()),
            ),
        };
        key = chain_key(
            key,
            u64::from(matches!(
                request.identity,
                PromptIdentity::Structured { .. }
            )),
        );
        key = chain_key(key, u64::from(request.options.max_tokens));
        key = chain_key(key, request.options.temperature.to_bits());
        key = chain_key(
            key,
            request
                .options
                .task
                .as_deref()
                .map_or(0, |t| spear_kv::shard::fnv1a(t.as_bytes())),
        );
        key
    }

    /// Serve a memo hit: adopt the entry's content-pure outputs and
    /// *replay* the per-request state transitions a real execution would
    /// have performed — the exact prefix-cache admission (`cached_tokens`,
    /// LRU touches, stats) via the entry's block-hash chain, the latency
    /// model over the live hit count, and the clock advance. The response
    /// is byte-identical to re-executing; only tokenization and the task
    /// model are skipped.
    fn replay(&self, request: &GenRequest, entry: &MemoEntry) -> GenResponse {
        let cached_tokens = if self.cacheable(&request.identity) {
            self.cache.lookup_insert_hashed(
                &entry.block_hashes,
                entry.prompt_tokens as usize,
                scope::owner(),
            ) as u64
        } else {
            0
        };
        let latency_us = self.profile.latency_us(
            entry.prompt_tokens - cached_tokens,
            cached_tokens,
            entry.completion_tokens,
        );
        let latency = std::time::Duration::from_micros(latency_us as u64);
        self.clock.advance(latency);
        GenResponse {
            text: entry.text.clone(),
            confidence: entry.confidence,
            usage: TokenUsage {
                prompt_tokens: entry.prompt_tokens,
                cached_tokens,
                completion_tokens: entry.completion_tokens,
            },
            latency,
            model: self.profile.name.clone(),
            finish: entry.finish,
        }
    }
}

impl LlmClient for SimLlm {
    fn generate(&self, request: &GenRequest) -> Result<GenResponse> {
        let (prompt_tokens, cached_tokens) = self.prefill(request);
        Ok(self.decode(request, prompt_tokens, cached_tokens))
    }

    fn generate_with_reuse(
        &self,
        request: &GenRequest,
        policy: ReusePolicy,
    ) -> Result<(GenResponse, Option<GenReuse>)> {
        if policy == ReusePolicy::Off {
            return self.generate(request).map(|response| (response, None));
        }
        let key = self.reuse_key(request);
        match self.memo.lookup_or_lead(key) {
            Lookup::Hit(entry) => Ok((
                self.replay(request, &entry),
                Some(GenReuse { key, reused: true }),
            )),
            Lookup::Lead(guard) => {
                // Leader: execute for real, capturing the block-hash chain
                // so hits can replay admission. The guard is drop-safe —
                // if decode ever grew an error path, followers would be
                // released to retry rather than adopt a poisoned slot.
                let mut block_hashes = Vec::new();
                let (prompt_tokens, cached_tokens) =
                    self.prefill_capturing(request, Some(&mut block_hashes));
                let response = self.decode(request, prompt_tokens, cached_tokens);
                guard.complete(MemoEntry {
                    text: response.text.clone(),
                    confidence: response.confidence,
                    prompt_tokens,
                    completion_tokens: response.usage.completion_tokens,
                    finish: response.finish,
                    block_hashes,
                });
                Ok((response, Some(GenReuse { key, reused: false })))
            }
        }
    }

    fn model_name(&self) -> &str {
        &self.profile.name
    }
}

impl std::fmt::Debug for SimLlm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimLlm")
            .field("model", &self.profile.name)
            .field("cache_enabled", &self.config.cache_enabled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_core::llm::GenOptions;

    fn engine() -> SimLlm {
        SimLlm::new(ModelProfile::qwen25_7b_instruct())
    }

    fn long_instruction() -> String {
        "Classify the sentiment of the following tweet as positive or negative, \
         considering tone, sarcasm, emphasis, and context. Respond with exactly \
         one word and respect a word limit of one. "
            .repeat(8)
    }

    #[test]
    fn structured_requests_hit_cache_on_repeat() {
        let e = engine();
        let text = format!("{}Tweet: awful homework tonight", long_instruction());
        let req = GenRequest::structured(text, "view:v@1#0/v1");
        let first = e.generate(&req).unwrap();
        let second = e.generate(&req).unwrap();
        assert_eq!(first.usage.cached_tokens, 0);
        assert!(second.usage.cached_tokens > 0);
        assert!(second.latency < first.latency);
        assert_eq!(first.text, second.text, "behaviour is cache-independent");
        assert_eq!(first.confidence, second.confidence);
    }

    #[test]
    fn opaque_requests_bypass_cache_by_default() {
        let e = engine();
        let text = format!("{}Tweet: awful homework tonight", long_instruction());
        let req = GenRequest::opaque(text);
        e.generate(&req).unwrap();
        let second = e.generate(&req).unwrap();
        assert_eq!(second.usage.cached_tokens, 0);
        assert_eq!(e.cache_stats().lookups, 0);
    }

    #[test]
    fn cache_opaque_config_flips_the_gate() {
        let e = SimLlm::with_config(
            ModelProfile::qwen25_7b_instruct(),
            EngineConfig {
                cache_opaque_prompts: true,
                ..EngineConfig::default()
            },
        );
        let req = GenRequest::opaque(format!("{}Tweet: x", long_instruction()));
        e.generate(&req).unwrap();
        let second = e.generate(&req).unwrap();
        assert!(second.usage.cached_tokens > 0);
    }

    #[test]
    fn warm_preloads_the_view_prefix() {
        let e = engine();
        let instruction = long_instruction();
        e.warm(&instruction);
        let req = GenRequest::structured(
            format!("{instruction}Tweet: ruined my day"),
            "view:v@1#0/v1",
        );
        let first = e.generate(&req).unwrap();
        let hit_rate = first.usage.cache_hit_rate().unwrap();
        assert!(hit_rate > 0.85, "first call already warm: {hit_rate}");
    }

    #[test]
    fn shared_view_prefix_hits_across_different_tweets() {
        let e = engine();
        let instruction = long_instruction();
        e.warm(&instruction);
        let mut rates = Vec::new();
        for tweet in ["great sunshine", "horrible exam", "boring meeting ugh"] {
            let req =
                GenRequest::structured(format!("{instruction}Tweet: {tweet}"), "view:v@1#0/v1");
            rates.push(e.generate(&req).unwrap().usage.cache_hit_rate().unwrap());
        }
        assert!(rates.iter().all(|r| *r > 0.8), "{rates:?}");
    }

    #[test]
    fn latency_model_matches_profile() {
        let e = engine();
        let req = GenRequest::opaque("Classify the sentiment.\nTweet: i hate rain");
        let resp = e.generate(&req).unwrap();
        let expected =
            e.profile()
                .latency_us(resp.usage.prompt_tokens, 0, resp.usage.completion_tokens);
        assert_eq!(resp.latency.as_micros() as u64, expected as u64);
        assert_eq!(e.clock().elapsed(), resp.latency);
    }

    #[test]
    fn max_tokens_truncates_with_length_finish() {
        let e = engine();
        let req = GenRequest {
            text: "Summarize. \nTweet: one two three four five six seven eight nine ten"
                .to_string(),
            identity: PromptIdentity::Opaque,
            options: GenOptions {
                max_tokens: 3,
                ..GenOptions::default()
            },
            segments: None,
        };
        let resp = e.generate(&req).unwrap();
        assert!(resp.usage.completion_tokens <= 3);
        assert_eq!(resp.finish, FinishReason::Length);
    }

    #[test]
    fn clear_cache_resets_reuse() {
        let e = engine();
        let req =
            GenRequest::structured(format!("{}Tweet: x", long_instruction()), "view:v@1#0/v1");
        e.generate(&req).unwrap();
        e.clear_cache();
        let resp = e.generate(&req).unwrap();
        assert_eq!(resp.usage.cached_tokens, 0);
    }

    #[test]
    fn batching_amortizes_overhead_and_shares_the_cache() {
        let instruction = long_instruction();
        let requests: Vec<GenRequest> = (0..8)
            .map(|i| {
                GenRequest::structured(
                    format!("{instruction}Tweet: batched item number {i}"),
                    "view:batch@1#0/v1",
                )
            })
            .collect();

        let unbatched = SimLlm::new(ModelProfile::qwen25_7b_instruct());
        let mut unbatched_total = std::time::Duration::ZERO;
        for r in &requests {
            unbatched_total += unbatched.generate(r).unwrap().latency;
        }

        let batched = SimLlm::new(ModelProfile::qwen25_7b_instruct());
        let responses = batched.generate_batch(&requests).unwrap();
        let batched_total: std::time::Duration = responses.iter().map(|r| r.latency).sum();

        // 7 amortized overheads at 90% discount.
        let expected_saving =
            7.0 * batched.profile().request_overhead_us * (1.0 - SimLlm::BATCH_MARGINAL_OVERHEAD)
                / 1e6;
        let saving = unbatched_total.as_secs_f64() - batched_total.as_secs_f64();
        assert!(
            (saving - expected_saving).abs() < 1e-3,
            "saving {saving} vs expected {expected_saving}"
        );
        // The clock agrees with the summed marginal latencies.
        assert_eq!(batched.clock().elapsed(), batched_total);
        // Intra-batch prefix reuse: every request after the first hits the
        // shared instruction prefix.
        for r in &responses[1..] {
            assert!(r.usage.cached_tokens > 0);
        }
        // Behaviour is identical to unbatched execution.
        assert_eq!(
            responses[3].text,
            unbatched.generate(&requests[3]).unwrap().text
        );
    }

    #[test]
    fn singleton_and_empty_batches_are_trivial() {
        let e = engine();
        assert!(e.generate_batch(&[]).unwrap().is_empty());
        let req = GenRequest::structured("Classify.\nTweet: x", "view:v@1#0/v1");
        let single = e.generate_batch(std::slice::from_ref(&req)).unwrap();
        assert_eq!(single.len(), 1);
        let fresh = engine();
        assert_eq!(
            single[0].latency,
            fresh.generate(&req).unwrap().latency,
            "a singleton batch pays full overhead"
        );
    }

    fn batch_requests(n: usize) -> Vec<GenRequest> {
        let instruction = long_instruction();
        (0..n)
            .map(|i| {
                GenRequest::structured(
                    format!("{instruction}Tweet: submitted item number {i}"),
                    "view:batch@1#0/v1",
                )
            })
            .collect()
    }

    #[test]
    fn submit_many_keeps_submission_order() {
        let e = engine();
        let responses = e.submit_many(&batch_requests(12), 4).unwrap();
        assert_eq!(responses.len(), 12);
        let serial = engine();
        for (i, r) in responses.iter().enumerate() {
            let expected = serial.generate(&batch_requests(12)[i]).unwrap();
            assert_eq!(r.text, expected.text, "slot {i} holds request {i}'s output");
        }
    }

    #[test]
    fn submit_many_is_deterministic_across_worker_counts() {
        let run = |workers: usize| -> Vec<String> {
            let e = engine();
            e.warm(&long_instruction());
            e.submit_many(&batch_requests(16), workers)
                .unwrap()
                .iter()
                .map(|r| {
                    format!(
                        "{}|{}|{}|{}",
                        r.text,
                        r.usage.cached_tokens,
                        r.latency.as_micros(),
                        r.confidence
                    )
                })
                .collect()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn submit_many_sees_warm_blocks_but_isolates_requests() {
        let e = engine();
        e.warm(&long_instruction());
        let responses = e.submit_many(&batch_requests(6), 3).unwrap();
        for r in &responses {
            let rate = r.usage.cache_hit_rate().unwrap();
            assert!(rate > 0.8, "warm instruction prefix is shared: {rate}");
        }
        // Repeating the same call does not inherit the first call's
        // private insertions: hit rates are identical, not higher.
        let again = e.submit_many(&batch_requests(6), 3).unwrap();
        for (a, b) in responses.iter().zip(&again) {
            assert_eq!(a.usage.cached_tokens, b.usage.cached_tokens);
        }
    }

    #[test]
    fn submit_many_on_empty_input_is_a_no_op() {
        // Regression: an empty submission must return an empty result
        // without spawning workers, burning owner ids, or touching the
        // clock or cache.
        let e = engine();
        for workers in [0, 1, 4] {
            let responses = e.submit_many(&[], workers).unwrap();
            assert!(responses.is_empty());
        }
        assert_eq!(e.clock().elapsed(), std::time::Duration::ZERO);
        assert_eq!(e.cache_stats().lookups, 0);
    }

    #[test]
    fn submit_many_splits_clock_lanes() {
        let e = engine();
        let responses = e.submit_many(&batch_requests(8), 4).unwrap();
        let total: std::time::Duration = responses.iter().map(|r| r.latency).sum();
        assert_eq!(e.clock().elapsed(), total, "lanes sum to aggregate time");
        let makespan = e.clock().max_lane_elapsed();
        assert!(makespan < total, "parallel makespan beats serial total");
        assert!(makespan * 4 >= total, "4 lanes can be at most 4x faster");
    }

    fn segmented_request(instruction: &Arc<str>, item: &str) -> GenRequest {
        let mut segments = SegmentedText::new();
        segments.push_segment(spear_core::segment::TextSegment::from_shared(
            Arc::clone(instruction),
            spear_kv::shard::fnv1a(instruction.as_bytes()),
        ));
        segments.push(item.to_string());
        GenRequest::structured(segments.join(), "view:v@1#0/v1").with_segments(segments)
    }

    #[test]
    fn segmented_fast_path_is_observably_identical() {
        let instruction: Arc<str> = Arc::from(long_instruction());
        let fast = engine();
        let flat = engine();
        for item in [
            "Tweet: awful homework tonight",
            "Tweet: great sunshine",
            "Tweet: awful homework tonight",
        ] {
            let seg_req = segmented_request(&instruction, item);
            let flat_req = GenRequest::structured(seg_req.text.clone(), "view:v@1#0/v1");
            assert_eq!(
                fast.generate(&seg_req).unwrap(),
                flat.generate(&flat_req).unwrap(),
                "fast path must be invisible for {item:?}"
            );
        }
        let stats = fast.interner_stats();
        assert_eq!(stats.insertions, 1, "one literal chain interned: {stats:?}");
        assert!(
            stats.hits >= 2,
            "later requests resume from the interned chain: {stats:?}"
        );
        assert_eq!(
            flat.interner_stats().insertions,
            0,
            "flat requests never intern"
        );
    }

    #[test]
    fn disabling_the_interner_changes_nothing_observable() {
        let instruction: Arc<str> = Arc::from(long_instruction());
        let on = engine();
        let off = SimLlm::with_config(
            ModelProfile::qwen25_7b_instruct(),
            EngineConfig {
                intern_enabled: false,
                ..EngineConfig::default()
            },
        );
        for item in ["Tweet: a bad exam", "Tweet: b", "Tweet: a bad exam"] {
            let req = segmented_request(&instruction, item);
            assert_eq!(on.generate(&req).unwrap(), off.generate(&req).unwrap());
        }
        assert_eq!(off.interner_stats().insertions, 0);
        assert!(on.interner_stats().hits >= 1);
    }

    #[test]
    fn truncated_completion_count_is_exact_and_pinned() {
        // 10 words, two of them 7 chars (= 2 chunks), so the full output
        // counts 12 tokens; max_tokens 5 keeps 10*5/12 = 4 words whose
        // chunk counts sum to 5.
        let e = engine();
        let req = GenRequest {
            text: "Summarize. Use at most 40 words.\nTweet: alpha bravo charlie delta \
                   echo foxtrot golf hotel india juliet"
                .to_string(),
            identity: PromptIdentity::Opaque,
            options: GenOptions {
                max_tokens: 5,
                ..GenOptions::default()
            },
            segments: None,
        };
        let resp = e.generate(&req).unwrap();
        assert_eq!(resp.finish, FinishReason::Length);
        assert_eq!(resp.text, "alpha bravo charlie delta");
        assert_eq!(resp.usage.completion_tokens, 5);
        // The folded per-word count equals a full recount of the final text.
        assert_eq!(
            resp.usage.completion_tokens,
            Tokenizer::new().count(&resp.text) as u64
        );
    }

    #[test]
    fn reuse_replay_is_byte_identical_for_flat_prompts() {
        // A duplicate prompt under `ReusePolicy::Exact` must produce the
        // same response the duplicate would have produced *live* — which
        // runs warm (block-cache hits from the first call), so the replay
        // path has to re-account prefill against the live cache rather
        // than echo the leader's cold usage.
        let with = engine();
        let without = engine();
        let items = [
            "Tweet: awful homework tonight",
            "Tweet: great sunshine",
            "Tweet: awful homework tonight",
            "Tweet: awful homework tonight",
        ];
        let mut reuse_flags = Vec::new();
        for item in items {
            let req =
                GenRequest::structured(format!("{}{item}", long_instruction()), "view:v@1#0/v1");
            let (on, reuse) = with
                .generate_with_reuse(&req, spear_core::llm::ReusePolicy::Exact)
                .unwrap();
            let off = without.generate(&req).unwrap();
            assert_eq!(on, off, "reuse must be invisible for {item:?}");
            reuse_flags.push(reuse.expect("Exact policy always reports").reused);
        }
        assert_eq!(reuse_flags, [false, false, true, true]);
        let stats = with.reuse_stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.insertions, 2);
        assert_eq!(with.clock().elapsed(), without.clock().elapsed());
        assert_eq!(with.cache_stats(), without.cache_stats());
    }

    #[test]
    fn reuse_replay_is_byte_identical_for_segmented_prompts() {
        let instruction: Arc<str> = Arc::from(long_instruction());
        let with = engine();
        let without = engine();
        for item in ["Tweet: a bad exam", "Tweet: b", "Tweet: a bad exam"] {
            let req = segmented_request(&instruction, item);
            let (on, reuse) = with
                .generate_with_reuse(&req, spear_core::llm::ReusePolicy::Exact)
                .unwrap();
            let off = without.generate(&req).unwrap();
            assert_eq!(on, off, "segmented reuse must be invisible for {item:?}");
            assert!(reuse.is_some());
        }
        assert_eq!(with.reuse_stats().hits, 1);
        assert_eq!(with.clock().elapsed(), without.clock().elapsed());
    }

    #[test]
    fn reuse_keys_separate_decode_params_and_identity() {
        // Same text, different max_tokens / identity kind ⇒ distinct memo
        // entries, never cross-served.
        let e = engine();
        let text = format!("{}Tweet: mixed feelings", long_instruction());
        let policy = spear_core::llm::ReusePolicy::Exact;
        let base = GenRequest::structured(text.clone(), "view:v@1#0/v1");
        let truncated = GenRequest {
            options: GenOptions {
                max_tokens: 1,
                ..GenOptions::default()
            },
            ..GenRequest::structured(text.clone(), "view:v@1#0/v1")
        };
        let opaque = GenRequest::opaque(text);
        e.generate_with_reuse(&base, policy).unwrap();
        e.generate_with_reuse(&truncated, policy).unwrap();
        e.generate_with_reuse(&opaque, policy).unwrap();
        let stats = e.reuse_stats();
        assert_eq!(stats.hits, 0, "no false sharing across keys: {stats:?}");
        assert_eq!(stats.insertions, 3);
    }

    #[test]
    fn reuse_off_policy_never_touches_the_memo() {
        let e = engine();
        let req =
            GenRequest::structured(format!("{}Tweet: x", long_instruction()), "view:v@1#0/v1");
        let (_, reuse) = e
            .generate_with_reuse(&req, spear_core::llm::ReusePolicy::Off)
            .unwrap();
        assert!(reuse.is_none());
        let stats = e.reuse_stats();
        assert_eq!((stats.leads, stats.insertions, stats.hits), (0, 0, 0));
    }

    #[test]
    fn different_models_have_different_latency_profiles() {
        let text = format!("{}Tweet: long enough to measure", long_instruction());
        let qwen = SimLlm::new(ModelProfile::qwen25_7b_instruct());
        let gpt = SimLlm::new(ModelProfile::gpt_4o_mini());
        let rq = qwen.generate(&GenRequest::opaque(text.clone())).unwrap();
        let rg = gpt.generate(&GenRequest::opaque(text)).unwrap();
        assert_ne!(rq.latency, rg.latency);
        assert_eq!(rq.model, "qwen2.5-7b-instruct-sim");
        assert_eq!(rg.model, "gpt-4o-mini-sim");
    }
}
