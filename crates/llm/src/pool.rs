//! Bounded, ref-counted KV block pool — the serving layer's model of GPU
//! KV-cache memory, in the style of vLLM's automatic prefix caching.
//!
//! The pool holds a fixed budget of *blocks* (one block = `block_size`
//! tokens of KV state, though the pool itself is token-agnostic and works
//! purely on block content-hash chains). Blocks form a radix forest keyed
//! by `(parent, content hash)`, exactly like [`crate::cache::PrefixCache`],
//! so sequences that share a prefix share the prefix's blocks physically.
//!
//! Unlike the prefix cache — which models *visibility* of reuse and may
//! drop any block — the pool models *occupancy*:
//!
//! - an in-flight sequence **pins** every block on its path via a lease
//!   ([`BlockPool::allocate`] increments a per-block reference count);
//!   pinned blocks are never evicted, period;
//! - when a sequence finishes, [`BlockPool::release`] unpins its path but
//!   leaves the blocks resident — they become reusable cache for later
//!   sequences sharing the prefix;
//! - when a sequence is *preempted*, [`BlockPool::free`] unpins its path
//!   and immediately drops every block that is now unreferenced and
//!   childless (recompute-on-resume: the preempted sequence's private
//!   blocks are discarded, shared prefix blocks survive for whoever else
//!   holds or extends them);
//! - capacity pressure evicts **unpinned leaf blocks in LRU order**
//!   ([`PoolStats::evicted_blocks`]); if even after evicting every
//!   reclaimable block the request cannot fit, [`BlockPool::allocate`]
//!   fails with [`PoolExhausted`] *without mutating the pool* — the
//!   caller (the serving scheduler) must preempt somebody and retry.
//!
//! ## Accounting invariants
//!
//! The counters are designed to reconcile exactly (pinned by the
//! `block_pool_invariants` proptest):
//!
//! - `live_blocks() <= capacity()` at all times;
//! - `inserted_blocks − evicted_blocks − freed_blocks == live_blocks()`;
//! - a block on any active lease's path is never evicted or freed.
//!
//! The pool is lock-striped by each chain's first block hash (like
//! [`crate::cache::StripedPrefixCache`]), so a sequence's whole path lives
//! in one stripe and concurrent sequences from unrelated prompt families
//! never contend. Operations on *different* sequences are safe to race;
//! operations on the *same* sequence must be externally ordered (a
//! sequence has one owner — its scheduler).

use std::collections::HashMap;

use parking_lot::Mutex;

/// Default stripe count for [`BlockPool`].
pub const DEFAULT_POOL_STRIPES: usize = 4;

/// Root sentinel (not stored in the node map).
const ROOT: u64 = 0;

/// Pool activity counters. All counters are monotonic, so snapshots can be
/// diffed with [`PoolStats::delta_since`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PoolStats {
    /// `allocate` calls (including failed ones).
    pub allocations: u64,
    /// Blocks requested across all allocations (the delta beyond each
    /// sequence's existing lease).
    pub requested_blocks: u64,
    /// Requested blocks that were already resident (prefix reuse — the
    /// tokens these cover skip recompute).
    pub reused_blocks: u64,
    /// Blocks newly inserted into the pool.
    pub inserted_blocks: u64,
    /// Blocks evicted by capacity pressure (always unpinned leaves).
    pub evicted_blocks: u64,
    /// Blocks explicitly dropped by [`BlockPool::free`] (preemption) —
    /// distinct from pressure eviction.
    pub freed_blocks: u64,
    /// Allocations that failed with [`PoolExhausted`].
    pub alloc_failures: u64,
}

impl PoolStats {
    /// Fraction of requested blocks served by resident prefixes, in
    /// `[0, 1]`; `None` before any request.
    #[must_use]
    pub fn reuse_rate(&self) -> Option<f64> {
        if self.requested_blocks == 0 {
            None
        } else {
            Some(self.reused_blocks as f64 / self.requested_blocks as f64)
        }
    }

    /// Counter-wise `self − earlier`, saturating on misordered snapshots.
    #[must_use]
    pub fn delta_since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            allocations: self.allocations.saturating_sub(earlier.allocations),
            requested_blocks: self
                .requested_blocks
                .saturating_sub(earlier.requested_blocks),
            reused_blocks: self.reused_blocks.saturating_sub(earlier.reused_blocks),
            inserted_blocks: self.inserted_blocks.saturating_sub(earlier.inserted_blocks),
            evicted_blocks: self.evicted_blocks.saturating_sub(earlier.evicted_blocks),
            freed_blocks: self.freed_blocks.saturating_sub(earlier.freed_blocks),
            alloc_failures: self.alloc_failures.saturating_sub(earlier.alloc_failures),
        }
    }
}

/// Successful allocation: how much of the request was already resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocGrant {
    /// Requested blocks already resident (leading prefix beyond the
    /// sequence's existing lease) — their tokens skip recompute.
    pub reused_blocks: usize,
    /// Blocks newly inserted for this request.
    pub new_blocks: usize,
    /// Total blocks now pinned by the sequence's lease.
    pub lease_blocks: usize,
}

/// Allocation failure: the pool cannot make room without evicting a
/// pinned block. The caller must preempt a lease and retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolExhausted {
    /// Blocks the request still needed.
    pub needed_blocks: usize,
    /// Blocks that were reclaimable (unpinned, no pinned descendant) at
    /// the time of the failure.
    pub reclaimable_blocks: usize,
}

impl std::fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KV block pool exhausted: need {} blocks, only {} reclaimable",
            self.needed_blocks, self.reclaimable_blocks
        )
    }
}

#[derive(Debug)]
struct Node {
    parent: u64,
    hash: u64,
    children: u32,
    refs: u32,
    last_used: u64,
}

#[derive(Debug, Default)]
struct PoolStripe {
    capacity: usize,
    /// `(parent id, block hash) -> node id`. Blocks are physical — no
    /// owner tagging; sharing is the point.
    index: HashMap<(u64, u64), u64>,
    nodes: HashMap<u64, Node>,
    /// `sequence id -> pinned path (root-first node ids)`.
    leases: HashMap<u64, Vec<u64>>,
    next_id: u64,
    tick: u64,
    stats: PoolStats,
}

impl PoolStripe {
    fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            next_id: 1,
            ..Self::default()
        }
    }

    /// Node ids that must survive: every node with `refs > 0` plus all of
    /// its ancestors (evicting an ancestor would orphan a pinned block).
    fn protected(&self) -> std::collections::HashSet<u64> {
        let mut keep = std::collections::HashSet::new();
        for (&id, node) in &self.nodes {
            if node.refs == 0 {
                continue;
            }
            let mut cursor = id;
            while cursor != ROOT && keep.insert(cursor) {
                cursor = self.nodes[&cursor].parent;
            }
        }
        keep
    }

    /// Evict the LRU unpinned leaf. Returns `false` when nothing is
    /// evictable (every block pinned or an ancestor of a pinned block).
    fn evict_one(&mut self) -> bool {
        let victim = self
            .nodes
            .iter()
            .filter(|(_, n)| n.children == 0 && n.refs == 0)
            .min_by_key(|(&id, n)| (n.last_used, id))
            .map(|(&id, _)| id);
        let Some(id) = victim else {
            return false;
        };
        self.remove_node(id);
        self.stats.evicted_blocks += 1;
        true
    }

    fn remove_node(&mut self, id: u64) {
        let Some(node) = self.nodes.remove(&id) else {
            return;
        };
        self.index.remove(&(node.parent, node.hash));
        if node.parent != ROOT {
            if let Some(parent) = self.nodes.get_mut(&node.parent) {
                parent.children = parent.children.saturating_sub(1);
            }
        }
    }

    /// Extend (or create) `seq`'s lease to cover the full `chain`.
    fn allocate(&mut self, seq: u64, chain: &[u64]) -> Result<AllocGrant, PoolExhausted> {
        self.tick += 1;
        self.stats.allocations += 1;
        let mut lease = self.leases.remove(&seq).unwrap_or_default();
        debug_assert!(
            lease.len() <= chain.len(),
            "a lease never shrinks without release/free"
        );
        let start = lease.len();
        let requested = chain.len() - start;
        self.stats.requested_blocks += requested as u64;

        // Walk the resident extension of the lease path.
        let mut parent = lease.last().copied().unwrap_or(ROOT);
        let mut resident = Vec::new();
        for &hash in &chain[start..] {
            match self.index.get(&(parent, hash)) {
                Some(&id) => {
                    resident.push(id);
                    parent = id;
                }
                None => break,
            }
        }
        let new_needed = requested - resident.len();

        // Feasibility before mutation: can eviction make enough room
        // without touching a pinned path (ours included, once pinned)?
        let evictions_needed = (self.nodes.len() + new_needed).saturating_sub(self.capacity);
        if evictions_needed > 0 {
            let mut keep = self.protected();
            // The resident extension (and its ancestors, already on the
            // lease) is about to be pinned — protect it now so we neither
            // evict it nor count it as reclaimable.
            for &id in &resident {
                keep.insert(id);
            }
            for &id in lease.iter() {
                keep.insert(id);
            }
            let reclaimable = self.nodes.len() - keep.len();
            if reclaimable < evictions_needed {
                self.stats.alloc_failures += 1;
                if !lease.is_empty() {
                    self.leases.insert(seq, lease);
                }
                return Err(PoolExhausted {
                    needed_blocks: new_needed,
                    reclaimable_blocks: reclaimable,
                });
            }
        }

        // Commit. Pin the resident extension first so eviction can never
        // select it while we insert the genuinely new blocks.
        let tick = self.tick;
        for &id in &resident {
            let node = self.nodes.get_mut(&id).expect("resident node exists");
            node.refs += 1;
            node.last_used = tick;
            lease.push(id);
        }
        let mut parent = lease.last().copied().unwrap_or(ROOT);
        for &hash in &chain[start + resident.len()..] {
            while self.nodes.len() >= self.capacity {
                let evicted = self.evict_one();
                debug_assert!(evicted, "feasibility check guarantees room");
                if !evicted {
                    break;
                }
            }
            let id = self.next_id;
            self.next_id += 1;
            self.index.insert((parent, hash), id);
            self.nodes.insert(
                id,
                Node {
                    parent,
                    hash,
                    children: 0,
                    refs: 1,
                    last_used: tick,
                },
            );
            if parent != ROOT {
                if let Some(p) = self.nodes.get_mut(&parent) {
                    p.children += 1;
                }
            }
            self.stats.inserted_blocks += 1;
            lease.push(id);
            parent = id;
        }
        let grant = AllocGrant {
            reused_blocks: resident.len(),
            new_blocks: new_needed,
            lease_blocks: lease.len(),
        };
        self.stats.reused_blocks += resident.len() as u64;
        self.leases.insert(seq, lease);
        Ok(grant)
    }

    /// Unpin `seq`'s lease, leaving its blocks resident as reusable cache.
    fn release(&mut self, seq: u64) {
        let Some(lease) = self.leases.remove(&seq) else {
            return;
        };
        for id in lease {
            if let Some(node) = self.nodes.get_mut(&id) {
                debug_assert!(node.refs > 0, "released block must be pinned");
                node.refs = node.refs.saturating_sub(1);
            }
        }
    }

    /// Unpin `seq`'s lease and drop every block on it that is now
    /// unreferenced and childless (leaf-first, so private suffixes vanish
    /// while shared prefixes survive).
    fn free(&mut self, seq: u64) {
        let Some(lease) = self.leases.remove(&seq) else {
            return;
        };
        for &id in lease.iter().rev() {
            let Some(node) = self.nodes.get_mut(&id) else {
                continue;
            };
            debug_assert!(node.refs > 0, "freed block must be pinned");
            node.refs = node.refs.saturating_sub(1);
            if node.refs == 0 && node.children == 0 {
                self.remove_node(id);
                self.stats.freed_blocks += 1;
            }
        }
    }

    /// Resident leading blocks of `chain` (no pinning, no LRU touch).
    fn peek(&self, chain: &[u64]) -> usize {
        let mut parent = ROOT;
        let mut matched = 0;
        for &hash in chain {
            match self.index.get(&(parent, hash)) {
                Some(&id) => {
                    parent = id;
                    matched += 1;
                }
                None => break,
            }
        }
        matched
    }

    fn evict_idle(&mut self, max_blocks: usize) -> usize {
        let mut evicted = 0;
        while evicted < max_blocks && self.evict_one() {
            evicted += 1;
        }
        evicted
    }

    fn pinned(&self) -> usize {
        self.nodes.values().filter(|n| n.refs > 0).count()
    }
}

/// The lock-striped bounded block pool. See the module docs for the
/// semantics; see [`crate::cache::StripedPrefixCache`] for why striping by
/// first-block hash keeps every chain within one stripe.
#[derive(Debug)]
pub struct BlockPool {
    stripes: Vec<Mutex<PoolStripe>>,
    /// `sequence id -> stripe index`, so `release`/`free` can find a lease
    /// without re-deriving its chain. Always locked *before* any stripe.
    routes: Mutex<HashMap<u64, usize>>,
}

impl BlockPool {
    /// A pool of `capacity_blocks` blocks across `stripes` lock stripes
    /// (per-stripe capacity is the ceiling split, minimum 1).
    #[must_use]
    pub fn new(capacity_blocks: usize, stripes: usize) -> Self {
        let stripes = stripes.max(1);
        let per_stripe = capacity_blocks.div_ceil(stripes).max(1);
        Self {
            stripes: (0..stripes)
                .map(|_| Mutex::new(PoolStripe::new(per_stripe)))
                .collect(),
            routes: Mutex::new(HashMap::new()),
        }
    }

    /// Total block capacity across stripes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().capacity).sum()
    }

    /// Stripe count.
    #[must_use]
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    fn stripe_for(&self, first_hash: u64) -> usize {
        (first_hash % self.stripes.len() as u64) as usize
    }

    /// Pin blocks for sequence `seq` covering the full `chain` (block
    /// content hashes from block 0). Extends the sequence's existing lease
    /// when one exists — `chain` must then start with the already-leased
    /// hashes. Empty chains are a no-op grant.
    ///
    /// # Errors
    ///
    /// [`PoolExhausted`] when the new blocks cannot fit even after
    /// evicting every reclaimable (unpinned) block; the pool is left
    /// unchanged.
    pub fn allocate(&self, seq: u64, chain: &[u64]) -> Result<AllocGrant, PoolExhausted> {
        let Some(&first) = chain.first() else {
            return Ok(AllocGrant {
                reused_blocks: 0,
                new_blocks: 0,
                lease_blocks: 0,
            });
        };
        let stripe = {
            let mut routes = self.routes.lock();
            *routes.entry(seq).or_insert_with(|| self.stripe_for(first))
        };
        let result = self.stripes[stripe].lock().allocate(seq, chain);
        if result.is_err() {
            // A failed first allocation leaves no lease; drop the route so
            // the sequence does not leak a routing slot.
            let mut routes = self.routes.lock();
            if !self.stripes[stripe].lock().leases.contains_key(&seq) {
                routes.remove(&seq);
            }
        }
        result
    }

    /// Pin as many *leading* blocks of `chain` as currently fit — used by
    /// schedulers only when nothing is left to preempt, so a lone oversized
    /// sequence still makes progress (its uncovered tail is simply never
    /// resident, like a streamed suffix). Never fails.
    pub fn allocate_prefix(&self, seq: u64, chain: &[u64]) -> AllocGrant {
        // A lease never shrinks: blocks the sequence already holds are the
        // floor of the search, not probe candidates (probing below the
        // lease would ask `allocate` to shrink it).
        let held = self.lease_blocks(seq).unwrap_or(0).min(chain.len());
        let mut lo = held;
        let mut grant = AllocGrant {
            reused_blocks: 0,
            new_blocks: 0,
            lease_blocks: held,
        };
        // Binary-search the longest feasible prefix: feasibility is
        // monotone in chain length for a fixed pool state, and each probe
        // either succeeds (committing the prefix, which only helps longer
        // probes) or leaves the pool unchanged.
        let mut hi = chain.len();
        while lo < hi {
            let mid = hi.min(lo + (hi - lo).div_ceil(2)).max(lo + 1);
            match self.allocate(seq, &chain[..mid]) {
                Ok(g) => {
                    grant = AllocGrant {
                        reused_blocks: grant.reused_blocks + g.reused_blocks,
                        new_blocks: grant.new_blocks + g.new_blocks,
                        lease_blocks: g.lease_blocks,
                    };
                    lo = mid;
                }
                Err(_) => hi = mid - 1,
            }
        }
        grant
    }

    fn with_lease_stripe(&self, seq: u64, op: impl FnOnce(&mut PoolStripe, u64)) {
        let stripe = {
            let mut routes = self.routes.lock();
            routes.remove(&seq)
        };
        if let Some(stripe) = stripe {
            op(&mut self.stripes[stripe].lock(), seq);
        }
    }

    /// Unpin `seq`'s lease; its blocks stay resident as reusable cache.
    pub fn release(&self, seq: u64) {
        self.with_lease_stripe(seq, |stripe, seq| stripe.release(seq));
    }

    /// Unpin `seq`'s lease and immediately drop its now-unreferenced
    /// childless blocks (preemption: recompute-on-resume).
    pub fn free(&self, seq: u64) {
        self.with_lease_stripe(seq, |stripe, seq| stripe.free(seq));
    }

    /// Evict up to `max_blocks` unpinned LRU leaf blocks (memory
    /// reclamation outside allocation pressure). Returns how many were
    /// evicted.
    pub fn evict_idle(&self, max_blocks: usize) -> usize {
        let mut remaining = max_blocks;
        for stripe in &self.stripes {
            if remaining == 0 {
                break;
            }
            remaining -= stripe.lock().evict_idle(remaining);
        }
        max_blocks - remaining
    }

    /// Resident leading blocks of `chain`, without pinning or touching
    /// LRU order.
    #[must_use]
    pub fn peek(&self, chain: &[u64]) -> usize {
        match chain.first() {
            Some(&first) => self.stripes[self.stripe_for(first)].lock().peek(chain),
            None => 0,
        }
    }

    /// Blocks currently pinned by `seq`'s lease (`None` when it holds no
    /// lease).
    #[must_use]
    pub fn lease_blocks(&self, seq: u64) -> Option<usize> {
        let stripe = *self.routes.lock().get(&seq)?;
        self.stripes[stripe].lock().leases.get(&seq).map(Vec::len)
    }

    /// Resident blocks across all stripes.
    #[must_use]
    pub fn live_blocks(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().nodes.len()).sum()
    }

    /// Resident blocks with a nonzero reference count.
    #[must_use]
    pub fn pinned_blocks(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().pinned()).sum()
    }

    /// Aggregate counters across all stripes.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for stripe in &self.stripes {
            let s = stripe.lock().stats;
            total.allocations += s.allocations;
            total.requested_blocks += s.requested_blocks;
            total.reused_blocks += s.reused_blocks;
            total.inserted_blocks += s.inserted_blocks;
            total.evicted_blocks += s.evicted_blocks;
            total.freed_blocks += s.freed_blocks;
            total.alloc_failures += s.alloc_failures;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A chain of `n` private blocks for family `fam`.
    fn chain(fam: u64, n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| fam * 1_000 + i + 1).collect()
    }

    fn single(capacity: usize) -> BlockPool {
        BlockPool::new(capacity, 1)
    }

    #[test]
    fn allocate_release_reuse_roundtrip() {
        let pool = single(16);
        let c = chain(1, 4);
        let g = pool.allocate(10, &c).unwrap();
        assert_eq!((g.reused_blocks, g.new_blocks, g.lease_blocks), (0, 4, 4));
        assert_eq!(pool.live_blocks(), 4);
        assert_eq!(pool.pinned_blocks(), 4);
        pool.release(10);
        assert_eq!(pool.pinned_blocks(), 0);
        assert_eq!(pool.live_blocks(), 4, "released blocks stay resident");
        // A second sequence over the same chain reuses everything.
        let g = pool.allocate(11, &c).unwrap();
        assert_eq!((g.reused_blocks, g.new_blocks), (4, 0));
        assert_eq!(pool.stats().inserted_blocks, 4);
    }

    #[test]
    fn lease_extension_pins_only_the_delta() {
        let pool = single(16);
        let c = chain(2, 6);
        pool.allocate(7, &c[..2]).unwrap();
        let g = pool.allocate(7, &c[..5]).unwrap();
        assert_eq!((g.reused_blocks, g.new_blocks, g.lease_blocks), (0, 3, 5));
        assert_eq!(pool.lease_blocks(7), Some(5));
        assert_eq!(pool.stats().requested_blocks, 5, "2 then 3");
    }

    #[test]
    fn pinned_blocks_are_never_evicted() {
        let pool = single(4);
        pool.allocate(1, &chain(1, 3)).unwrap();
        // A second sequence needing 3 blocks cannot fit: only 1 slot free,
        // the other 3 are pinned.
        let err = pool.allocate(2, &chain(2, 3)).unwrap_err();
        assert_eq!(err.needed_blocks, 3);
        assert_eq!(err.reclaimable_blocks, 0);
        assert_eq!(pool.live_blocks(), 3, "failed allocation mutates nothing");
        assert_eq!(pool.stats().alloc_failures, 1);
        // Release sequence 1: its blocks become evictable, so 2 now fits.
        pool.release(1);
        pool.allocate(2, &chain(2, 3)).unwrap();
        assert!(pool.live_blocks() <= 4);
        assert!(pool.stats().evicted_blocks >= 2, "made room by evicting");
    }

    #[test]
    fn shared_prefixes_share_physical_blocks() {
        let pool = single(16);
        let mut a = chain(9, 3);
        let mut b = a.clone();
        a.push(100);
        b.push(200);
        pool.allocate(1, &a).unwrap();
        let g = pool.allocate(2, &b).unwrap();
        assert_eq!((g.reused_blocks, g.new_blocks), (3, 1));
        assert_eq!(pool.live_blocks(), 5, "3 shared + 2 private tails");
        // Freeing sequence 2 drops only its private tail.
        pool.free(2);
        assert_eq!(pool.live_blocks(), 4);
        assert_eq!(pool.stats().freed_blocks, 1);
        assert_eq!(pool.peek(&a), 4, "sequence 1's path is untouched");
    }

    #[test]
    fn free_keeps_released_prefixes_resident() {
        let pool = single(16);
        pool.allocate(1, &chain(3, 4)).unwrap();
        pool.release(1);
        // Another sequence pins the same prefix and is then preempted:
        // free() finds every block still referenced by nobody but with the
        // radix structure intact — they drop only if childless+unpinned.
        pool.allocate(2, &chain(3, 4)).unwrap();
        pool.free(2);
        assert_eq!(
            pool.live_blocks(),
            0,
            "fully unreferenced childless chain is dropped leaf-first"
        );
        assert_eq!(pool.stats().freed_blocks, 4);
    }

    #[test]
    fn accounting_reconciles() {
        let pool = BlockPool::new(8, 2);
        for seq in 0..6u64 {
            let _ = pool.allocate(seq, &chain(seq, 3));
            if seq % 2 == 0 {
                pool.release(seq);
            } else {
                pool.free(seq);
            }
        }
        pool.evict_idle(2);
        let s = pool.stats();
        assert_eq!(
            s.inserted_blocks - s.evicted_blocks - s.freed_blocks,
            pool.live_blocks() as u64
        );
        assert!(pool.live_blocks() <= pool.capacity());
    }

    #[test]
    fn allocate_prefix_pins_what_fits() {
        let pool = single(4);
        pool.allocate(1, &chain(1, 3)).unwrap();
        // Sequence 2 wants 6 blocks; only 1 slot is free.
        let g = pool.allocate_prefix(2, &chain(2, 6));
        assert_eq!(g.lease_blocks, 1);
        assert_eq!(pool.live_blocks(), 4);
        pool.release(1);
        // With 1 pinned, 3 reclaimable: the prefix can now grow to 4.
        let g = pool.allocate_prefix(2, &chain(2, 6));
        assert_eq!(g.lease_blocks, 4);
        assert_eq!(pool.pinned_blocks(), 4);
        // And an empty pool takes the whole chain of a fitting sequence.
        pool.free(2);
        let g = pool.allocate_prefix(3, &chain(3, 4));
        assert_eq!(g.lease_blocks, 4);
    }

    #[test]
    fn eviction_is_lru_leaf_first() {
        let pool = single(4);
        pool.allocate(1, &chain(1, 2)).unwrap();
        pool.release(1);
        pool.allocate(2, &chain(2, 2)).unwrap();
        pool.release(2);
        // Touch chain 1 (LRU refresh via reuse).
        pool.allocate(3, &chain(1, 2)).unwrap();
        pool.release(3);
        // A new 2-block chain must evict chain 2 (LRU), not chain 1.
        pool.allocate(4, &chain(4, 2)).unwrap();
        assert_eq!(pool.peek(&chain(1, 2)), 2, "recently-used chain survives");
        assert_eq!(pool.peek(&chain(2, 2)), 0, "LRU chain evicted");
    }

    #[test]
    fn empty_chains_and_unknown_sequences_are_noops() {
        let pool = single(4);
        let g = pool.allocate(1, &[]).unwrap();
        assert_eq!(g.lease_blocks, 0);
        pool.release(99);
        pool.free(99);
        assert_eq!(pool.live_blocks(), 0);
        assert_eq!(pool.lease_blocks(1), None);
        assert_eq!(pool.peek(&[]), 0);
    }

    #[test]
    fn failed_first_allocation_leaks_no_route() {
        let pool = single(2);
        pool.allocate(1, &chain(1, 2)).unwrap();
        assert!(pool.allocate(2, &chain(2, 2)).is_err());
        assert_eq!(pool.lease_blocks(2), None);
        // The sequence can retry later without a stale route.
        pool.release(1);
        assert!(pool.allocate(2, &chain(2, 2)).is_ok());
    }

    #[test]
    fn stats_delta_and_serialization() {
        let pool = single(8);
        pool.allocate(1, &chain(1, 3)).unwrap();
        let before = pool.stats();
        pool.release(1);
        pool.allocate(2, &chain(1, 3)).unwrap();
        let delta = pool.stats().delta_since(&before);
        assert_eq!(delta.reused_blocks, 3);
        assert_eq!(delta.inserted_blocks, 0);
        assert!((delta.reuse_rate().unwrap() - 1.0).abs() < 1e-12);
        let json = serde_json::to_string(&delta).unwrap();
        let back: PoolStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, delta);
        // Misordered snapshots saturate.
        assert_eq!(before.delta_since(&pool.stats()).allocations, 0);
    }
}
