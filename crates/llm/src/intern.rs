//! Token interner: memoized tokenization and block hashing for shared
//! prompt-segment chains.
//!
//! A [`spear_core::segment::SegmentedText`] identifies the shared prefix of
//! a prompt family by content hash. The interner maps each *segment chain*
//! (segments `0..=i`, keyed by a running fold of their content hashes) to
//! the chain's encoded tokens, its per-block hash chain, and the trailing
//! unterminated word — everything a [`crate::tokenizer::StreamingEncoder`]
//! needs to resume encoding at the chain boundary. A warm prefix is thus
//! tokenized and block-hashed **once per process, not once per request**;
//! per-request work becomes O(suffix).
//!
//! ## Why this cannot change observable behaviour
//!
//! Entries are keyed purely by segment *content* and store pure functions
//! of that content (token ids are FNV-1a of piece bytes; block hashes are
//! FNV-1a of token bytes). A hit therefore returns byte-identical data to
//! what re-encoding would produce — proven by the segmented-encoding
//! equivalence proptest — so hit/miss and eviction timing, and thread
//! interleaving, are all invisible to the engine's outputs. That is what
//! keeps every trace digest byte-identical with the interner on or off.
//!
//! Bounded (LRU per shard) and lock-striped like the prefix cache, so
//! concurrent lanes serving unrelated prompt families never contend.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use spear_kv::shard::{fnv1a_extend, FNV1A_OFFSET};

use crate::tokenizer::Token;

/// Default maximum interned chains (across all shards). Chains are one per
/// distinct prompt-family prefix — a small population — so the default is
/// generous; the bound exists to survive pathological workloads that mint
/// unbounded distinct prefixes.
pub const DEFAULT_INTERN_CAPACITY: usize = 4096;

/// Default shard count (matches the prefix cache's striping).
pub const DEFAULT_INTERN_SHARDS: usize = 16;

/// Seed state for a segment-chain key fold.
pub const CHAIN_SEED: u64 = FNV1A_OFFSET;

/// Extend a chain key with the next segment's content hash. The key of
/// segments `0..=i` is `chain_key(...chain_key(CHAIN_SEED, h0)..., hi)` —
/// an FNV-1a fold over the segment hashes, so it depends on the full
/// ordered content of the chain and nothing else.
#[must_use]
pub fn chain_key(prev: u64, segment_hash: u64) -> u64 {
    fnv1a_extend(prev, &segment_hash.to_le_bytes())
}

/// Fold a plan's [`affinity seed`](spear_core::plan::LoweredPlan::affinity_seed)
/// into the interner's chain-key space: the root chain key of the prompt
/// family that seed identifies. Cluster routing scores are further
/// [`chain_key`] folds over this value (one fold per placement salt), so
/// "the node a family is placed on" and "the interner chain a family's
/// prefix lives in" derive from the same keyed fold — a request routed by
/// this key lands where its longest memoized prefix already is.
#[must_use]
pub fn affinity_chain_key(affinity_seed: u64) -> u64 {
    chain_key(CHAIN_SEED, affinity_seed)
}

/// The memoized encoding of one segment chain.
#[derive(Debug, Clone)]
pub struct InternedChain {
    /// Tokens of the chain's *flushed* text: everything except the
    /// trailing unterminated word.
    pub tokens: Arc<[Token]>,
    /// The trailing word-in-progress at the chain boundary (the
    /// [`crate::tokenizer::StreamingEncoder`] resume state). Usually empty:
    /// template literals almost always end in whitespace or punctuation.
    pub pending: Arc<str>,
    /// Content hashes of the full cache blocks within `tokens`, in order
    /// (`tokens.len() / block_size` entries for the interner's block size).
    pub block_hashes: Arc<[u64]>,
}

/// Interner activity counters (point-in-time snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct InternStats {
    /// Chain lookups that found an entry.
    pub hits: u64,
    /// Chain lookups that found nothing.
    pub misses: u64,
    /// Chains inserted.
    pub insertions: u64,
    /// Chains evicted to stay within capacity.
    pub evictions: u64,
    /// Chains currently resident.
    pub resident: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Entry {
    chain: InternedChain,
    last_used: u64,
}

/// Bounded, lock-striped map from chain key to [`InternedChain`].
#[derive(Debug)]
pub struct TokenInterner {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
}

impl TokenInterner {
    /// An interner holding at most `capacity` chains across `num_shards`
    /// lock stripes.
    #[must_use]
    pub fn new(capacity: usize, num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        let capacity_per_shard = capacity.div_ceil(num_shards).max(1);
        Self {
            shards: (0..num_shards)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            capacity_per_shard,
        }
    }

    /// Defaults sized for benchmark and serving workloads.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(DEFAULT_INTERN_CAPACITY, DEFAULT_INTERN_SHARDS)
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Look up a chain by key. A hit refreshes the entry's LRU position.
    /// The returned chain is three `Arc` clones — no data is copied.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<InternedChain> {
        let mut shard = self.shard(key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        let found = shard.map.get_mut(&key).map(|entry| {
            entry.last_used = tick;
            entry.chain.clone()
        });
        match found {
            Some(chain) => {
                shard.hits += 1;
                Some(chain)
            }
            None => {
                shard.misses += 1;
                None
            }
        }
    }

    /// Intern a chain. If the key is already present the existing entry is
    /// kept (entries are content-determined, so both values are identical)
    /// and only its LRU position refreshes. At capacity, the least
    /// recently used chain in the shard is evicted first.
    pub fn insert(&self, key: u64, chain: InternedChain) {
        let mut shard = self.shard(key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(entry) = shard.map.get_mut(&key) {
            entry.last_used = tick;
            return;
        }
        while shard.map.len() >= self.capacity_per_shard {
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            let Some(victim) = victim else { break };
            shard.map.remove(&victim);
            shard.evictions += 1;
        }
        shard.map.insert(
            key,
            Entry {
                chain,
                last_used: tick,
            },
        );
        shard.insertions += 1;
    }

    /// Aggregate counters across all shards.
    #[must_use]
    pub fn stats(&self) -> InternStats {
        let mut total = InternStats::default();
        for shard in &self.shards {
            let s = shard.lock();
            total.hits += s.hits;
            total.misses += s.misses;
            total.insertions += s.insertions;
            total.evictions += s.evictions;
            total.resident += s.map.len() as u64;
        }
        total
    }

    /// Drop every interned chain (counters are retained).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().map.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize, salt: u64) -> InternedChain {
        InternedChain {
            tokens: (0..n).map(|i| Token(i as u64 + salt)).collect(),
            pending: Arc::from(""),
            block_hashes: Arc::from(&[salt][..]),
        }
    }

    #[test]
    fn get_after_insert_returns_the_chain() {
        let interner = TokenInterner::new(64, 4);
        let key = chain_key(CHAIN_SEED, 42);
        assert!(interner.get(key).is_none());
        interner.insert(key, chain(5, 7));
        let got = interner.get(key).expect("interned");
        assert_eq!(got.tokens.len(), 5);
        assert_eq!(got.block_hashes.as_ref(), &[7]);
        let s = interner.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.resident), (1, 1, 1, 1));
    }

    #[test]
    fn affinity_chain_key_is_the_seeded_root_fold() {
        assert_eq!(affinity_chain_key(7), chain_key(CHAIN_SEED, 7));
        assert_ne!(affinity_chain_key(7), affinity_chain_key(8));
        // Placement salts extend the family chain without colliding with it.
        assert_ne!(
            chain_key(affinity_chain_key(7), 0),
            chain_key(affinity_chain_key(7), 1)
        );
    }

    #[test]
    fn chain_keys_depend_on_order_and_content() {
        let a = chain_key(chain_key(CHAIN_SEED, 1), 2);
        let b = chain_key(chain_key(CHAIN_SEED, 2), 1);
        assert_ne!(a, b, "order matters");
        assert_eq!(a, chain_key(chain_key(CHAIN_SEED, 1), 2), "deterministic");
    }

    #[test]
    fn reinsert_keeps_the_existing_entry() {
        let interner = TokenInterner::new(64, 1);
        interner.insert(9, chain(3, 1));
        interner.insert(9, chain(3, 1));
        let s = interner.stats();
        assert_eq!(s.insertions, 1, "idempotent");
        assert_eq!(s.resident, 1);
    }

    #[test]
    fn eviction_is_lru_within_a_shard() {
        let interner = TokenInterner::new(2, 1);
        interner.insert(1, chain(1, 1));
        interner.insert(2, chain(1, 2));
        let _ = interner.get(1); // refresh 1; 2 becomes LRU
        interner.insert(3, chain(1, 3));
        assert!(interner.get(1).is_some(), "refreshed entry survives");
        assert!(interner.get(2).is_none(), "LRU entry evicted");
        assert!(interner.get(3).is_some());
        let s = interner.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident, 2);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let interner = TokenInterner::new(8, 2);
        interner.insert(1, chain(1, 1));
        let _ = interner.get(1);
        interner.clear();
        assert!(interner.get(1).is_none());
        let s = interner.stats();
        assert_eq!(s.resident, 0);
        assert_eq!(s.insertions, 1);
        assert_eq!(s.hits, 1);
    }
}
