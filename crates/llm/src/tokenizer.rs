//! Deterministic approximate-BPE tokenizer.
//!
//! The simulator does not need a trained vocabulary — it needs token
//! *counts* and token *identity* that behave like a subword tokenizer:
//! identical text always yields identical token sequences (so prefix caching
//! works), long words split into several tokens, punctuation separates, and
//! counts land near the ~0.75 tokens/word … 1.3 tokens/word range of real
//! BPE on English text.
//!
//! Tokens are stable 64-bit ids (FNV-1a of the piece), so they survive
//! process restarts — a property the prefix cache's block hashing relies on.

use spear_kv::shard::fnv1a;

/// A token id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// Maximum characters per subword piece; longer words are chunked.
const MAX_PIECE_CHARS: usize = 6;

/// Deterministic subword tokenizer.
#[derive(Debug, Clone, Default)]
pub struct Tokenizer;

impl Tokenizer {
    /// Create a tokenizer.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Encode text into token ids.
    #[must_use]
    pub fn encode(&self, text: &str) -> Vec<Token> {
        let mut tokens = Vec::with_capacity(text.len() / 4 + 1);
        for piece in Self::pieces(text) {
            tokens.push(Token(fnv1a(piece.as_bytes())));
        }
        tokens
    }

    /// Number of tokens in `text` (no allocation of ids).
    #[must_use]
    pub fn count(&self, text: &str) -> usize {
        Self::pieces(text).count()
    }

    /// Split text into subword pieces: alphanumeric runs (chunked to at most
    /// [`MAX_PIECE_CHARS`] chars) and single punctuation marks; whitespace
    /// separates but does not emit tokens.
    fn pieces(text: &str) -> impl Iterator<Item = String> + '_ {
        let mut out = Vec::new();
        let mut word = String::new();
        let flush = |word: &mut String, out: &mut Vec<String>| {
            if word.is_empty() {
                return;
            }
            let chars: Vec<char> = word.chars().collect();
            for chunk in chars.chunks(MAX_PIECE_CHARS) {
                out.push(chunk.iter().collect());
            }
            word.clear();
        };
        for ch in text.chars() {
            if ch.is_alphanumeric() || ch == '\'' {
                word.push(ch);
            } else {
                flush(&mut word, &mut out);
                if !ch.is_whitespace() {
                    out.push(ch.to_string());
                }
            }
        }
        flush(&mut word, &mut out);
        out.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_deterministic() {
        let t = Tokenizer::new();
        let a = t.encode("Summarize the patient's medication history.");
        let b = t.encode("Summarize the patient's medication history.");
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn count_matches_encode_len() {
        let t = Tokenizer::new();
        for text in [
            "",
            "one",
            "hello, world!",
            "antidisestablishmentarianism",
            "émoji 🦀 and CJK 漢字",
        ] {
            assert_eq!(t.count(text), t.encode(text).len(), "{text:?}");
        }
    }

    #[test]
    fn long_words_split_into_subwords() {
        let t = Tokenizer::new();
        // 28 chars -> ceil(28/6) = 5 pieces.
        assert_eq!(t.count("antidisestablishmentarianism"), 5);
        assert_eq!(t.count("cat"), 1);
    }

    #[test]
    fn punctuation_is_tokenized_separately() {
        let t = Tokenizer::new();
        assert_eq!(t.count("end."), 2);
        assert_eq!(t.count("a,b;c"), 5);
        assert_eq!(t.count("   "), 0);
    }

    #[test]
    fn shared_prefix_yields_shared_token_prefix() {
        let t = Tokenizer::new();
        let base = "Classify the sentiment of the tweet. Respond with one word.";
        let a = t.encode(&format!("{base} Tweet: great day"));
        let b = t.encode(&format!("{base} Tweet: awful day"));
        let common = a.iter().zip(&b).take_while(|(x, y)| x == y).count();
        let base_len = t.count(base);
        assert!(common >= base_len, "the instruction prefix must be shared");
    }

    #[test]
    fn token_rate_is_plausible_for_english() {
        let t = Tokenizer::new();
        let text = "The quick brown fox jumps over the lazy dog near the river bank \
                    while the evening sun sets slowly behind distant mountains";
        let words = text.split_whitespace().count();
        let tokens = t.count(text);
        let rate = tokens as f64 / words as f64;
        assert!((0.9..=1.8).contains(&rate), "rate {rate}");
    }

    #[test]
    fn apostrophes_stay_within_words() {
        let t = Tokenizer::new();
        assert_eq!(t.count("don't"), 1);
    }
}
