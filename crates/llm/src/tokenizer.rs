//! Deterministic approximate-BPE tokenizer.
//!
//! The simulator does not need a trained vocabulary — it needs token
//! *counts* and token *identity* that behave like a subword tokenizer:
//! identical text always yields identical token sequences (so prefix caching
//! works), long words split into several tokens, punctuation separates, and
//! counts land near the ~0.75 tokens/word … 1.3 tokens/word range of real
//! BPE on English text.
//!
//! Tokens are stable 64-bit ids (FNV-1a of the piece), so they survive
//! process restarts — a property the prefix cache's block hashing relies on.
//!
//! ## Zero-allocation hot path
//!
//! [`Tokenizer::pieces`] yields borrowed `&str` sub-slices of the input —
//! no per-piece `String`, no buffer `Vec` — so [`Tokenizer::count`] touches
//! the heap not at all and [`Tokenizer::encode_into`] only grows the
//! caller's reusable token buffer. [`StreamingEncoder`] extends the same
//! guarantee to text arriving in segments: feeding `"hel"` then `"lo"`
//! produces exactly the tokens of `"hello"`, because the encoder carries
//! the unterminated word across segment boundaries.

use spear_kv::shard::fnv1a;

/// A token id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// Maximum characters per subword piece; longer words are chunked.
const MAX_PIECE_CHARS: usize = 6;

/// Is `ch` part of a word (alphanumeric run, apostrophes included)?
fn is_word_char(ch: char) -> bool {
    ch.is_alphanumeric() || ch == '\''
}

/// Byte offset of the end of the next piece-sized chunk of `word` starting
/// at byte `start`: at most [`MAX_PIECE_CHARS`] characters, always on a
/// char boundary.
fn chunk_end(word: &str, start: usize) -> usize {
    match word[start..].char_indices().nth(MAX_PIECE_CHARS) {
        Some((offset, _)) => start + offset,
        None => word.len(),
    }
}

/// Emit the subword pieces of one complete word as tokens.
fn emit_word(word: &str, out: &mut Vec<Token>) {
    let mut start = 0;
    while start < word.len() {
        let end = chunk_end(word, start);
        out.push(Token(fnv1a(&word.as_bytes()[start..end])));
        start = end;
    }
}

/// Borrowed piece iterator: yields `&str` sub-slices of the input text,
/// allocating nothing.
struct Pieces<'a> {
    text: &'a str,
    /// Scan cursor (byte offset).
    pos: usize,
    /// Byte range of the word currently being chunked, if any.
    word: Option<(usize, usize)>,
}

impl<'a> Iterator for Pieces<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        loop {
            if let Some((start, end)) = self.word {
                let split = chunk_end(&self.text[..end], start);
                self.word = if split < end {
                    Some((split, end))
                } else {
                    None
                };
                return Some(&self.text[start..split]);
            }
            let rest = &self.text[self.pos..];
            let mut chars = rest.char_indices();
            let (_, ch) = chars.next()?;
            if is_word_char(ch) {
                let mut end = self.pos + ch.len_utf8();
                for (offset, c) in chars {
                    if !is_word_char(c) {
                        break;
                    }
                    end = self.pos + offset + c.len_utf8();
                }
                self.word = Some((self.pos, end));
                self.pos = end;
                continue;
            }
            self.pos += ch.len_utf8();
            if !ch.is_whitespace() {
                return Some(&self.text[self.pos - ch.len_utf8()..self.pos]);
            }
        }
    }
}

/// Deterministic subword tokenizer.
#[derive(Debug, Clone, Default)]
pub struct Tokenizer;

impl Tokenizer {
    /// Create a tokenizer.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Encode text into token ids.
    #[must_use]
    pub fn encode(&self, text: &str) -> Vec<Token> {
        let mut tokens = Vec::with_capacity(text.len() / 4 + 1);
        self.encode_append(text, &mut tokens);
        tokens
    }

    /// Encode text into a caller-owned buffer, clearing it first. The
    /// buffer's allocation is reused, so a loop over many prompts performs
    /// no per-prompt token allocation once the buffer has grown.
    pub fn encode_into(&self, text: &str, out: &mut Vec<Token>) {
        out.clear();
        self.encode_append(text, out);
    }

    /// Encode text, appending to `out` without clearing it.
    pub fn encode_append(&self, text: &str, out: &mut Vec<Token>) {
        for piece in Self::pieces(text) {
            out.push(Token(fnv1a(piece.as_bytes())));
        }
    }

    /// Number of tokens in `text`. Allocation-free: pieces are counted as
    /// borrowed slices, never materialized.
    #[must_use]
    pub fn count(&self, text: &str) -> usize {
        Self::pieces(text).count()
    }

    /// Split text into subword pieces: alphanumeric runs (chunked to at most
    /// [`MAX_PIECE_CHARS`] chars) and single punctuation marks; whitespace
    /// separates but does not emit tokens. Pieces are borrowed sub-slices of
    /// `text`.
    fn pieces(text: &str) -> impl Iterator<Item = &str> {
        Pieces {
            text,
            pos: 0,
            word: None,
        }
    }
}

/// Incremental encoder over a stream of text segments.
///
/// Tokenization is *not* naively segment-local: a word split across a
/// segment boundary ("hel" + "lo") must chunk as the whole word ("hello")
/// does. The encoder therefore buffers the trailing unterminated word of
/// each `feed` and prepends it to the next, guaranteeing that feeding any
/// segmentation of a text produces exactly [`Tokenizer::encode`]'s output
/// for the concatenation. The only state is that pending word, which is
/// also what makes memoizing a segment chain's tokens sound: chain tokens
/// plus the pending word fully determine how encoding continues.
#[derive(Debug, Default, Clone)]
pub struct StreamingEncoder {
    pending: String,
}

impl StreamingEncoder {
    /// A fresh encoder (no pending word).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset to a given resume state: `pending` is the unterminated word a
    /// previous encoding of the same prefix left behind (see
    /// [`StreamingEncoder::pending`]). The internal buffer's allocation is
    /// reused.
    pub fn reset(&mut self, pending: &str) {
        self.pending.clear();
        self.pending.push_str(pending);
    }

    /// The trailing word-in-progress, not yet emitted as tokens.
    #[must_use]
    pub fn pending(&self) -> &str {
        &self.pending
    }

    /// Feed the next text segment, appending any completed tokens to `out`.
    pub fn feed(&mut self, text: &str, out: &mut Vec<Token>) {
        let mut pos = 0;
        if !self.pending.is_empty() {
            // The pending word may continue into this segment.
            for (offset, ch) in text.char_indices() {
                if !is_word_char(ch) {
                    break;
                }
                pos = offset + ch.len_utf8();
            }
            self.pending.push_str(&text[..pos]);
            if pos == text.len() {
                return; // the whole segment extended the word
            }
            emit_word(&self.pending, out);
            self.pending.clear();
        }
        let mut word_start: Option<usize> = None;
        for (offset, ch) in text[pos..].char_indices() {
            let at = pos + offset;
            if is_word_char(ch) {
                if word_start.is_none() {
                    word_start = Some(at);
                }
            } else {
                if let Some(start) = word_start.take() {
                    emit_word(&text[start..at], out);
                }
                if !ch.is_whitespace() {
                    out.push(Token(fnv1a(&text.as_bytes()[at..at + ch.len_utf8()])));
                }
            }
        }
        if let Some(start) = word_start {
            // Trailing word: might continue in the next segment.
            self.pending.push_str(&text[start..]);
        }
    }

    /// End of stream: flush the pending word (if any). The encoder is reset
    /// and reusable afterwards.
    pub fn finish(&mut self, out: &mut Vec<Token>) {
        if !self.pending.is_empty() {
            emit_word(&self.pending, out);
            self.pending.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_deterministic() {
        let t = Tokenizer::new();
        let a = t.encode("Summarize the patient's medication history.");
        let b = t.encode("Summarize the patient's medication history.");
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn count_matches_encode_len() {
        let t = Tokenizer::new();
        for text in [
            "",
            "one",
            "hello, world!",
            "antidisestablishmentarianism",
            "émoji 🦀 and CJK 漢字",
        ] {
            assert_eq!(t.count(text), t.encode(text).len(), "{text:?}");
        }
    }

    #[test]
    fn long_words_split_into_subwords() {
        let t = Tokenizer::new();
        // 28 chars -> ceil(28/6) = 5 pieces.
        assert_eq!(t.count("antidisestablishmentarianism"), 5);
        assert_eq!(t.count("cat"), 1);
    }

    #[test]
    fn punctuation_is_tokenized_separately() {
        let t = Tokenizer::new();
        assert_eq!(t.count("end."), 2);
        assert_eq!(t.count("a,b;c"), 5);
        assert_eq!(t.count("   "), 0);
    }

    #[test]
    fn shared_prefix_yields_shared_token_prefix() {
        let t = Tokenizer::new();
        let base = "Classify the sentiment of the tweet. Respond with one word.";
        let a = t.encode(&format!("{base} Tweet: great day"));
        let b = t.encode(&format!("{base} Tweet: awful day"));
        let common = a.iter().zip(&b).take_while(|(x, y)| x == y).count();
        let base_len = t.count(base);
        assert!(common >= base_len, "the instruction prefix must be shared");
    }

    #[test]
    fn token_rate_is_plausible_for_english() {
        let t = Tokenizer::new();
        let text = "The quick brown fox jumps over the lazy dog near the river bank \
                    while the evening sun sets slowly behind distant mountains";
        let words = text.split_whitespace().count();
        let tokens = t.count(text);
        let rate = tokens as f64 / words as f64;
        assert!((0.9..=1.8).contains(&rate), "rate {rate}");
    }

    #[test]
    fn apostrophes_stay_within_words() {
        let t = Tokenizer::new();
        assert_eq!(t.count("don't"), 1);
    }

    #[test]
    fn encode_into_reuses_the_buffer() {
        let t = Tokenizer::new();
        let mut buf = Vec::new();
        t.encode_into("hello, world!", &mut buf);
        assert_eq!(buf, t.encode("hello, world!"));
        let cap = buf.capacity();
        t.encode_into("tiny", &mut buf);
        assert_eq!(buf, t.encode("tiny"));
        assert_eq!(buf.capacity(), cap, "shrinking input must not reallocate");
    }

    #[test]
    fn pieces_are_borrowed_subslices() {
        // Multibyte text exercises every char-boundary computation.
        let text = "naïveté 🦀🦀🦀 — don't, per-request; 漢字漢字漢字漢字 end.";
        let t = Tokenizer::new();
        assert_eq!(t.count(text), t.encode(text).len());
        let joined_len: usize = Tokenizer::pieces(text).map(str::len).sum();
        assert!(joined_len <= text.len());
    }

    #[test]
    fn streaming_matches_whole_string_for_any_split() {
        let t = Tokenizer::new();
        let text = "Summarize the item: antidisestablishmentarianism, don't rush — 漢字!";
        let whole = t.encode(text);
        for split in 0..=text.len() {
            if !text.is_char_boundary(split) {
                continue;
            }
            let mut enc = StreamingEncoder::new();
            let mut out = Vec::new();
            enc.feed(&text[..split], &mut out);
            enc.feed(&text[split..], &mut out);
            enc.finish(&mut out);
            assert_eq!(out, whole, "split at byte {split}");
        }
    }

    #[test]
    fn streaming_resumes_from_pending_state() {
        let t = Tokenizer::new();
        // Encode "hello world" as "hel" + "lo world", resuming a second
        // encoder from the first's pending snapshot.
        let mut first = StreamingEncoder::new();
        let mut prefix_tokens = Vec::new();
        first.feed("hel", &mut prefix_tokens);
        assert_eq!(first.pending(), "hel");
        assert!(prefix_tokens.is_empty(), "unterminated word stays pending");

        let mut second = StreamingEncoder::new();
        second.reset(first.pending());
        let mut out = prefix_tokens;
        second.feed("lo world", &mut out);
        second.finish(&mut out);
        assert_eq!(out, t.encode("hello world"));
    }

    #[test]
    fn empty_feeds_do_not_terminate_words() {
        let t = Tokenizer::new();
        let mut enc = StreamingEncoder::new();
        let mut out = Vec::new();
        enc.feed("don", &mut out);
        enc.feed("", &mut out);
        enc.feed("'t stop", &mut out);
        enc.finish(&mut out);
        assert_eq!(out, t.encode("don't stop"));
    }
}
