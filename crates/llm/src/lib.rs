//! # spear-llm — deterministic LLM inference simulator
//!
//! The hardware substitution of this reproduction (DESIGN.md §1): a
//! [`spear_core::LlmClient`] backend that models exactly the two quantities
//! the SPEAR paper's evaluation depends on —
//!
//! 1. **latency**, decomposed into per-request overhead, uncached prefill,
//!    cached prefill, and decode, with a vLLM-style block [`cache`]
//!    deciding which prompt tokens are cached, and
//! 2. **task quality**, via a behavioural [`task`] model whose accuracy is
//!    a per-model function of prompt structure (objectives, hints,
//!    specificity, examples, view-derived consistency) minus fusion
//!    penalties.
//!
//! Three calibrated [`profile::ModelProfile`]s stand in for the paper's
//! Qwen2.5-7B-Instruct, Mistral-7B-Instruct, and GPT-4o-mini. Everything is
//! seeded and virtual-clocked, so benchmark tables are bit-reproducible.
//!
//! ```
//! use spear_core::llm::{GenRequest, LlmClient};
//! use spear_llm::{ModelProfile, SimLlm};
//!
//! let llm = SimLlm::new(ModelProfile::qwen25_7b_instruct());
//! let resp = llm
//!     .generate(&GenRequest::structured(
//!         "Classify the sentiment of the tweet. Respond with one word.\n\
//!          Tweet: i hate this awful homework",
//!         "view:sentiment@1#0/v1",
//!     ))
//!     .unwrap();
//! assert_eq!(resp.text, "negative");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Hot-path hygiene: these crates sit on the per-request fast path, where a
// stray clone or to_string() is a real regression, not a style nit.
#![deny(clippy::redundant_clone, clippy::inefficient_to_string)]

pub mod cache;
pub mod clock;
pub mod engine;
pub mod intern;
pub mod memo;
pub mod pool;
pub mod profile;
pub mod task;
pub mod tokenizer;

pub use cache::{
    BlockHasher, CacheStats, PrefixCache, StripedPrefixCache, DEFAULT_BLOCK_SIZE,
    DEFAULT_NUM_SHARDS, SHARED_OWNER,
};
pub use clock::{SimClock, MAX_LANES};
pub use engine::{EngineConfig, SimLlm};
pub use intern::{
    affinity_chain_key, chain_key, InternStats, InternedChain, TokenInterner, CHAIN_SEED,
};
pub use memo::{GenMemo, LeadGuard, Lookup, MemoEntry, MemoStats};
pub use pool::{AllocGrant, BlockPool, PoolExhausted, PoolStats, DEFAULT_POOL_STRIPES};
pub use profile::{ModelProfile, PromptFeatures, QualityWeights, TaskKind};
pub use tokenizer::{StreamingEncoder, Token, Tokenizer};
