//! The behavioural task model.
//!
//! This is the quality half of the DESIGN.md substitution: instead of real
//! model weights, each request is routed to a deterministic task behaviour
//! whose correctness probability is `base_accuracy(task) + prompt-feature
//! bonuses − fusion penalty`, with the Bernoulli draw seeded by
//! `(input item, model, prompt features)` so identical configurations give
//! identical results. The residual error floor comes from genuinely
//! ambiguous items (generator-controlled), which no prompt fixes — matching
//! how prompt refinements move accuracy in the paper without reaching 1.0.

use spear_data::vocab;
use spear_kv::shard::fnv1a;

use crate::profile::{ModelProfile, PromptFeatures, TaskKind};

/// Result of running the task model.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskOutcome {
    /// Generated text.
    pub text: String,
    /// Model confidence in `[0, 1]`.
    pub confidence: f64,
}

/// Route a request to a task. An explicit `options.task` hint wins;
/// otherwise the prompt's wording decides.
#[must_use]
pub fn detect_task(hint: Option<&str>, prompt: &str) -> TaskKind {
    detect_task_lowered(hint, &prompt.to_lowercase())
}

/// Detect the task and run it with one shared case fold of the prompt.
///
/// [`detect_task`] and [`run`] each lowercase the prompt (detection
/// markers, feature scan, word-limit parse, justification check are all
/// case-insensitive); the engine's hot path calls this combined entry
/// point so the fold happens once per request instead of three times.
/// Behaviour is byte-identical to `run(detect_task(hint, prompt), prompt,
/// params)`.
#[must_use]
pub fn detect_and_run(hint: Option<&str>, prompt: &str, params: &TaskParams<'_>) -> TaskOutcome {
    let lower = prompt.to_lowercase();
    run_lowered(detect_task_lowered(hint, &lower), prompt, &lower, params)
}

/// [`detect_task`] over a caller-lowercased prompt.
fn detect_task_lowered(hint: Option<&str>, lower: &str) -> TaskKind {
    if let Some(h) = hint {
        match h {
            "summarize" => return TaskKind::Summarize,
            "classify_sentiment" => return TaskKind::ClassifySentiment,
            "classify_school_negative" => return TaskKind::ClassifySchoolNegative,
            "fused_map_filter" => return TaskKind::FusedMapFilter,
            "fused_filter_map" => return TaskKind::FusedFilterMap,
            "rewrite_prompt" => return TaskKind::RewritePrompt,
            "write_prompt" => return TaskKind::WritePrompt,
            "qa" => return TaskKind::Qa,
            _ => {}
        }
    }
    if lower.contains("--- prompt ---") {
        return TaskKind::RewritePrompt;
    }
    if lower.contains("write a prompt") || lower.contains("generate a prompt") {
        return TaskKind::WritePrompt;
    }
    let summarizes = lower.contains("summarize") || lower.contains("clean up");
    let classifies = lower.contains("sentiment") || lower.contains("classify");
    let school = lower.contains("school");
    // Clinical QA outranks the generic summarize/classify routing: a prompt
    // about medication history is extractive QA even when it says
    // "summarize".
    if !classifies && (lower.contains("medication") || lower.contains("enoxaparin")) {
        return TaskKind::Qa;
    }
    match (summarizes, classifies) {
        (true, true) => {
            if school {
                TaskKind::ClassifySchoolNegative
            } else {
                // Fusion order: which directive appears first.
                let s_at = lower.find("summarize").or_else(|| lower.find("clean up"));
                let c_at = lower.find("sentiment").or_else(|| lower.find("classify"));
                match (s_at, c_at) {
                    (Some(s), Some(c)) if s <= c => TaskKind::FusedMapFilter,
                    _ => TaskKind::FusedFilterMap,
                }
            }
        }
        (true, false) => TaskKind::Summarize,
        (false, true) => {
            if school {
                TaskKind::ClassifySchoolNegative
            } else {
                TaskKind::ClassifySentiment
            }
        }
        (false, false) => {
            if lower.contains("medication") || lower.contains("enoxaparin") {
                TaskKind::Qa
            } else {
                TaskKind::Generic
            }
        }
    }
}

/// Extract the item under analysis: text after the last `Input:` / `Tweet:`
/// / `Text:` marker, else the last non-empty line.
#[must_use]
pub fn extract_input(prompt: &str) -> &str {
    for marker in ["Input:", "Tweet:", "Text:"] {
        if let Some(pos) = prompt.rfind(marker) {
            return prompt[pos + marker.len()..].trim();
        }
    }
    prompt
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .unwrap_or("")
        .trim()
}

/// Parse a word limit from the prompt ("at most N words", "word limit of
/// N", "no more than N words"); `None` when unconstrained.
#[must_use]
pub fn parse_word_limit(prompt: &str) -> Option<usize> {
    parse_word_limit_lowered(&prompt.to_lowercase())
}

/// [`parse_word_limit`] over a caller-lowercased prompt.
fn parse_word_limit_lowered(lower: &str) -> Option<usize> {
    for marker in ["at most ", "word limit of ", "no more than "] {
        if let Some(pos) = lower.find(marker) {
            let rest = &lower[pos + marker.len()..];
            let num: String = rest.chars().take_while(char::is_ascii_digit).collect();
            if let Ok(n) = num.parse::<usize>() {
                if n > 0 {
                    return Some(n);
                }
            }
        }
    }
    None
}

/// Uniform draw in `[0, 1)` from a hash.
fn hash01(x: u64) -> f64 {
    (fnv1a(&x.to_le_bytes()) >> 11) as f64 / (1u64 << 53) as f64
}

/// Strip social-media noise and enforce a word limit — the Map behaviour.
fn clean(text: &str, word_limit: usize) -> String {
    text.split_whitespace()
        .filter(|w| !w.starts_with('@') && !w.starts_with('#') && !w.starts_with("http"))
        .take(word_limit)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Execution parameters the engine passes in.
#[derive(Debug, Clone, Copy)]
pub struct TaskParams<'a> {
    /// Model profile in force.
    pub profile: &'a ModelProfile,
    /// Whether the request carried a structured prompt identity.
    pub structured_identity: bool,
    /// Engine seed (varies runs while keeping them reproducible).
    pub seed: u64,
}

/// Run the task model over `prompt`.
#[must_use]
pub fn run(kind: TaskKind, prompt: &str, params: &TaskParams<'_>) -> TaskOutcome {
    run_lowered(kind, prompt, &prompt.to_lowercase(), params)
}

/// [`run`] with the prompt's case fold supplied by the caller (`lower`
/// MUST be `prompt.to_lowercase()`).
fn run_lowered(kind: TaskKind, prompt: &str, lower: &str, params: &TaskParams<'_>) -> TaskOutcome {
    match kind {
        TaskKind::Summarize => summarize(prompt, lower),
        TaskKind::ClassifySentiment => classify(prompt, lower, params, kind, false),
        TaskKind::ClassifySchoolNegative => classify(prompt, lower, params, kind, true),
        TaskKind::FusedMapFilter | TaskKind::FusedFilterMap => fused(prompt, lower, params, kind),
        TaskKind::RewritePrompt => rewrite_prompt(prompt),
        TaskKind::WritePrompt => write_prompt(prompt),
        TaskKind::Qa => qa(prompt, lower),
        TaskKind::Generic => generic(prompt),
    }
}

fn correctness_probability(
    kind: TaskKind,
    lower: &str,
    params: &TaskParams<'_>,
) -> (f64, PromptFeatures) {
    let features = PromptFeatures::detect_lowered(lower);
    let w = &params.profile.quality;
    let mut p = params.profile.base_accuracy(kind) + w.bonus(&features, params.structured_identity);
    match kind {
        TaskKind::FusedMapFilter => p -= w.fused_map_filter_penalty,
        TaskKind::FusedFilterMap => p -= w.fused_filter_map_penalty,
        _ => {}
    }
    (p.clamp(0.02, 0.995), features)
}

/// Deterministic Bernoulli seeded by item × model × features × run seed.
fn draw(item: &str, model: &str, features: PromptFeatures, seed: u64, salt: u64) -> f64 {
    hash01(
        fnv1a(item.as_bytes())
            ^ fnv1a(model.as_bytes()).rotate_left(17)
            ^ features.fingerprint().rotate_left(31)
            ^ seed.rotate_left(43)
            ^ salt,
    )
}

/// Sentiment decision over the item: returns `(is_negative, lexicon
/// strength)`. A zero-signal item is decided by an item-hash coin — the
/// irreducible error source.
fn lexicon_negative(item: &str) -> (bool, i32) {
    let score = vocab::sentiment_score(item);
    if score == 0 {
        (fnv1a(item.as_bytes()) & 1 == 0, 0)
    } else {
        (score < 0, score.abs())
    }
}

fn confidence_for(p: f64, strength: i32, jitter_seed: u64) -> f64 {
    let jitter = (hash01(jitter_seed) - 0.5) * 0.08;
    (p - 0.18 + 0.06 * f64::from(strength.min(3)) + jitter).clamp(0.05, 0.99)
}

fn classify(
    prompt: &str,
    lower: &str,
    params: &TaskParams<'_>,
    kind: TaskKind,
    school: bool,
) -> TaskOutcome {
    let item = extract_input(prompt);
    let (p, features) = correctness_probability(kind, lower, params);
    let (neg, strength) = lexicon_negative(item);
    let r = draw(item, &params.profile.name, features, params.seed, 0xC1A5);
    let decided_negative = if r < p { neg } else { !neg };
    let text = if school {
        // The refined task: negative AND school-related. Topic detection is
        // reliable (school words are unambiguous); polarity carries the
        // error.
        let matches = decided_negative && vocab::is_school_related(item);
        let label = if matches { "yes" } else { "no" };
        // The Table 3 pipeline also summarizes (the Map half of view V):
        // when the prompt carries a summarize directive, emit the summary
        // after the label so decode cost reflects the real output.
        if lower.contains("summarize") || lower.contains("clean up") {
            let limit = parse_word_limit_lowered(lower).unwrap_or(25);
            format!(
                "{label} :: {} — decided after weighing the overall tone, the \
                 dominant subject, and the school-topic wording of the tweet \
                 against the stated selection criteria",
                clean(item, limit)
            )
        } else {
            label.to_string()
        }
    } else {
        let label = if decided_negative {
            "negative"
        } else {
            "positive"
        };
        // Filters asked for a justification decode a sentence, not a word.
        if lower.contains("justification") {
            format!("{label} — clearly {label} wording about the main subject")
        } else {
            label.to_string()
        }
    };
    TaskOutcome {
        confidence: confidence_for(p, strength, fnv1a(item.as_bytes()) ^ 0xBEEF),
        text,
    }
}

fn summarize(prompt: &str, lower: &str) -> TaskOutcome {
    let item = extract_input(prompt);
    let limit = parse_word_limit_lowered(lower).unwrap_or(25);
    let cleaned = clean(item, limit);
    TaskOutcome {
        confidence: 0.9,
        text: cleaned,
    }
}

fn fused(prompt: &str, lower: &str, params: &TaskParams<'_>, kind: TaskKind) -> TaskOutcome {
    let item = extract_input(prompt);
    let limit = parse_word_limit_lowered(lower).unwrap_or(25);
    let (p, features) = correctness_probability(kind, lower, params);
    let (neg, strength) = lexicon_negative(item);
    let r = draw(item, &params.profile.name, features, params.seed, 0xF05E);
    let decided_negative = if r < p { neg } else { !neg };
    let label = if decided_negative {
        "negative"
    } else {
        "positive"
    };
    let tail = if lower.contains("justification") {
        " — checked"
    } else {
        ""
    };
    TaskOutcome {
        confidence: confidence_for(p, strength, fnv1a(item.as_bytes()) ^ 0xFACE),
        text: format!("{label} :: {}{tail}", clean(item, limit)),
    }
}

/// Parse a fused response back into `(is_negative, summary)`.
#[must_use]
pub fn parse_fused(text: &str) -> Option<(bool, &str)> {
    let (label, summary) = text.split_once(" :: ")?;
    match label {
        "negative" => Some((true, summary)),
        "positive" => Some((false, summary)),
        _ => None,
    }
}

/// Assisted/auto refinement: rewrite the prompt following `--- PROMPT ---`.
///
/// The rewrite preserves a prefix of the original verbatim and *rewrites*
/// (not drops) the remainder — mirroring how LLM rewrites keep the overall
/// scaffold and length but re-word the tail. The preserved fraction depends
/// on how invasive the instruction is: objective-level rewrites (the Auto
/// mode of Table 3, which merges the original instruction with a task
/// objective) restructure more of the text than targeted hints (Assisted).
/// Those fractions (0.82 / 0.92) drive the paper's cache-hit ladder.
fn rewrite_prompt(prompt: &str) -> TaskOutcome {
    let original = prompt
        .split("--- PROMPT ---")
        .nth(1)
        .unwrap_or(prompt)
        .trim();
    let instruction = prompt
        .split("apply this instruction:")
        .nth(1)
        .and_then(|s| s.split('\n').next())
        .unwrap_or("improve clarity")
        .trim();
    let objective_mode = instruction.to_lowercase().contains("objective");
    let keep_fraction = if objective_mode { 82 } else { 92 };

    // Cut at a word boundary near the preservation fraction.
    let cut_target = original.len() * keep_fraction / 100;
    let cut = original[..cut_target.min(original.len())]
        .rfind(char::is_whitespace)
        .unwrap_or(original.len());
    let head = original[..cut].trim_end();
    let tail_words = original[cut..].split_whitespace().count();

    // Re-worded tail of comparable length (filler keeps the token count —
    // and therefore prefill cost — comparable to the original).
    let filler_unit = "ensure the selection criteria and output format above are applied";
    let mut rewritten_tail = String::new();
    let unit_words = filler_unit.split_whitespace().count();
    let mut written = 0;
    while written + unit_words <= tail_words {
        rewritten_tail.push_str(filler_unit);
        rewritten_tail.push(' ');
        written += unit_words;
    }

    let closing = if objective_mode {
        format!("Objective: {instruction}. Respond within the stated word limit.")
    } else {
        format!(
            "Apply careful reasoning to {instruction}. Respond within the \
             stated word limit."
        )
    };
    TaskOutcome {
        text: format!("{head} {rewritten_tail}{closing}"),
        confidence: 0.88,
    }
}

const GENERATED_GUIDELINES: &[&str] = &[
    "Read the entire tweet before deciding and weigh every clause, including \
     trailing qualifiers, emoticons, and elongated words that often carry the \
     author's real attitude.",
    "Treat sarcasm and irony carefully: praise of an obviously bad situation \
     should be read as criticism of that situation rather than genuine approval.",
    "Ignore usernames, hashtags, and links when judging the content, but keep \
     any sentiment they imply about the subject under discussion.",
    "When several subjects appear, decide based on the subject the author \
     spends the most words on, not the one mentioned first.",
    "If the tweet quotes someone else, classify the author's attitude toward \
     the quote rather than the quote itself.",
    "Prefer the literal wording over world knowledge: the author's stated \
     experience decides the label even when it seems unusual.",
    "Keep the cleaned rendering faithful: drop decorations and repair obvious \
     typos without adding, softening, or strengthening any claim.",
    "Return the answer in the requested format with no preamble, no \
     explanation beyond what the format asks for, and no trailing commentary.",
];

/// Agentic rewrite: write a task prompt from scratch given an objective.
/// Models how LLMs produce verbose, guideline-heavy prompts when asked to
/// write one: the output restates the objective and expands it into a full
/// instruction block with a per-item placeholder.
fn write_prompt(prompt: &str) -> TaskOutcome {
    let objective = prompt
        .split("Objective:")
        .nth(1)
        .and_then(|s| s.split('\n').next())
        .unwrap_or("complete the task")
        .trim();
    let mut text = format!(
        "Objective: {objective}.\n\
         You are given one tweet per request. Decide whether it satisfies the \
         objective, summarize the content you relied on, and classify the \
         sentiment where relevant.\nGuidelines:\n"
    );
    for (i, g) in GENERATED_GUIDELINES.iter().take(6).enumerate() {
        text.push_str(&format!("{}. {g}\n", i + 1));
    }
    text.push_str(
        "Answer with the label followed by the cleaned content, using a word \
         limit of 60.\nTweet: {{{{ctx:tweet}}}}",
    );
    TaskOutcome {
        text,
        confidence: 0.85,
    }
}

/// Clinical QA: extract the sentence mentioning the drug; confidence rises
/// with hint/specificity features, enabling the §2 retry pattern.
fn qa(prompt: &str, lower: &str) -> TaskOutcome {
    let features = PromptFeatures::detect_lowered(lower);
    let sentence = prompt
        .split(['.', '\n'])
        .find(|s| s.to_lowercase().contains("enoxaparin") && s.to_lowercase().contains("mg"));
    let mut confidence: f64 = 0.55;
    if features.has_hint {
        confidence += 0.2;
    }
    if features.has_specificity || lower.contains("dosage") || lower.contains("timing") {
        confidence += 0.15;
    }
    match sentence {
        Some(s) => {
            let s = s.trim().trim_start_matches("Notes:").trim();
            TaskOutcome {
                text: format!("Enoxaparin use documented: {}.", s.trim_end_matches('.')),
                confidence: confidence.min(0.97),
            }
        }
        None => TaskOutcome {
            text: "No Enoxaparin use documented in the provided context.".to_string(),
            confidence: (confidence - 0.1).max(0.05),
        },
    }
}

fn generic(prompt: &str) -> TaskOutcome {
    // Fused multi-section requests (the optimizer's GEN fusion appends
    // "Produce one section per requested output, in this order: a, b ...").
    if let Some(rest) = prompt.split("in this order:").nth(1) {
        if prompt.contains("one section per requested output") {
            let labels: Vec<&str> = rest
                .split('.')
                .next()
                .unwrap_or("")
                .split(',')
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .collect();
            if !labels.is_empty() {
                let words = prompt.split_whitespace().count();
                let sections: Vec<String> = labels
                    .iter()
                    .map(|l| {
                        format!(
                            "{l}: the {l} supported by the record of this                              {words}-word request, stated in plain prose"
                        )
                    })
                    .collect();
                return TaskOutcome {
                    text: sections.join("\n===\n"),
                    confidence: 0.82,
                };
            }
        }
    }
    let words = prompt.split_whitespace().count();
    TaskOutcome {
        text: format!(
            "The requested output, stated in plain prose from the provided              {words}-word material with the relevant details restated for              the reader."
        ),
        confidence: 0.7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qwen_params(seed: u64) -> (ModelProfile, u64) {
        (ModelProfile::qwen25_7b_instruct(), seed)
    }

    fn run_with(kind: TaskKind, prompt: &str, structured: bool, seed: u64) -> TaskOutcome {
        let (profile, seed) = qwen_params(seed);
        run(
            kind,
            prompt,
            &TaskParams {
                profile: &profile,
                structured_identity: structured,
                seed,
            },
        )
    }

    #[test]
    fn detection_routes_by_hint_and_wording() {
        assert_eq!(detect_task(Some("summarize"), ""), TaskKind::Summarize);
        assert_eq!(
            detect_task(None, "Classify the sentiment of the tweet."),
            TaskKind::ClassifySentiment
        );
        assert_eq!(
            detect_task(None, "Summarize the tweet, then classify its sentiment."),
            TaskKind::FusedMapFilter
        );
        assert_eq!(
            detect_task(None, "Classify the sentiment, then summarize the tweet."),
            TaskKind::FusedFilterMap
        );
        assert_eq!(
            detect_task(
                None,
                "Classify whether the tweet is school related and negative."
            ),
            TaskKind::ClassifySchoolNegative
        );
        assert_eq!(
            detect_task(None, "Rewrite this.\n--- PROMPT ---\nold"),
            TaskKind::RewritePrompt
        );
        assert_eq!(
            detect_task(None, "Please write a prompt for ..."),
            TaskKind::WritePrompt
        );
        assert_eq!(
            detect_task(None, "Highlight the medication history."),
            TaskKind::Qa
        );
        assert_eq!(detect_task(None, "hello"), TaskKind::Generic);
    }

    #[test]
    fn detect_and_run_matches_the_two_step_path() {
        let (profile, seed) = qwen_params(5);
        let params = TaskParams {
            profile: &profile,
            structured_identity: true,
            seed,
        };
        for prompt in [
            "Summarize the tweet. Use at most 10 words.\nTweet: SO much HOMEWORK tonight ugh",
            "Classify the sentiment. Provide a justification.\nTweet: GREAT day",
            "Summarize the tweet, then classify its sentiment. A word limit of 12.\nTweet: rain",
            "Highlight any use of Enoxaparin. Think STEP BY STEP.\n\
             Notes: enoxaparin 40 mg SC daily.",
            "hello there",
        ] {
            let kind = detect_task(None, prompt);
            assert_eq!(
                detect_and_run(None, prompt, &params),
                run(kind, prompt, &params),
                "{prompt}"
            );
        }
    }

    #[test]
    fn input_extraction_prefers_markers() {
        assert_eq!(extract_input("Classify.\nTweet: rain again"), "rain again");
        assert_eq!(
            extract_input("a\nInput: first\nInput: second"),
            "second",
            "last marker wins"
        );
        assert_eq!(extract_input("only line"), "only line");
    }

    #[test]
    fn word_limit_parsing() {
        assert_eq!(parse_word_limit("use at most 30 words"), Some(30));
        assert_eq!(parse_word_limit("a word limit of 12 applies"), Some(12));
        assert_eq!(parse_word_limit("no more than 5 words"), Some(5));
        assert_eq!(parse_word_limit("unconstrained"), None);
    }

    #[test]
    fn classify_is_deterministic_and_polarity_driven() {
        let prompt =
            "Classify the sentiment. Respond with one word.\nTweet: i hate this awful rain";
        let a = run_with(TaskKind::ClassifySentiment, prompt, false, 1);
        let b = run_with(TaskKind::ClassifySentiment, prompt, false, 1);
        assert_eq!(a, b);
        assert_eq!(a.text, "negative");
    }

    #[test]
    fn better_prompts_raise_accuracy_over_a_corpus() {
        // Over many items, a prompt with objective+structure flips fewer
        // decisions than the plain one.
        let base = "Classify the sentiment. Respond with one word.";
        let rich = "Objective: identify negative tweets. Classify the sentiment. \
                    Be specific. Respond with one word.";
        let mut plain_correct = 0;
        let mut rich_correct = 0;
        let n = 600;
        for i in 0..n {
            let negative = i % 2 == 0;
            let word = if negative { "awful" } else { "great" };
            let tweet = format!("what a {word} day number {i}");
            for (prompt_text, counter) in [(base, &mut plain_correct), (rich, &mut rich_correct)] {
                let p = format!("{prompt_text}\nTweet: {tweet}");
                let out = run_with(TaskKind::ClassifySentiment, &p, prompt_text == rich, 7);
                if (out.text == "negative") == negative {
                    *counter += 1;
                }
            }
        }
        assert!(
            rich_correct > plain_correct,
            "rich {rich_correct} vs plain {plain_correct}"
        );
    }

    #[test]
    fn fusion_penalty_lowers_accuracy() {
        let mut seq_correct = 0;
        let mut fused_correct = 0;
        let n = 800;
        for i in 0..n {
            let negative = i % 2 == 0;
            let word = if negative { "terrible" } else { "wonderful" };
            let tweet = format!("such a {word} commute today {i}");
            let seq_prompt = format!("Classify the sentiment.\nTweet: {tweet}");
            let fused_prompt =
                format!("Summarize the tweet, then classify its sentiment.\nTweet: {tweet}");
            let s = run_with(TaskKind::ClassifySentiment, &seq_prompt, true, 3);
            let f = run_with(TaskKind::FusedMapFilter, &fused_prompt, true, 3);
            if (s.text == "negative") == negative {
                seq_correct += 1;
            }
            if parse_fused(&f.text).map(|(n, _)| n) == Some(negative) {
                fused_correct += 1;
            }
        }
        let drop = (seq_correct - fused_correct) as f64 / n as f64;
        assert!(
            (0.02..=0.09).contains(&drop),
            "fusion accuracy drop {drop} (seq {seq_correct}, fused {fused_correct})"
        );
    }

    #[test]
    fn school_task_requires_both_conditions() {
        let neg_school = "Classify: school-related and negative?\nTweet: i hate this exam so much";
        let neg_other = "Classify: school-related and negative?\nTweet: i hate this rain so much";
        let a = run_with(TaskKind::ClassifySchoolNegative, neg_school, true, 1);
        let b = run_with(TaskKind::ClassifySchoolNegative, neg_other, true, 1);
        assert_eq!(a.text, "yes");
        assert_eq!(b.text, "no");
    }

    #[test]
    fn summarize_cleans_noise_and_respects_limit() {
        let out = run_with(
            TaskKind::Summarize,
            "Summarize. Use at most 4 words.\nTweet: @bob terrible day at work #fml http://t.co/x",
            false,
            1,
        );
        assert_eq!(out.text, "terrible day at work");
    }

    #[test]
    fn rewrite_preserves_most_of_the_prefix() {
        let original = "Classify the sentiment of the tweet as positive or negative. \
                        Consider the overall tone, sarcasm, and emphatic punctuation. \
                        Respond with exactly one word and a word limit of one. \
                        Tweet: {{ctx:tweet}}";
        let meta = format!(
            "Rewrite the following prompt. Keep its task and constraints; \
             apply this instruction: focus on school-related content\n--- PROMPT ---\n{original}"
        );
        let out = run_with(TaskKind::RewritePrompt, &meta, false, 1);
        let common = original
            .chars()
            .zip(out.text.chars())
            .take_while(|(a, b)| a == b)
            .count();
        let frac = common as f64 / original.chars().count() as f64;
        assert!((0.75..0.95).contains(&frac), "prefix preservation {frac}");
        assert!(out.text.contains("school-related"));
    }

    #[test]
    fn write_prompt_embeds_objective_and_placeholder() {
        let out = run_with(
            TaskKind::WritePrompt,
            "Please write a prompt.\nObjective: find negative school tweets",
            false,
            1,
        );
        assert!(out.text.contains("Objective: find negative school tweets"));
        assert!(out.text.contains("{{ctx:tweet}}"));
    }

    #[test]
    fn qa_extracts_drug_sentence_and_hints_raise_confidence() {
        let notes = "Medications: enoxaparin 40 mg SC daily for DVT prophylaxis. \
                     Also on lisinopril.";
        let plain = format!("Highlight any use of Enoxaparin.\nNotes: {notes}");
        let hinted = format!(
            "Highlight any use of Enoxaparin. Think step by step about dosage \
             and timing.\nNotes: {notes}"
        );
        let a = run_with(TaskKind::Qa, &plain, false, 1);
        let b = run_with(TaskKind::Qa, &hinted, false, 1);
        assert!(a.text.contains("40 mg"));
        assert!(b.confidence > a.confidence);

        let missing = run_with(
            TaskKind::Qa,
            "Highlight Enoxaparin.\nNotes: on aspirin",
            false,
            1,
        );
        assert!(missing.text.contains("No Enoxaparin"));
    }

    #[test]
    fn parse_fused_roundtrip() {
        assert_eq!(
            parse_fused("negative :: short text"),
            Some((true, "short text"))
        );
        assert_eq!(parse_fused("positive :: x"), Some((false, "x")));
        assert_eq!(parse_fused("garbage"), None);
    }
}
