//! Per-model cost and quality profiles.
//!
//! The simulator reproduces the two quantities every experiment in the paper
//! depends on: **latency** (split into per-request overhead, uncached
//! prefill, cached prefill, and decode — the same decomposition vLLM's
//! prefix caching exploits) and **task quality** (accuracy as a function of
//! prompt structure). The constants below are calibrated to a 7B model on a
//! single RTX 3090 (the paper's testbed) and an API-served small model for
//! GPT-4o-mini; DESIGN.md documents the substitution.

use serde::{Deserialize, Serialize};

pub use spear_core::features::PromptFeatures;

/// What a generation request is semantically asking for. Routed from
/// `GenOptions::task` or detected from prompt markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Clean up / summarize a short text (the Map stage).
    Summarize,
    /// Binary sentiment classification (the Filter stage).
    ClassifySentiment,
    /// The refined task of Table 3: negative AND school-related.
    ClassifySchoolNegative,
    /// One call doing Map then Filter (fused `Map→Filter`).
    FusedMapFilter,
    /// One call doing Filter then Map (fused `Filter→Map`).
    FusedFilterMap,
    /// Rewrite an existing prompt (assisted refinement).
    RewritePrompt,
    /// Write a prompt from scratch given an objective (agentic rewrite).
    WritePrompt,
    /// Clinical question answering over notes.
    Qa,
    /// Anything else.
    Generic,
}

/// Additive accuracy/confidence bonuses for prompt features (paper §4.1's
/// premise: instructions, hints, examples, and objectives measurably move
/// output quality).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityWeights {
    /// Prompt states a high-level task objective.
    pub objective_bonus: f64,
    /// Prompt demands specificity ("be specific", "every relevant detail").
    pub specificity_bonus: f64,
    /// Prompt carries a reasoning hint ("think step by step").
    pub hint_bonus: f64,
    /// Prompt embeds a worked example.
    pub example_bonus: f64,
    /// Prompt derives from a validated view (structural-consistency bonus:
    /// §5, view reuse "promotes structural consistency, reduces errors").
    pub consistency_bonus: f64,
    /// Accuracy penalty when one call fuses Map→Filter semantics.
    pub fused_map_filter_penalty: f64,
    /// Accuracy penalty when one call fuses Filter→Map semantics.
    pub fused_filter_map_penalty: f64,
}

impl QualityWeights {
    /// Total accuracy bonus for the detected `features`, plus the
    /// consistency bonus when the prompt carried a structured (view-derived)
    /// identity.
    #[must_use]
    pub fn bonus(&self, features: &PromptFeatures, structured_identity: bool) -> f64 {
        let mut b = 0.0;
        if features.has_objective {
            b += self.objective_bonus;
        }
        if features.has_specificity {
            b += self.specificity_bonus;
        }
        if features.has_hint {
            b += self.hint_bonus;
        }
        if features.has_example {
            b += self.example_bonus;
        }
        if structured_identity {
            b += self.consistency_bonus;
        }
        b
    }
}

/// A simulated model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model name reported in responses and traces.
    pub name: String,
    /// Fixed per-request cost, µs (scheduler + sampler setup; network for
    /// API models).
    pub request_overhead_us: f64,
    /// Prefill cost per *uncached* prompt token, µs.
    pub prefill_us_per_token: f64,
    /// Prefill cost per *cached* prompt token, µs (block reuse is not
    /// entirely free: blocks are re-linked and attention still reads them).
    pub cached_prefill_us_per_token: f64,
    /// Decode cost per generated token, µs.
    pub decode_us_per_token: f64,
    /// Quality weights.
    pub quality: QualityWeights,
}

impl ModelProfile {
    /// Simulated Qwen2.5-7B-Instruct on an RTX 3090 under vLLM — the
    /// paper's primary model (Table 3, Table 4, Figure 1).
    #[must_use]
    pub fn qwen25_7b_instruct() -> Self {
        Self {
            name: "qwen2.5-7b-instruct-sim".to_string(),
            request_overhead_us: 100_000.0,
            prefill_us_per_token: 1_000.0,
            cached_prefill_us_per_token: 20.0,
            decode_us_per_token: 25_000.0,
            quality: QualityWeights {
                objective_bonus: 0.09,
                specificity_bonus: 0.03,
                hint_bonus: 0.02,
                example_bonus: 0.03,
                consistency_bonus: 0.02,
                fused_map_filter_penalty: 0.05,
                fused_filter_map_penalty: 0.030,
            },
        }
    }

    /// Simulated Mistral-7B-Instruct (Figure 1's second open model):
    /// similar hardware costs, weaker instruction following, larger fusion
    /// penalties.
    #[must_use]
    pub fn mistral_7b_instruct() -> Self {
        Self {
            name: "mistral-7b-instruct-sim".to_string(),
            request_overhead_us: 110_000.0,
            prefill_us_per_token: 1_050.0,
            cached_prefill_us_per_token: 22.0,
            decode_us_per_token: 27_000.0,
            quality: QualityWeights {
                objective_bonus: 0.07,
                specificity_bonus: 0.03,
                hint_bonus: 0.02,
                example_bonus: 0.04,
                consistency_bonus: 0.02,
                fused_map_filter_penalty: 0.08,
                fused_filter_map_penalty: 0.060,
            },
        }
    }

    /// Simulated GPT-4o-mini (Figure 1's proprietary model): API-served —
    /// large fixed overhead, fast tokens, strongest instruction following,
    /// smallest fusion penalties.
    #[must_use]
    pub fn gpt_4o_mini() -> Self {
        Self {
            name: "gpt-4o-mini-sim".to_string(),
            request_overhead_us: 400_000.0,
            prefill_us_per_token: 120.0,
            cached_prefill_us_per_token: 12.0,
            decode_us_per_token: 12_000.0,
            quality: QualityWeights {
                objective_bonus: 0.08,
                specificity_bonus: 0.03,
                hint_bonus: 0.02,
                example_bonus: 0.02,
                consistency_bonus: 0.02,
                fused_map_filter_penalty: 0.04,
                fused_filter_map_penalty: 0.003,
            },
        }
    }

    /// All three evaluation models, in the paper's order.
    #[must_use]
    pub fn evaluation_models() -> Vec<ModelProfile> {
        vec![
            Self::qwen25_7b_instruct(),
            Self::mistral_7b_instruct(),
            Self::gpt_4o_mini(),
        ]
    }

    /// Base accuracy for a task before prompt-feature effects. The refined
    /// school-negative task is markedly harder than plain sentiment — its
    /// 0.70 base is Table 3's Static Prompt F1.
    #[must_use]
    pub fn base_accuracy(&self, task: TaskKind) -> f64 {
        let by_model = match self.name.as_str() {
            "qwen2.5-7b-instruct-sim" => (0.90, 0.70),
            "mistral-7b-instruct-sim" => (0.85, 0.65),
            "gpt-4o-mini-sim" => (0.92, 0.74),
            _ => (0.85, 0.65),
        };
        let (sentiment, school) = by_model;
        match task {
            TaskKind::ClassifySentiment | TaskKind::FusedMapFilter | TaskKind::FusedFilterMap => {
                sentiment
            }
            TaskKind::ClassifySchoolNegative => school,
            // Non-classification tasks have no binary accuracy; give a
            // high nominal value used only for confidence shaping.
            TaskKind::Summarize
            | TaskKind::RewritePrompt
            | TaskKind::WritePrompt
            | TaskKind::Qa
            | TaskKind::Generic => 0.92,
        }
    }

    /// Latency of one request, µs.
    #[must_use]
    pub fn latency_us(&self, uncached_prompt: u64, cached_prompt: u64, completion: u64) -> f64 {
        self.request_overhead_us
            + uncached_prompt as f64 * self.prefill_us_per_token
            + cached_prompt as f64 * self.cached_prefill_us_per_token
            + completion as f64 * self.decode_us_per_token
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_decomposes_linearly() {
        // The Table 3 shape: a ~450-token instruction with a ~37-token
        // per-item suffix and ~46 decoded tokens gives a ≈1.3× speedup when
        // the instruction prefix is served from cache — the Manual
        // Refinement row relative to Static.
        let p = ModelProfile::qwen25_7b_instruct();
        let cold = p.latency_us(450 + 37, 0, 46);
        let warm = p.latency_us(37, 450, 46);
        let expected_cold = 100_000.0 + 487.0 * 1_000.0 + 46.0 * 25_000.0;
        assert!((cold - expected_cold).abs() < 1.0, "cold={cold}");
        let speedup = cold / warm;
        assert!((1.25..=1.42).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn base_accuracy_orders_tasks_and_models() {
        for m in ModelProfile::evaluation_models() {
            assert!(
                m.base_accuracy(TaskKind::ClassifySentiment)
                    > m.base_accuracy(TaskKind::ClassifySchoolNegative),
                "refined task is harder for {}",
                m.name
            );
        }
        let q = ModelProfile::qwen25_7b_instruct();
        assert!(
            (q.base_accuracy(TaskKind::ClassifySchoolNegative) - 0.70).abs() < 1e-9,
            "Table 3 static baseline"
        );
    }

    #[test]
    fn feature_detection_matches_markers() {
        let f = PromptFeatures::detect(
            "Objective: find school tweets. Be specific. Think step by step.\n\
             Example:\nInput: x\nOutput: y\nUse at most 30 words.",
        );
        assert!(f.has_objective && f.has_specificity && f.has_hint);
        assert!(f.has_example && f.has_word_limit);
        assert_eq!(
            PromptFeatures::detect("plain text"),
            PromptFeatures::default()
        );
    }

    #[test]
    fn bonus_reproduces_table3_f1_ladder() {
        let w = ModelProfile::qwen25_7b_instruct().quality;
        let base = 0.70;
        let static_p = w.bonus(&PromptFeatures::default(), false);
        let agentic = w.bonus(
            &PromptFeatures {
                has_objective: true,
                ..Default::default()
            },
            false,
        );
        let manual = w.bonus(
            &PromptFeatures {
                has_specificity: true,
                ..Default::default()
            },
            true,
        );
        let assisted = w.bonus(
            &PromptFeatures {
                has_hint: true,
                ..Default::default()
            },
            true,
        );
        let auto = w.bonus(
            &PromptFeatures {
                has_objective: true,
                ..Default::default()
            },
            true,
        );
        assert!((base + static_p - 0.70).abs() < 1e-9);
        assert!((base + agentic - 0.79).abs() < 1e-9);
        assert!((base + manual - 0.75).abs() < 1e-9);
        assert!((base + assisted - 0.74).abs() < 1e-9);
        assert!((base + auto - 0.81).abs() < 1e-9);
    }

    #[test]
    fn fingerprint_distinguishes_feature_sets() {
        let a = PromptFeatures::detect("plain");
        let b = PromptFeatures::detect("think step by step");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
