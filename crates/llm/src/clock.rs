//! Virtual time.
//!
//! The simulator charges latency to a [`SimClock`] instead of sleeping:
//! benchmark "Time (s)" columns are then deterministic functions of token
//! counts and cache behaviour, reproducible on any machine — which is the
//! point of reproducing the paper's *shape* rather than its wall clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically advancing virtual clock (microsecond resolution).
#[derive(Debug, Default)]
pub struct SimClock {
    micros: AtomicU64,
}

impl SimClock {
    /// A clock at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance by `d`.
    pub fn advance(&self, d: Duration) {
        self.micros.fetch_add(
            u64::try_from(d.as_micros()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// Total virtual time elapsed.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        Duration::from_micros(self.micros.load(Ordering::Relaxed))
    }

    /// Reset to zero (between benchmark configurations).
    pub fn reset(&self) {
        self.micros.store(0, Ordering::Relaxed);
    }

    /// Replace a just-charged duration with a corrected (smaller) one —
    /// used by batched execution to amortize overhead after the fact.
    pub(crate) fn advance_signed_rollback(
        &self,
        charged: Duration,
        corrected: Duration,
    ) {
        let delta = charged.saturating_sub(corrected);
        let d = u64::try_from(delta.as_micros()).unwrap_or(u64::MAX);
        // Saturating: the clock never goes negative even if misused.
        let mut current = self.micros.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(d);
            match self.micros.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_resets() {
        let c = SimClock::new();
        assert_eq!(c.elapsed(), Duration::ZERO);
        c.advance(Duration::from_millis(3));
        c.advance(Duration::from_micros(500));
        assert_eq!(c.elapsed(), Duration::from_micros(3_500));
        c.reset();
        assert_eq!(c.elapsed(), Duration::ZERO);
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let c = std::sync::Arc::new(SimClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(Duration::from_micros(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.elapsed(), Duration::from_micros(4000));
    }
}
