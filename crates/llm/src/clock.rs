//! Virtual time.
//!
//! The simulator charges latency to a [`SimClock`] instead of sleeping:
//! benchmark "Time (s)" columns are then deterministic functions of token
//! counts and cache behaviour, reproducible on any machine — which is the
//! point of reproducing the paper's *shape* rather than its wall clock.
//!
//! ## Worker lanes
//!
//! Under concurrent batch execution each worker thread charges time to its
//! own **lane** (selected by [`spear_core::scope::lane`]), so two
//! orthogonal quantities stay observable:
//!
//! - [`SimClock::elapsed`] — the sum over lanes: total engine busy time,
//!   identical to the single-threaded meaning (all work lands in lane 0
//!   outside a batch scope);
//! - [`SimClock::max_lane_elapsed`] — the busiest lane: the simulated
//!   *makespan* of a parallel run, i.e. the wall-clock a deployment with
//!   one engine replica per worker would observe.
//!
//! Because the batch executor assigns jobs to lanes statically, both
//! quantities are deterministic for a fixed workload and worker count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Maximum number of independent lanes; lane ids wrap modulo this. 64 is
/// far above any realistic worker-pool size and keeps the clock allocation
/// fixed-size.
pub const MAX_LANES: usize = 64;

/// A monotonically advancing virtual clock (microsecond resolution) with
/// per-worker lanes.
#[derive(Debug)]
pub struct SimClock {
    lanes: Vec<AtomicU64>,
}

impl Default for SimClock {
    fn default() -> Self {
        Self {
            lanes: (0..MAX_LANES).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

impl SimClock {
    /// A clock at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lane_slot(&self) -> &AtomicU64 {
        &self.lanes[spear_core::scope::lane() % MAX_LANES]
    }

    /// Advance the current thread's lane by `d`.
    pub fn advance(&self, d: Duration) {
        self.lane_slot().fetch_add(
            u64::try_from(d.as_micros()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// Total virtual time elapsed, summed across all lanes (aggregate
    /// engine busy time).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        Duration::from_micros(
            self.lanes
                .iter()
                .map(|l| l.load(Ordering::Relaxed))
                .fold(0u64, u64::saturating_add),
        )
    }

    /// Virtual time charged to one lane.
    #[must_use]
    pub fn lane_elapsed(&self, lane: usize) -> Duration {
        Duration::from_micros(self.lanes[lane % MAX_LANES].load(Ordering::Relaxed))
    }

    /// The busiest lane's time: the simulated makespan of a parallel run.
    #[must_use]
    pub fn max_lane_elapsed(&self) -> Duration {
        Duration::from_micros(
            self.lanes
                .iter()
                .map(|l| l.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
        )
    }

    /// Reset every lane to zero (between benchmark configurations).
    pub fn reset(&self) {
        for lane in &self.lanes {
            lane.store(0, Ordering::Relaxed);
        }
    }

    /// Replace a just-charged duration with a corrected (smaller) one —
    /// used by batched execution to amortize overhead after the fact.
    /// Operates on the calling thread's lane, where the charge landed.
    pub(crate) fn advance_signed_rollback(&self, charged: Duration, corrected: Duration) {
        let delta = charged.saturating_sub(corrected);
        let d = u64::try_from(delta.as_micros()).unwrap_or(u64::MAX);
        let slot = self.lane_slot();
        // Saturating: the clock never goes negative even if misused.
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(d);
            match slot.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_resets() {
        let c = SimClock::new();
        assert_eq!(c.elapsed(), Duration::ZERO);
        c.advance(Duration::from_millis(3));
        c.advance(Duration::from_micros(500));
        assert_eq!(c.elapsed(), Duration::from_micros(3_500));
        c.reset();
        assert_eq!(c.elapsed(), Duration::ZERO);
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let c = std::sync::Arc::new(SimClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(Duration::from_micros(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.elapsed(), Duration::from_micros(4000));
    }

    #[test]
    fn lanes_split_by_scope_and_merge_in_elapsed() {
        let c = SimClock::new();
        c.advance(Duration::from_micros(100)); // lane 0 (ambient)
        {
            let _s = spear_core::scope::enter(1, 3);
            c.advance(Duration::from_micros(250));
        }
        {
            let _s = spear_core::scope::enter(2, 5);
            c.advance(Duration::from_micros(50));
        }
        assert_eq!(c.lane_elapsed(0), Duration::from_micros(100));
        assert_eq!(c.lane_elapsed(3), Duration::from_micros(250));
        assert_eq!(c.lane_elapsed(5), Duration::from_micros(50));
        assert_eq!(c.elapsed(), Duration::from_micros(400));
        assert_eq!(c.max_lane_elapsed(), Duration::from_micros(250));
        c.reset();
        assert_eq!(c.max_lane_elapsed(), Duration::ZERO);
    }

    #[test]
    fn rollback_hits_the_charging_lane() {
        let c = SimClock::new();
        let _s = spear_core::scope::enter(1, 7);
        c.advance(Duration::from_micros(1000));
        c.advance_signed_rollback(Duration::from_micros(1000), Duration::from_micros(400));
        assert_eq!(c.lane_elapsed(7), Duration::from_micros(400));
        assert_eq!(c.lane_elapsed(0), Duration::ZERO);
    }

    #[test]
    fn lane_ids_wrap() {
        let c = SimClock::new();
        let _s = spear_core::scope::enter(1, MAX_LANES + 2);
        c.advance(Duration::from_micros(9));
        assert_eq!(c.lane_elapsed(2), Duration::from_micros(9));
    }
}
