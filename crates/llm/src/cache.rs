//! Block-based radix prefix cache, modelled on vLLM's automatic prefix
//! caching (paper refs \[9\], \[16\]).
//!
//! Token streams are grouped into fixed-size blocks; each cached block is a
//! node in a radix tree keyed by `(parent node, block content hash)`. A
//! lookup walks the tree from the root and returns how many *tokens* of the
//! request's prefix are already resident — those tokens skip (almost all of)
//! the prefill cost. Insertion adds the request's full blocks; when the
//! cache exceeds its block capacity, least-recently-used **leaf** blocks are
//! evicted, which mirrors vLLM: a block can only be freed once no longer
//! block extends it.

use std::collections::HashMap;

use spear_kv::shard::fnv1a;

use crate::tokenizer::Token;

/// Default tokens per block (vLLM's default).
pub const DEFAULT_BLOCK_SIZE: usize = 16;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups performed.
    pub lookups: u64,
    /// Total tokens across all lookups.
    pub lookup_tokens: u64,
    /// Tokens served from cache across all lookups.
    pub hit_tokens: u64,
    /// Blocks inserted.
    pub inserted_blocks: u64,
    /// Blocks evicted.
    pub evicted_blocks: u64,
}

impl CacheStats {
    /// Overall token hit rate in `[0, 1]`; `None` before any lookup tokens.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        if self.lookup_tokens == 0 {
            None
        } else {
            Some(self.hit_tokens as f64 / self.lookup_tokens as f64)
        }
    }
}

#[derive(Debug)]
struct Node {
    parent: u64,
    block_hash: u64,
    children: u32,
    last_used: u64,
}

/// The prefix cache. Not internally synchronized — the engine wraps it in a
/// mutex (one cache per simulated GPU).
#[derive(Debug)]
pub struct PrefixCache {
    block_size: usize,
    capacity_blocks: usize,
    /// `(parent id, block hash) -> node id`
    index: HashMap<(u64, u64), u64>,
    nodes: HashMap<u64, Node>,
    next_id: u64,
    tick: u64,
    stats: CacheStats,
}

/// Root sentinel (not stored in `nodes`).
const ROOT: u64 = 0;

impl PrefixCache {
    /// Create a cache holding at most `capacity_blocks` blocks of
    /// `block_size` tokens.
    #[must_use]
    pub fn new(block_size: usize, capacity_blocks: usize) -> Self {
        Self {
            block_size: block_size.max(1),
            capacity_blocks: capacity_blocks.max(1),
            index: HashMap::new(),
            nodes: HashMap::new(),
            next_id: 1,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// A cache with vLLM-like defaults (16-token blocks, 64Ki blocks ≈ 1M
    /// tokens — far more than any benchmark working set, so eviction only
    /// matters when configured smaller).
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(DEFAULT_BLOCK_SIZE, 64 * 1024)
    }

    fn hash_block(block: &[Token]) -> u64 {
        let mut bytes = Vec::with_capacity(block.len() * 8);
        for t in block {
            bytes.extend_from_slice(&t.0.to_le_bytes());
        }
        fnv1a(&bytes)
    }

    /// How many tokens of `tokens`' prefix are cached. Touches the matched
    /// path (LRU refresh).
    pub fn lookup(&mut self, tokens: &[Token]) -> usize {
        self.tick += 1;
        self.stats.lookups += 1;
        self.stats.lookup_tokens += tokens.len() as u64;
        let mut parent = ROOT;
        let mut matched_blocks = 0usize;
        for block in tokens.chunks_exact(self.block_size) {
            let key = (parent, Self::hash_block(block));
            match self.index.get(&key) {
                Some(&id) => {
                    if let Some(node) = self.nodes.get_mut(&id) {
                        node.last_used = self.tick;
                    }
                    parent = id;
                    matched_blocks += 1;
                }
                None => break,
            }
        }
        let hit = matched_blocks * self.block_size;
        self.stats.hit_tokens += hit as u64;
        hit
    }

    /// Register `tokens`' full blocks in the cache (the trailing partial
    /// block is never cached, as in vLLM).
    pub fn insert(&mut self, tokens: &[Token]) {
        self.tick += 1;
        let mut parent = ROOT;
        for block in tokens.chunks_exact(self.block_size) {
            let key = (parent, Self::hash_block(block));
            let id = match self.index.get(&key) {
                Some(&id) => {
                    if let Some(node) = self.nodes.get_mut(&id) {
                        node.last_used = self.tick;
                    }
                    id
                }
                None => {
                    self.evict_to_fit();
                    let id = self.next_id;
                    self.next_id += 1;
                    self.index.insert(key, id);
                    self.nodes.insert(
                        id,
                        Node {
                            parent,
                            block_hash: key.1,
                            children: 0,
                            last_used: self.tick,
                        },
                    );
                    if parent != ROOT {
                        if let Some(p) = self.nodes.get_mut(&parent) {
                            p.children += 1;
                        }
                    }
                    self.stats.inserted_blocks += 1;
                    id
                }
            };
            parent = id;
        }
    }

    /// Evict LRU leaves until there is room for one more block. O(n) per
    /// eviction — acceptable because eviction is rare at benchmark working
    /// set sizes and the cache is bounded.
    fn evict_to_fit(&mut self) {
        while self.nodes.len() >= self.capacity_blocks {
            let victim = self
                .nodes
                .iter()
                .filter(|(_, n)| n.children == 0)
                .min_by_key(|(_, n)| n.last_used)
                .map(|(&id, _)| id);
            let Some(id) = victim else {
                return; // no leaf (cannot happen in a tree), bail out
            };
            let node = self.nodes.remove(&id).expect("victim exists");
            self.index.remove(&(node.parent, node.block_hash));
            if node.parent != ROOT {
                if let Some(p) = self.nodes.get_mut(&node.parent) {
                    p.children = p.children.saturating_sub(1);
                }
            }
            self.stats.evicted_blocks += 1;
        }
    }

    /// Current number of resident blocks.
    #[must_use]
    pub fn len_blocks(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Block size in tokens.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop all blocks (statistics are retained).
    pub fn clear(&mut self) {
        self.index.clear();
        self.nodes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::Tokenizer;

    fn toks(n: usize, salt: u64) -> Vec<Token> {
        (0..n).map(|i| Token(i as u64 * 7919 + salt)).collect()
    }

    #[test]
    fn cold_lookup_misses_then_hits_after_insert() {
        let mut c = PrefixCache::new(4, 1024);
        let t = toks(16, 0);
        assert_eq!(c.lookup(&t), 0);
        c.insert(&t);
        assert_eq!(c.lookup(&t), 16);
        assert_eq!(c.len_blocks(), 4);
    }

    #[test]
    fn partial_trailing_block_is_not_cached() {
        let mut c = PrefixCache::new(4, 1024);
        let t = toks(10, 0); // 2 full blocks + 2 tokens
        c.insert(&t);
        assert_eq!(c.lookup(&t), 8);
        assert_eq!(c.len_blocks(), 2);
    }

    #[test]
    fn shared_prefix_divergent_suffix() {
        let mut c = PrefixCache::new(4, 1024);
        let mut a = toks(12, 0);
        let mut b = a.clone();
        a.extend(toks(8, 100));
        b.extend(toks(8, 200));
        c.insert(&a);
        // b shares the first 12 tokens = 3 full blocks.
        assert_eq!(c.lookup(&b), 12);
        c.insert(&b);
        assert_eq!(c.lookup(&b), 20);
        // a is still fully resident.
        assert_eq!(c.lookup(&a), 20);
    }

    #[test]
    fn block_boundary_alignment_matters() {
        // Prefix sharing is block-granular: a one-token shift breaks reuse.
        let mut c = PrefixCache::new(4, 1024);
        let a = toks(16, 0);
        c.insert(&a);
        let mut shifted = vec![Token(999)];
        shifted.extend_from_slice(&a[..15]);
        assert_eq!(c.lookup(&shifted), 0);
    }

    #[test]
    fn eviction_is_lru_and_leaf_first() {
        // Capacity 4 blocks; insert two independent 2-block streams, then a
        // third: the least recently used stream's blocks go first.
        let mut c = PrefixCache::new(4, 4);
        let a = toks(8, 1);
        let b = toks(8, 2);
        c.insert(&a);
        c.insert(&b);
        assert_eq!(c.lookup(&a), 8, "refresh a; b becomes LRU");
        let d = toks(8, 3);
        c.insert(&d);
        assert_eq!(c.lookup(&b), 0, "b was evicted");
        assert_eq!(c.lookup(&a), 8, "a survived");
        assert!(c.stats().evicted_blocks >= 2);
        assert!(c.len_blocks() <= 4);
    }

    #[test]
    fn stats_accumulate_and_hit_rate() {
        let mut c = PrefixCache::new(4, 1024);
        let t = toks(8, 0);
        c.lookup(&t);
        c.insert(&t);
        c.lookup(&t);
        let s = c.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.lookup_tokens, 16);
        assert_eq!(s.hit_tokens, 8);
        assert!((s.hit_rate().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clear_drops_blocks() {
        let mut c = PrefixCache::new(4, 1024);
        c.insert(&toks(8, 0));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.lookup(&toks(8, 0)), 0);
    }

    #[test]
    fn real_tokenizer_prompts_share_instruction_prefix() {
        let tok = Tokenizer::new();
        let mut c = PrefixCache::with_defaults();
        let instruction = "Classify the sentiment of the following tweet as \
             positive or negative. Respond with exactly one word. Keep your \
             reasoning implicit and do not exceed the word limit of one. "
            .repeat(4);
        let a = tok.encode(&format!("{instruction}Tweet: what a beautiful morning"));
        let b = tok.encode(&format!("{instruction}Tweet: worst commute ever"));
        c.insert(&a);
        let hit = c.lookup(&b);
        let instr_tokens = tok.count(&instruction);
        assert!(
            hit >= instr_tokens - DEFAULT_BLOCK_SIZE,
            "hit {hit} should cover nearly the whole {instr_tokens}-token instruction"
        );
    }

    #[test]
    fn insert_is_idempotent() {
        let mut c = PrefixCache::new(4, 1024);
        let t = toks(16, 0);
        c.insert(&t);
        let blocks = c.len_blocks();
        let inserted = c.stats().inserted_blocks;
        c.insert(&t);
        assert_eq!(c.len_blocks(), blocks);
        assert_eq!(c.stats().inserted_blocks, inserted);
    }
}
