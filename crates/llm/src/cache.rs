//! Block-based radix prefix cache, modelled on vLLM's automatic prefix
//! caching (paper refs \[9\], \[16\]).
//!
//! Token streams are grouped into fixed-size blocks; each cached block is a
//! node in a radix tree keyed by `(parent node, block content hash)`. A
//! lookup walks the tree from the root and returns how many *tokens* of the
//! request's prefix are already resident — those tokens skip (almost all of)
//! the prefill cost. Insertion adds the request's full blocks; when the
//! cache exceeds its block capacity, least-recently-used **leaf** blocks are
//! evicted, which mirrors vLLM: a block can only be freed once no longer
//! block extends it.

use std::collections::HashMap;

use parking_lot::Mutex;
use spear_kv::shard::{fnv1a_extend, FNV1A_OFFSET};

use crate::tokenizer::Token;

/// Incremental block hasher: push tokens one at a time; every
/// `block_size`-th token completes a block and appends its hash to the
/// output. Produces exactly the hashes [`PrefixCache`] computes internally
/// for full blocks (FNV-1a over the concatenated little-endian token
/// bytes), with no intermediate byte buffer — FNV-1a is a plain byte fold,
/// so streaming and batch hashing agree byte-for-byte. The trailing
/// partial block (if any) never emits a hash, matching the cache's rule
/// that partial blocks are not cacheable.
#[derive(Debug, Clone)]
pub struct BlockHasher {
    block_size: usize,
    state: u64,
    filled: usize,
}

impl BlockHasher {
    /// A hasher for `block_size`-token blocks.
    #[must_use]
    pub fn new(block_size: usize) -> Self {
        Self {
            block_size: block_size.max(1),
            state: FNV1A_OFFSET,
            filled: 0,
        }
    }

    /// Fold in one token; appends the completed block's hash to `out` when
    /// this token fills a block.
    pub fn push(&mut self, token: Token, out: &mut Vec<u64>) {
        self.state = fnv1a_extend(self.state, &token.0.to_le_bytes());
        self.filled += 1;
        if self.filled == self.block_size {
            out.push(self.state);
            self.state = FNV1A_OFFSET;
            self.filled = 0;
        }
    }

    /// Tokens folded into the current (incomplete) block.
    #[must_use]
    pub fn pending_tokens(&self) -> usize {
        self.filled
    }
}

/// Default tokens per block (vLLM's default).
pub const DEFAULT_BLOCK_SIZE: usize = 16;

/// Default shard count for [`StripedPrefixCache`].
pub const DEFAULT_NUM_SHARDS: usize = 16;

/// Owner tag for blocks visible to every pipeline instance (pre-warmed
/// prefixes and all ambient single-threaded inserts).
pub const SHARED_OWNER: u64 = 0;

/// Prefix-cache hit/miss/eviction counters.
///
/// Public and cloneable (`Copy`, serializable) so observers outside the
/// engine — the serving layer's scheduler, benchmark reports — can
/// snapshot them, diff snapshots ([`CacheStats::delta_since`]), and
/// attribute hit rates to scheduling decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Number of lookups performed.
    pub lookups: u64,
    /// Total tokens across all lookups.
    pub lookup_tokens: u64,
    /// Tokens served from cache across all lookups.
    pub hit_tokens: u64,
    /// Blocks inserted.
    pub inserted_blocks: u64,
    /// Blocks evicted.
    pub evicted_blocks: u64,
    /// Blocks dropped by explicit [`PrefixCache::clear`] calls, as opposed
    /// to capacity eviction. Defaults to 0 when deserializing reports
    /// written before this counter existed.
    #[serde(default)]
    pub freed_blocks: u64,
}

impl CacheStats {
    /// Overall token hit rate in `[0, 1]`; `None` before any lookup tokens.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        if self.lookup_tokens == 0 {
            None
        } else {
            Some(self.hit_tokens as f64 / self.lookup_tokens as f64)
        }
    }

    /// Tokens that missed the cache across all lookups (the prefill the
    /// engine actually had to pay for).
    #[must_use]
    pub fn miss_tokens(&self) -> u64 {
        self.lookup_tokens - self.hit_tokens
    }

    /// Counter-wise difference `self - earlier` — the activity between two
    /// snapshots of the same cache. All counters are monotonic, so the
    /// delta of a later snapshot against an earlier one is itself a valid
    /// `CacheStats` (saturating, in case snapshots are misordered).
    #[must_use]
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            lookups: self.lookups.saturating_sub(earlier.lookups),
            lookup_tokens: self.lookup_tokens.saturating_sub(earlier.lookup_tokens),
            hit_tokens: self.hit_tokens.saturating_sub(earlier.hit_tokens),
            inserted_blocks: self.inserted_blocks.saturating_sub(earlier.inserted_blocks),
            evicted_blocks: self.evicted_blocks.saturating_sub(earlier.evicted_blocks),
            freed_blocks: self.freed_blocks.saturating_sub(earlier.freed_blocks),
        }
    }

    /// Resident blocks implied by the counters alone. For any cache all of
    /// whose removals flow through eviction or `clear`, this equals the
    /// actual [`PrefixCache::len_blocks`] — the reconciliation invariant
    /// the cross-stripe stats test pins.
    #[must_use]
    pub fn implied_live_blocks(&self) -> u64 {
        self.inserted_blocks
            .saturating_sub(self.evicted_blocks)
            .saturating_sub(self.freed_blocks)
    }
}

#[derive(Debug)]
struct Node {
    parent: u64,
    block_hash: u64,
    /// Which pipeline instance inserted the block ([`SHARED_OWNER`] for
    /// ambient/warm inserts). Part of the index key: a block inserted by
    /// owner A is invisible to owner B, which is what makes per-pipeline
    /// hit counts independent of concurrent interleaving.
    owner: u64,
    children: u32,
    last_used: u64,
}

/// The prefix cache. Not internally synchronized — the engine wraps it in a
/// mutex (one cache per simulated GPU).
#[derive(Debug)]
pub struct PrefixCache {
    block_size: usize,
    capacity_blocks: usize,
    /// `(parent id, block hash, owner) -> node id`
    index: HashMap<(u64, u64, u64), u64>,
    nodes: HashMap<u64, Node>,
    next_id: u64,
    tick: u64,
    stats: CacheStats,
}

/// Root sentinel (not stored in `nodes`).
const ROOT: u64 = 0;

impl PrefixCache {
    /// Create a cache holding at most `capacity_blocks` blocks of
    /// `block_size` tokens.
    #[must_use]
    pub fn new(block_size: usize, capacity_blocks: usize) -> Self {
        Self {
            block_size: block_size.max(1),
            capacity_blocks: capacity_blocks.max(1),
            index: HashMap::new(),
            nodes: HashMap::new(),
            next_id: 1,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// A cache with vLLM-like defaults (16-token blocks, 64Ki blocks ≈ 1M
    /// tokens — far more than any benchmark working set, so eviction only
    /// matters when configured smaller).
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(DEFAULT_BLOCK_SIZE, 64 * 1024)
    }

    /// FNV-1a over the block's concatenated little-endian token bytes,
    /// folded incrementally (no byte-buffer allocation).
    fn hash_block(block: &[Token]) -> u64 {
        let mut h = FNV1A_OFFSET;
        for t in block {
            h = fnv1a_extend(h, &t.0.to_le_bytes());
        }
        h
    }

    /// Find the node for `block` under `parent` that `owner` is allowed to
    /// see: shared blocks match everyone; owned blocks match only their
    /// owner. Shared wins when both exist (its presence cannot depend on
    /// what concurrent pipelines did).
    fn visible(&self, parent: u64, hash: u64, owner: u64) -> Option<u64> {
        if let Some(&id) = self.index.get(&(parent, hash, SHARED_OWNER)) {
            return Some(id);
        }
        if owner != SHARED_OWNER {
            if let Some(&id) = self.index.get(&(parent, hash, owner)) {
                return Some(id);
            }
        }
        None
    }

    /// How many tokens of `tokens`' prefix are cached (ambient owner).
    /// Touches the matched path (LRU refresh).
    pub fn lookup(&mut self, tokens: &[Token]) -> usize {
        self.lookup_for(tokens, SHARED_OWNER)
    }

    /// How many tokens of `tokens`' prefix are cached *as seen by
    /// `owner`*: shared blocks plus the owner's private blocks. Touches
    /// the matched path (LRU refresh).
    pub fn lookup_for(&mut self, tokens: &[Token], owner: u64) -> usize {
        let bs = self.block_size;
        self.lookup_hashes(
            tokens.chunks_exact(bs).map(Self::hash_block),
            tokens.len(),
            owner,
        )
    }

    /// Hashed-path lookup: `block_hashes` are the stream's full-block
    /// content hashes in order (exactly what [`BlockHasher`] emits for the
    /// token stream) and `total_tokens` is the stream's total token count
    /// (full blocks plus the trailing partial block), used for stats.
    /// Behaves identically to [`Self::lookup_for`] on the corresponding
    /// tokens — the token path hashes each block on the fly; this path
    /// reuses hashes the caller already has.
    pub fn lookup_for_hashed(
        &mut self,
        block_hashes: &[u64],
        total_tokens: usize,
        owner: u64,
    ) -> usize {
        debug_assert!(block_hashes.len() * self.block_size <= total_tokens);
        self.lookup_hashes(block_hashes.iter().copied(), total_tokens, owner)
    }

    fn lookup_hashes(
        &mut self,
        hashes: impl Iterator<Item = u64>,
        total_tokens: usize,
        owner: u64,
    ) -> usize {
        self.tick += 1;
        self.stats.lookups += 1;
        self.stats.lookup_tokens += total_tokens as u64;
        let mut parent = ROOT;
        let mut matched_blocks = 0usize;
        for hash in hashes {
            match self.visible(parent, hash, owner) {
                Some(id) => {
                    if let Some(node) = self.nodes.get_mut(&id) {
                        node.last_used = self.tick;
                    }
                    parent = id;
                    matched_blocks += 1;
                }
                None => break,
            }
        }
        let hit = matched_blocks * self.block_size;
        self.stats.hit_tokens += hit as u64;
        hit
    }

    /// Register `tokens`' full blocks in the cache with the ambient
    /// (shared) owner — the trailing partial block is never cached, as in
    /// vLLM.
    pub fn insert(&mut self, tokens: &[Token]) {
        self.insert_for(tokens, SHARED_OWNER);
    }

    /// Register `tokens`' full blocks on behalf of `owner`. Blocks already
    /// visible to the owner (shared, or previously inserted by it) are
    /// reused; new blocks are tagged with the owner and stay invisible to
    /// every other owner.
    pub fn insert_for(&mut self, tokens: &[Token], owner: u64) {
        let bs = self.block_size;
        self.insert_hashes(tokens.chunks_exact(bs).map(Self::hash_block), owner);
    }

    /// Hashed-path insert: register the blocks whose content hashes are
    /// `block_hashes` (see [`Self::lookup_for_hashed`] for the contract).
    pub fn insert_for_hashed(&mut self, block_hashes: &[u64], owner: u64) {
        self.insert_hashes(block_hashes.iter().copied(), owner);
    }

    fn insert_hashes(&mut self, hashes: impl Iterator<Item = u64>, owner: u64) {
        self.tick += 1;
        let mut parent = ROOT;
        for hash in hashes {
            let id = match self.visible(parent, hash, owner) {
                Some(id) => {
                    if let Some(node) = self.nodes.get_mut(&id) {
                        node.last_used = self.tick;
                    }
                    id
                }
                None => {
                    self.evict_to_fit();
                    if self.nodes.len() >= self.capacity_blocks {
                        // Nothing evictable (every resident block is on the
                        // chain being inserted right now). Inserting anyway
                        // would either breach capacity or — worse, the old
                        // behaviour — evict this chain's own freshly
                        // inserted ancestor, leaving an unreachable child
                        // whose eviction could never be accounted. Stop
                        // here; the remaining suffix is simply not cached.
                        break;
                    }
                    let id = self.next_id;
                    self.next_id += 1;
                    self.index.insert((parent, hash, owner), id);
                    self.nodes.insert(
                        id,
                        Node {
                            parent,
                            block_hash: hash,
                            owner,
                            children: 0,
                            last_used: self.tick,
                        },
                    );
                    if parent != ROOT {
                        if let Some(p) = self.nodes.get_mut(&parent) {
                            p.children += 1;
                        }
                    }
                    self.stats.inserted_blocks += 1;
                    id
                }
            };
            parent = id;
        }
    }

    /// Evict LRU leaves until there is room for one more block. O(n) per
    /// eviction — acceptable because eviction is rare at benchmark working
    /// set sizes and the cache is bounded.
    ///
    /// Blocks touched at the current tick are exempt: they are the chain
    /// being inserted or refreshed *right now*, and evicting one of them
    /// would orphan its not-yet-inserted children (the accounting drift the
    /// cross-stripe reconciliation test guards against).
    fn evict_to_fit(&mut self) {
        while self.nodes.len() >= self.capacity_blocks {
            let victim = self
                .nodes
                .iter()
                .filter(|(_, n)| n.children == 0 && n.last_used != self.tick)
                .min_by_key(|(_, n)| n.last_used)
                .map(|(&id, _)| id);
            let Some(id) = victim else {
                return; // nothing evictable: every block is on the live chain
            };
            let node = self.nodes.remove(&id).expect("victim exists");
            self.index
                .remove(&(node.parent, node.block_hash, node.owner));
            if node.parent != ROOT {
                if let Some(p) = self.nodes.get_mut(&node.parent) {
                    p.children = p.children.saturating_sub(1);
                }
            }
            self.stats.evicted_blocks += 1;
        }
    }

    /// Current number of resident blocks.
    #[must_use]
    pub fn len_blocks(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Block size in tokens.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop all blocks. Statistics are retained, and the dropped blocks
    /// are counted as [`CacheStats::freed_blocks`] so the reconciliation
    /// invariant `inserted − evicted − freed == live` survives a clear.
    pub fn clear(&mut self) {
        self.stats.freed_blocks += self.nodes.len() as u64;
        self.index.clear();
        self.nodes.clear();
    }
}

/// A lock-striped prefix cache: the radix tree is sharded by the hash of a
/// stream's **first block**, each shard behind its own mutex, so
/// concurrent GEN calls touching unrelated prompt families never contend
/// on one global lock.
///
/// Sharding by first-block hash is correctness-preserving: block `k`'s
/// radix key chains from block 0 via parent ids, so any two token streams
/// that share even a one-block prefix hash to the same shard, and every
/// radix path lives entirely within one shard. Streams shorter than one
/// block have nothing cacheable and route to shard 0 (their lookups still
/// count toward stats).
///
/// ## Determinism contract
///
/// Combined with owner tagging ([`PrefixCache::lookup_for`] /
/// [`PrefixCache::insert_for`]): as long as (a) shared blocks are only
/// inserted while no owned work is in flight (warm-up), and (b) each
/// owner's requests execute in program order, the hit count every request
/// observes is a pure function of the warm set and that owner's own
/// history — independent of thread count and interleaving. Eviction is
/// the one escape hatch: a cache under capacity pressure evicts in
/// LRU-touch order, which *is* interleaving-dependent, so deterministic
/// runs should size `capacity_blocks` above the working set (the default
/// is ~1M tokens per shard).
#[derive(Debug)]
pub struct StripedPrefixCache {
    shards: Vec<Mutex<PrefixCache>>,
    block_size: usize,
}

impl StripedPrefixCache {
    /// A striped cache of `num_shards` shards, each holding up to
    /// `capacity_blocks / num_shards` blocks (rounded up, minimum 1).
    #[must_use]
    pub fn new(block_size: usize, capacity_blocks: usize, num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        let per_shard = capacity_blocks.div_ceil(num_shards).max(1);
        Self {
            shards: (0..num_shards)
                .map(|_| Mutex::new(PrefixCache::new(block_size, per_shard)))
                .collect(),
            block_size: block_size.max(1),
        }
    }

    /// Striped cache with vLLM-like defaults and [`DEFAULT_NUM_SHARDS`].
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(
            DEFAULT_BLOCK_SIZE,
            DEFAULT_NUM_SHARDS * 64 * 1024,
            DEFAULT_NUM_SHARDS,
        )
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, tokens: &[Token]) -> &Mutex<PrefixCache> {
        let head = &tokens[..self.block_size.min(tokens.len())];
        let index = if head.is_empty() {
            0
        } else {
            (PrefixCache::hash_block(head) % self.shards.len() as u64) as usize
        };
        &self.shards[index]
    }

    /// Atomic lookup-then-insert on behalf of `owner` under a single
    /// shard lock — the engine's per-request fast path.
    pub fn lookup_insert(&self, tokens: &[Token], owner: u64) -> usize {
        let mut shard = self.shard_for(tokens).lock();
        let hit = shard.lookup_for(tokens, owner);
        shard.insert_for(tokens, owner);
        hit
    }

    /// Hashed-path variant of [`Self::lookup_insert`]: the caller supplies
    /// the stream's full-block content hashes (from [`BlockHasher`], or a
    /// memoized hash chain) plus the total token count, so the radix walk
    /// re-hashes nothing. Routing agrees with the token path: block 0's
    /// content hash *is* `block_hashes[0]`, so a hashed stream lands on
    /// the same shard — and therefore the same radix tree — as the
    /// equivalent token stream. Streams with no full block have nothing
    /// cacheable and route to shard 0.
    pub fn lookup_insert_hashed(
        &self,
        block_hashes: &[u64],
        total_tokens: usize,
        owner: u64,
    ) -> usize {
        let index = match block_hashes.first() {
            Some(&h) => (h % self.shards.len() as u64) as usize,
            None => 0,
        };
        let mut shard = self.shards[index].lock();
        let hit = shard.lookup_for_hashed(block_hashes, total_tokens, owner);
        shard.insert_for_hashed(block_hashes, owner);
        hit
    }

    /// Owner-aware lookup (see [`PrefixCache::lookup_for`]).
    pub fn lookup_for(&self, tokens: &[Token], owner: u64) -> usize {
        self.shard_for(tokens).lock().lookup_for(tokens, owner)
    }

    /// Owner-aware insert (see [`PrefixCache::insert_for`]).
    pub fn insert_for(&self, tokens: &[Token], owner: u64) {
        self.shard_for(tokens).lock().insert_for(tokens, owner);
    }

    /// Insert `tokens` as shared/pre-warmed blocks, visible to every
    /// owner.
    pub fn warm(&self, tokens: &[Token]) {
        self.insert_for(tokens, SHARED_OWNER);
    }

    /// Aggregate statistics across all shards.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().stats();
            total.lookups += s.lookups;
            total.lookup_tokens += s.lookup_tokens;
            total.hit_tokens += s.hit_tokens;
            total.inserted_blocks += s.inserted_blocks;
            total.evicted_blocks += s.evicted_blocks;
            total.freed_blocks += s.freed_blocks;
        }
        total
    }

    /// Total resident blocks across shards.
    #[must_use]
    pub fn len_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len_blocks()).sum()
    }

    /// Drop all blocks in every shard (statistics are retained).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::Tokenizer;

    fn toks(n: usize, salt: u64) -> Vec<Token> {
        (0..n).map(|i| Token(i as u64 * 7919 + salt)).collect()
    }

    #[test]
    fn cold_lookup_misses_then_hits_after_insert() {
        let mut c = PrefixCache::new(4, 1024);
        let t = toks(16, 0);
        assert_eq!(c.lookup(&t), 0);
        c.insert(&t);
        assert_eq!(c.lookup(&t), 16);
        assert_eq!(c.len_blocks(), 4);
    }

    #[test]
    fn partial_trailing_block_is_not_cached() {
        let mut c = PrefixCache::new(4, 1024);
        let t = toks(10, 0); // 2 full blocks + 2 tokens
        c.insert(&t);
        assert_eq!(c.lookup(&t), 8);
        assert_eq!(c.len_blocks(), 2);
    }

    #[test]
    fn shared_prefix_divergent_suffix() {
        let mut c = PrefixCache::new(4, 1024);
        let mut a = toks(12, 0);
        let mut b = a.clone();
        a.extend(toks(8, 100));
        b.extend(toks(8, 200));
        c.insert(&a);
        // b shares the first 12 tokens = 3 full blocks.
        assert_eq!(c.lookup(&b), 12);
        c.insert(&b);
        assert_eq!(c.lookup(&b), 20);
        // a is still fully resident.
        assert_eq!(c.lookup(&a), 20);
    }

    #[test]
    fn block_boundary_alignment_matters() {
        // Prefix sharing is block-granular: a one-token shift breaks reuse.
        let mut c = PrefixCache::new(4, 1024);
        let a = toks(16, 0);
        c.insert(&a);
        let mut shifted = vec![Token(999)];
        shifted.extend_from_slice(&a[..15]);
        assert_eq!(c.lookup(&shifted), 0);
    }

    #[test]
    fn eviction_is_lru_and_leaf_first() {
        // Capacity 4 blocks; insert two independent 2-block streams, then a
        // third: the least recently used stream's blocks go first.
        let mut c = PrefixCache::new(4, 4);
        let a = toks(8, 1);
        let b = toks(8, 2);
        c.insert(&a);
        c.insert(&b);
        assert_eq!(c.lookup(&a), 8, "refresh a; b becomes LRU");
        let d = toks(8, 3);
        c.insert(&d);
        assert_eq!(c.lookup(&b), 0, "b was evicted");
        assert_eq!(c.lookup(&a), 8, "a survived");
        assert!(c.stats().evicted_blocks >= 2);
        assert!(c.len_blocks() <= 4);
    }

    #[test]
    fn stats_accumulate_and_hit_rate() {
        let mut c = PrefixCache::new(4, 1024);
        let t = toks(8, 0);
        c.lookup(&t);
        c.insert(&t);
        c.lookup(&t);
        let s = c.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.lookup_tokens, 16);
        assert_eq!(s.hit_tokens, 8);
        assert!((s.hit_rate().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clear_drops_blocks() {
        let mut c = PrefixCache::new(4, 1024);
        c.insert(&toks(8, 0));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.lookup(&toks(8, 0)), 0);
    }

    #[test]
    fn real_tokenizer_prompts_share_instruction_prefix() {
        let tok = Tokenizer::new();
        let mut c = PrefixCache::with_defaults();
        let instruction = "Classify the sentiment of the following tweet as \
             positive or negative. Respond with exactly one word. Keep your \
             reasoning implicit and do not exceed the word limit of one. "
            .repeat(4);
        let a = tok.encode(&format!("{instruction}Tweet: what a beautiful morning"));
        let b = tok.encode(&format!("{instruction}Tweet: worst commute ever"));
        c.insert(&a);
        let hit = c.lookup(&b);
        let instr_tokens = tok.count(&instruction);
        assert!(
            hit >= instr_tokens - DEFAULT_BLOCK_SIZE,
            "hit {hit} should cover nearly the whole {instr_tokens}-token instruction"
        );
    }

    #[test]
    fn owned_blocks_are_invisible_to_other_owners() {
        let mut c = PrefixCache::new(4, 1024);
        let t = toks(16, 0);
        c.insert_for(&t, 1);
        assert_eq!(c.lookup_for(&t, 1), 16, "owner sees its own blocks");
        assert_eq!(c.lookup_for(&t, 2), 0, "another owner does not");
        assert_eq!(c.lookup(&t), 0, "nor does ambient work");
    }

    #[test]
    fn shared_blocks_are_visible_to_every_owner() {
        let mut c = PrefixCache::new(4, 1024);
        let t = toks(16, 0);
        c.insert(&t); // ambient == shared
        for owner in [SHARED_OWNER, 1, 2, 99] {
            assert_eq!(c.lookup_for(&t, owner), 16);
        }
    }

    #[test]
    fn owner_chains_extend_shared_prefixes() {
        let mut c = PrefixCache::new(4, 1024);
        let shared = toks(8, 0);
        c.insert(&shared);
        let mut extended = shared.clone();
        extended.extend(toks(8, 50));
        c.insert_for(&extended, 1);
        assert_eq!(c.lookup_for(&extended, 1), 16);
        assert_eq!(
            c.lookup_for(&extended, 2),
            8,
            "other owners still see only the shared prefix"
        );
    }

    #[test]
    fn per_owner_hits_are_interleaving_independent() {
        // Two owners inserting the same stream: each sees exactly its own
        // history regardless of the order their inserts interleave.
        let t = toks(16, 7);
        let mut ab = PrefixCache::new(4, 1024);
        ab.insert_for(&t, 1);
        ab.insert_for(&t, 2);
        let mut ba = PrefixCache::new(4, 1024);
        ba.insert_for(&t, 2);
        ba.insert_for(&t, 1);
        for c in [&mut ab, &mut ba] {
            assert_eq!(c.lookup_for(&t, 1), 16);
            assert_eq!(c.lookup_for(&t, 2), 16);
        }
    }

    #[test]
    fn striped_cache_routes_shared_prefixes_to_one_shard() {
        let c = StripedPrefixCache::new(4, 4096, 8);
        let mut a = toks(12, 0);
        let mut b = a.clone();
        a.extend(toks(8, 100));
        b.extend(toks(8, 200));
        c.insert_for(&a, SHARED_OWNER);
        // b shares a's first 3 blocks; a cross-shard split would lose them.
        assert_eq!(c.lookup_for(&b, SHARED_OWNER), 12);
        let s = c.stats();
        assert_eq!(s.lookups, 1);
        assert_eq!(s.hit_tokens, 12);
    }

    #[test]
    fn striped_lookup_insert_is_one_round_trip() {
        let c = StripedPrefixCache::new(4, 4096, 8);
        let t = toks(16, 3);
        assert_eq!(c.lookup_insert(&t, 5), 0);
        assert_eq!(c.lookup_insert(&t, 5), 16);
        assert_eq!(c.lookup_insert(&t, 6), 0, "other owner still cold");
        c.clear();
        assert_eq!(c.len_blocks(), 0);
        assert_eq!(c.lookup_insert(&t, 5), 0);
    }

    #[test]
    fn striped_warm_is_shared() {
        let c = StripedPrefixCache::with_defaults();
        let tok = Tokenizer::new();
        let prefix = tok.encode(&"shared instruction text ".repeat(20));
        c.warm(&prefix);
        assert!(c.lookup_for(&prefix, 1) > 0);
        assert!(c.lookup_for(&prefix, 2) > 0);
        assert_eq!(c.shard_count(), DEFAULT_NUM_SHARDS);
    }

    #[test]
    fn striped_short_streams_route_to_shard_zero() {
        let c = StripedPrefixCache::new(16, 4096, 8);
        let t = toks(3, 0); // shorter than a block: nothing cacheable
        assert_eq!(c.lookup_insert(&t, 1), 0);
        assert_eq!(c.len_blocks(), 0);
        assert_eq!(c.stats().lookups, 1);
    }

    /// Full-block hashes of a token stream, via the public incremental
    /// hasher.
    fn block_hashes(tokens: &[Token], block_size: usize) -> Vec<u64> {
        let mut hasher = BlockHasher::new(block_size);
        let mut out = Vec::new();
        for &t in tokens {
            hasher.push(t, &mut out);
        }
        out
    }

    #[test]
    fn block_hasher_matches_internal_block_hashing() {
        let t = toks(19, 5); // 4 full blocks of 4 + partial
        let hashes = block_hashes(&t, 4);
        assert_eq!(hashes.len(), 4);
        for (i, chunk) in t.chunks_exact(4).enumerate() {
            assert_eq!(hashes[i], PrefixCache::hash_block(chunk), "block {i}");
        }
        let mut h = BlockHasher::new(4);
        let mut out = Vec::new();
        h.push(Token(1), &mut out);
        assert_eq!(h.pending_tokens(), 1);
        assert!(out.is_empty(), "partial blocks never emit a hash");
    }

    #[test]
    fn hashed_path_interoperates_with_token_path() {
        // Insert via the token path, look up via the hashed path (and the
        // reverse): both views of the same stream must agree exactly.
        let mut c = PrefixCache::new(4, 1024);
        let t = toks(18, 0); // 4 full blocks + 2 trailing tokens
        let hashes = block_hashes(&t, 4);
        assert_eq!(c.lookup_for_hashed(&hashes, t.len(), 1), 0);
        c.insert_for(&t, 1);
        assert_eq!(c.lookup_for_hashed(&hashes, t.len(), 1), 16);
        assert_eq!(c.lookup_for(&t, 1), 16);

        let u = toks(12, 9);
        let u_hashes = block_hashes(&u, 4);
        c.insert_for_hashed(&u_hashes, 2);
        assert_eq!(c.lookup_for(&u, 2), 12);

        // Stats treat both paths identically.
        let s = c.stats();
        assert_eq!(s.lookups, 4);
        assert_eq!(s.lookup_tokens, 18 + 18 + 18 + 12);
        assert_eq!(s.hit_tokens, 16 + 16 + 12);
    }

    #[test]
    fn striped_hashed_path_routes_to_the_token_path_shard() {
        let c = StripedPrefixCache::new(4, 4096, 8);
        let t = toks(16, 3);
        let hashes = block_hashes(&t, 4);
        // Token-path insert, hashed-path lookup_insert: a cross-shard
        // split would miss.
        c.insert_for(&t, 5);
        assert_eq!(c.lookup_insert_hashed(&hashes, t.len(), 5), 16);
        // And the reverse: hashed insert is visible to token lookups.
        let u = toks(16, 11);
        let u_hashes = block_hashes(&u, 4);
        assert_eq!(c.lookup_insert_hashed(&u_hashes, u.len(), 7), 0);
        assert_eq!(c.lookup_for(&u, 7), 16);
        // No full block: nothing cacheable, stats still tick.
        let lookups_before = c.stats().lookups;
        assert_eq!(c.lookup_insert_hashed(&[], 3, 7), 0);
        assert_eq!(c.stats().lookups, lookups_before + 1);
    }

    #[test]
    fn counters_match_a_hand_computed_trace() {
        // Walk a scripted lookup/insert/evict sequence and check every
        // counter against values computed by hand. Block size 4, capacity
        // 3 blocks.
        let mut c = PrefixCache::new(4, 3);
        let a = toks(8, 1); // 2 full blocks
        let b = toks(8, 2); // 2 full blocks, disjoint from a

        // (1) cold lookup of a: 1 lookup, 8 tokens, 0 hit.
        assert_eq!(c.lookup(&a), 0);
        // (2) insert a: +2 blocks, no eviction (2 ≤ 3).
        c.insert(&a);
        // (3) warm lookup of a: 8/8 tokens hit.
        assert_eq!(c.lookup(&a), 8);
        // (4) insert b: b's first block fits (2 -> 3 resident), b's second
        //     block hits capacity, so the LRU *leaf* — a's tail block — is
        //     evicted. a's root block has a child at eviction time and
        //     stays. Net: +2 inserted, +1 evicted.
        c.insert(&b);
        // (5) lookup b: fully resident, 8/8 hit.
        assert_eq!(c.lookup(&b), 8);

        let s = c.stats();
        assert_eq!(s.lookups, 3, "steps 1, 3, 5");
        assert_eq!(s.lookup_tokens, 24, "3 lookups x 8 tokens");
        assert_eq!(s.hit_tokens, 16, "steps 3 and 5");
        assert_eq!(s.miss_tokens(), 8, "only the cold lookup missed");
        assert_eq!(s.inserted_blocks, 4, "2 for a + 2 for b");
        assert_eq!(s.evicted_blocks, 1, "a's leaf displaced by b's tail");
        assert!((s.hit_rate().unwrap() - 16.0 / 24.0).abs() < 1e-12);
        assert_eq!(c.len_blocks(), 3, "b's two blocks + a's orphaned root");
    }

    #[test]
    fn delta_since_isolates_activity_between_snapshots() {
        let mut c = PrefixCache::new(4, 1024);
        let t = toks(8, 0);
        c.lookup(&t);
        c.insert(&t);
        let before = c.stats();
        c.lookup(&t);
        c.lookup(&t);
        let delta = c.stats().delta_since(&before);
        assert_eq!(delta.lookups, 2);
        assert_eq!(delta.lookup_tokens, 16);
        assert_eq!(delta.hit_tokens, 16);
        assert_eq!(delta.inserted_blocks, 0);
        assert_eq!(delta.miss_tokens(), 0);
        // Misordered snapshots saturate instead of wrapping.
        assert_eq!(before.delta_since(&c.stats()).lookups, 0);
    }

    #[test]
    fn stats_serialize_for_reports() {
        let mut c = PrefixCache::new(4, 1024);
        c.insert(&toks(8, 0));
        c.lookup(&toks(8, 0));
        let s = c.stats();
        let json = serde_json::to_string(&s).unwrap();
        let back: CacheStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut c = PrefixCache::new(4, 1024);
        let t = toks(16, 0);
        c.insert(&t);
        let blocks = c.len_blocks();
        let inserted = c.stats().inserted_blocks;
        c.insert(&t);
        assert_eq!(c.len_blocks(), blocks);
        assert_eq!(c.stats().inserted_blocks, inserted);
    }

    #[test]
    fn tight_capacity_never_orphans_the_live_chain() {
        // Regression: with capacity 1 and a 2-block stream, the old
        // evict_to_fit would evict the chain's own just-inserted first
        // block to make room for the second, leaving an unreachable child
        // (its parent id dangling) that inflated len_blocks() forever and
        // broke counter reconciliation. Now the live chain is exempt and
        // the uncacheable suffix is skipped.
        let mut c = PrefixCache::new(4, 1);
        c.insert(&toks(8, 0));
        assert_eq!(c.len_blocks(), 1, "capacity is a hard bound");
        assert_eq!(c.lookup(&toks(8, 0)), 4, "the resident block is reachable");
        let s = c.stats();
        assert_eq!(s.inserted_blocks, 1, "the skipped suffix is not counted");
        assert_eq!(s.evicted_blocks, 0);
        assert_eq!(s.implied_live_blocks(), c.len_blocks() as u64);
        // A fresh stream still rotates the resident block via real LRU
        // eviction, with the eviction counted.
        c.insert(&toks(8, 1));
        assert_eq!(c.len_blocks(), 1);
        let s = c.stats();
        assert_eq!((s.inserted_blocks, s.evicted_blocks), (2, 1));
        assert_eq!(s.implied_live_blocks(), c.len_blocks() as u64);
    }

    #[test]
    fn clear_counts_freed_blocks_for_reconciliation() {
        let mut c = PrefixCache::new(4, 1024);
        c.insert(&toks(16, 0));
        assert_eq!(c.len_blocks(), 4);
        c.clear();
        let s = c.stats();
        assert_eq!(s.freed_blocks, 4);
        assert_eq!(s.implied_live_blocks(), 0);
        // delta_since saturates over the new counter like the others.
        let later = c.stats();
        assert_eq!(later.delta_since(&s).freed_blocks, 0);
        assert_eq!(s.delta_since(&later).freed_blocks, 0);
    }

    #[test]
    fn cross_stripe_stats_reconcile_under_churn() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        // Many owners, many families, a deliberately tiny per-shard
        // capacity, interleaved inserts/lookups/clears across every
        // stripe: the aggregated counters must reconcile with the actual
        // resident block count at every step.
        let c = StripedPrefixCache::new(4, 64, 8);
        let mut rng = SmallRng::seed_from_u64(0xC1D2);
        for step in 0..400 {
            let fam = rng.gen_range(0..24u64);
            let len = rng.gen_range(1..40usize) * 4;
            let owner = rng.gen_range(0..3u64);
            let tokens = toks(len, fam);
            match rng.gen_range(0..10u8) {
                0 => c.clear(),
                1..=4 => {
                    c.lookup_for(&tokens, owner);
                }
                _ => c.insert_for(&tokens, owner),
            }
            let s = c.stats();
            assert_eq!(
                s.implied_live_blocks(),
                c.len_blocks() as u64,
                "inserted − evicted − freed must equal live at step {step}"
            );
            assert!(c.len_blocks() <= 64, "capacity breached at step {step}");
        }
        let s = c.stats();
        assert!(s.evicted_blocks > 0, "churn must actually evict");
        assert!(s.freed_blocks > 0, "churn must actually clear");
    }
}
