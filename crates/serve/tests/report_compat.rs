//! Forward-compatibility of the `ServeReport` schema: every field added
//! after PR 3 carries `#[serde(default)]`, so node-level reports written
//! by any earlier schema — including the checked-in benchmark artifacts —
//! deserialize under the current one. The cluster fabric depends on this:
//! it stamps `ServeReport::cluster` onto node reports, and fleet tooling
//! must still read standalone reports that never had the field.

use spear_serve::prelude::*;

/// Deserialize every per-row `report` object inside a checked-in
/// `BENCH_serve*.json` artifact into the current `ServeReport` schema.
fn reports_from_artifact(name: &str) -> Vec<ServeReport> {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("checked-in artifact {path} must be readable: {e}"));
    let value: serde_json::Value = serde_json::from_str(&raw).expect("artifact is valid JSON");
    let rows = value["rows"].as_array().expect("artifact has rows");
    assert!(!rows.is_empty(), "{name} has at least one row");
    rows.iter()
        .map(|row| {
            serde_json::from_value::<ServeReport>(row["report"].clone())
                .unwrap_or_else(|e| panic!("row report in {name} deserializes: {e}"))
        })
        .collect()
}

#[test]
fn checked_in_serve_artifact_deserializes() {
    for report in reports_from_artifact("BENCH_serve.json") {
        assert!(report.lanes > 0);
        assert!(report.trace_fingerprint != 0);
        assert!(report.interactive.submitted + report.batch.submitted > 0);
        // Unconstrained runs: the KV pool was never enabled, and the
        // standalone schema carries no cluster linkage.
        assert!(!report.kv.enabled);
        assert_eq!(report.cluster, None);
    }
}

#[test]
fn checked_in_pressure_artifact_deserializes() {
    let reports = reports_from_artifact("BENCH_serve_pressure.json");
    assert!(
        reports.iter().any(|r| r.kv.enabled && r.kv.preempted > 0),
        "pressure artifact witnesses real pool contention"
    );
    for report in &reports {
        assert_eq!(report.cluster, None);
    }
}

/// A PR-3-era report — no `kv`, no `compile`, no `cluster`, no per-class
/// `preempted` — still deserializes, with every post-PR-3 field at its
/// default. Synthesized by stripping those fields from a current report,
/// so the test keeps protecting the contract even as artifacts are
/// regenerated with newer schemas.
#[test]
fn pre_kv_schema_deserializes_with_defaults() {
    let mut report = ServeReport {
        lanes: 4,
        affinity_routing: true,
        makespan_us: 99,
        trace_fingerprint: 7,
        ..ServeReport::default()
    };
    report.interactive.submitted = 3;
    report.interactive.completed = 3;

    let mut value = serde_json::to_value(&report).expect("serializes");
    let obj = value.as_object_mut().expect("report is a JSON object");
    for field in ["kv", "compile", "cluster", "reuse"] {
        assert!(obj.remove(field).is_some(), "{field} is in current schema");
    }
    for class in ["interactive", "batch"] {
        let class = value[class].as_object_mut().expect("class object");
        assert!(class.remove("preempted").is_some());
    }

    let back: ServeReport = serde_json::from_value(value).expect("old schema deserializes");
    assert_eq!(back.kv, KvReport::default());
    assert_eq!(back.compile, CompileReport::default());
    assert_eq!(back.cluster, None);
    assert_eq!(back.reuse, ReuseReport::default());
    assert_eq!(back.interactive.preempted, 0);
    assert_eq!(back.interactive.completed, 3);
    assert_eq!(back.trace_fingerprint, 7);
}

/// A pre-reuse report (every schema up to PR 9) — no `reuse` object —
/// still deserializes with an all-zero ledger.
#[test]
fn pre_reuse_schema_deserializes_with_defaults() {
    let report = ServeReport {
        lanes: 8,
        trace_fingerprint: 21,
        ..ServeReport::default()
    };
    let mut value = serde_json::to_value(&report).expect("serializes");
    let obj = value.as_object_mut().expect("report is a JSON object");
    assert!(obj.remove("reuse").is_some(), "reuse is in current schema");
    let back: ServeReport = serde_json::from_value(value).expect("pre-reuse schema deserializes");
    assert_eq!(back.reuse, ReuseReport::default());
    assert_eq!(back.trace_fingerprint, 21);
}

/// A populated reuse ledger round-trips exactly.
#[test]
fn reuse_ledger_round_trips() {
    let report = ServeReport {
        lanes: 4,
        trace_fingerprint: 13,
        reuse: ReuseReport {
            hits: 856,
            coalesced: 4_833,
            inserted: 455,
            evicted: 3,
            bytes: 174_681,
            saved_tokens: 3_191_630,
            saved_calls: 5_689,
        },
        ..ServeReport::default()
    };
    let json = serde_json::to_string(&report).expect("serializes");
    let back: ServeReport = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, report);
    assert_eq!(
        back.reuse.saved_calls,
        back.reuse.hits + back.reuse.coalesced
    );
}

/// The current schema round-trips exactly, including a populated cluster
/// linkage.
#[test]
fn cluster_linkage_round_trips() {
    let report = ServeReport {
        lanes: 2,
        trace_fingerprint: 11,
        cluster: Some(ClusterLinkage {
            node_id: 5,
            joined_us: 1_000,
            drained: true,
        }),
        ..ServeReport::default()
    };
    let json = serde_json::to_string(&report).expect("serializes");
    let back: ServeReport = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, report);
    assert_eq!(back.cluster.as_ref().map(|c| c.node_id), Some(5));
}
