//! Starvation-freedom of the admission queue's aging rule, pinned
//! directly (it was previously only exercised through end-to-end serving
//! runs): **every admitted request eventually dispatches under sustained
//! opposite-class load**, within an explicit bound derived from the aging
//! parameters — not merely "eventually".
//!
//! The bound being pinned:
//!
//! - a batch request with `b` same-class requests ahead of it dispatches
//!   within `(b + 1) * (starvation_limit + 1)` pops, because each pop
//!   while the batch head waits either takes a batch request or increments
//!   the aging counter, and the counter forces a batch pop at
//!   `starvation_limit`;
//! - an interactive request with `i` same-class requests ahead dispatches
//!   within `2 * (i + 1)` pops, because at most one batch request can age
//!   in per interactive dispatch.
//!
//! Both hold under *sustained* opposite-class pressure: the adversary
//! offers fresh opposite-class arrivals before every pop, so the queue
//! never drains and the bound cannot be met vacuously.

use proptest::prelude::*;
use spear_serve::prelude::*;
use std::sync::Arc;

use spear_core::history::RefinementMode;
use spear_core::pipeline::Pipeline;
use spear_core::plan::{lower, LoweredPlan};
use spear_core::runtime::ExecState;

fn plan() -> Arc<LoweredPlan> {
    Arc::new(
        lower(
            &Pipeline::builder("aging")
                .create_text("p", "hello {{ctx:x}}", RefinementMode::Manual)
                .gen("a", "p")
                .build(),
        )
        .expect("lowers"),
    )
}

fn request(id: u64, class: Priority, plan: &Arc<LoweredPlan>) -> ServeRequest {
    // All arrivals at t=0 with zero token cost: admission is depth-only,
    // so the property is about dispatch order, not the token bucket.
    ServeRequest::new(id, class, Arc::clone(plan), ExecState::new(), 0)
}

/// Build a queue holding `ahead` requests of `class`, then the watched
/// request, then `opposite_backlog` opposite-class requests; pop under an
/// adversary that tops the opposite class back up before every pop.
/// Returns how many pops it took to dispatch the watched request.
fn pops_until_dispatch(
    class: Priority,
    ahead: usize,
    opposite_backlog: usize,
    starvation_limit: u32,
) -> usize {
    let opposite = match class {
        Priority::Interactive => Priority::Batch,
        Priority::Batch => Priority::Interactive,
    };
    let plan = plan();
    let mut queue = AdmissionQueue::new(AdmissionConfig {
        max_depth: 1_000_000,
        starvation_limit,
        ..AdmissionConfig::default()
    });
    let mut next_id = 1u64;
    let mut offer = |queue: &mut AdmissionQueue, class: Priority| -> u64 {
        let id = next_id;
        next_id += 1;
        queue
            .offer(request(id, class, &plan))
            .expect("depth limit is generous");
        id
    };
    for _ in 0..ahead {
        offer(&mut queue, class);
    }
    let watched = offer(&mut queue, class);
    for _ in 0..opposite_backlog {
        offer(&mut queue, opposite);
    }

    let ceiling = (ahead + 1) * (starvation_limit as usize + 1) + 1;
    for pop in 1..=ceiling {
        // Sustained opposite-class load: never let the adversary's queue
        // drain, so priority (or aging pressure) applies at every pop.
        while queue.depth(opposite) < opposite_backlog.max(1) {
            offer(&mut queue, opposite);
        }
        let popped = queue.pop().expect("queue is never empty");
        if popped.id == watched {
            return pop;
        }
    }
    panic!(
        "{} request not dispatched within {ceiling} pops \
         (ahead={ahead}, opposite_backlog={opposite_backlog}, limit={starvation_limit})",
        class.label()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Batch requests age in: under an unbounded interactive flood, a
    /// batch request with `b` batch requests ahead dispatches within
    /// `(b + 1) * (starvation_limit + 1)` pops.
    #[test]
    fn batch_dispatches_under_sustained_interactive_load(
        ahead in 0usize..12,
        backlog in 1usize..16,
        limit in 1u32..8,
    ) {
        let pops = pops_until_dispatch(Priority::Batch, ahead, backlog, limit);
        prop_assert!(
            pops <= (ahead + 1) * (limit as usize + 1),
            "batch took {pops} pops, bound is {}",
            (ahead + 1) * (limit as usize + 1)
        );
    }

    /// Interactive requests are never the starved side: with `i`
    /// interactive requests ahead, dispatch happens within `2 * (i + 1)`
    /// pops no matter how much batch work is queued (at most one batch
    /// request ages in per interactive dispatch).
    #[test]
    fn interactive_dispatches_under_sustained_batch_load(
        ahead in 0usize..12,
        backlog in 1usize..16,
        limit in 1u32..8,
    ) {
        let pops = pops_until_dispatch(Priority::Interactive, ahead, backlog, limit);
        prop_assert!(
            pops <= 2 * (ahead + 1),
            "interactive took {pops} pops, bound is {}",
            2 * (ahead + 1)
        );
    }
}

/// The degenerate limit still makes progress: `starvation_limit = 0`
/// means batch work is never passed over while it waits.
#[test]
fn zero_limit_prefers_waiting_batch_work() {
    let pops = pops_until_dispatch(Priority::Batch, 0, 4, 0);
    assert_eq!(pops, 1, "limit 0 dispatches the batch head immediately");
}
