//! Serving-layer invariants: per-request traces must be byte-identical at
//! any lane count, batch work must not starve under interactive floods,
//! and affinity routing must actually buy cache hit-rate.

use std::sync::Arc;

use proptest::prelude::*;
use spear_core::llm::LlmClient;
use spear_core::runtime::Runtime;
use spear_llm::{ModelProfile, SimLlm};
use spear_serve::prelude::*;

/// Run one generated workload on a fresh engine/runtime/node and return
/// `(statuses, digests, report)` keyed by request id order.
fn serve(
    load: &LoadGenConfig,
    lanes: usize,
    affinity: bool,
) -> (Vec<String>, Vec<Option<u64>>, ServeReport) {
    let workload = generate(load);
    let engine = Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct()));
    let runtime = Runtime::builder()
        .llm(Arc::clone(&engine) as Arc<dyn LlmClient>)
        .views(workload.views.clone())
        .build();
    let node = ServeNode::new(ServeConfig {
        lanes,
        quantum: 2,
        affinity_routing: affinity,
        // Generous depth: depth-based shedding is capacity-dependent by
        // design, and would legitimately differ across lane counts.
        admission: AdmissionConfig {
            max_depth: 100_000,
            ..AdmissionConfig::default()
        },
        verify_admission: true,
        pressure: None,
        program_cache_capacity: 64,
        reuse: true,
    });
    let run = node.run(&runtime, Some(&engine), workload.requests);
    let statuses = run
        .outcomes
        .iter()
        .map(|o| format!("{:?}", o.status))
        .collect();
    let digests = run.outcomes.iter().map(|o| o.trace_digest).collect();
    (statuses, digests, run.report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The scheduler's output traces are byte-identical for the same seed
    /// whether the node runs 1, 4, or 8 worker lanes — with affinity
    /// routing on or off. Queue waits and latency percentiles may differ
    /// (more lanes drain faster); what each request *computed* may not.
    #[test]
    fn traces_are_identical_across_lane_counts(
        seed in 0u64..1_000,
        requests in 8usize..28,
        families in 1usize..5,
        interactive_pct in 0u32..=100,
        affinity in any::<bool>(),
    ) {
        let load = LoadGenConfig {
            seed,
            requests,
            families,
            mean_interarrival_us: 5_000,
            interactive_fraction: f64::from(interactive_pct) / 100.0,
            interactive_deadline_us: None,
            gen_calls: 1,
            family_zipf: 0.0,
            duplicate_share: 0.0,
        };
        let (s1, d1, r1) = serve(&load, 1, affinity);
        let (s4, d4, r4) = serve(&load, 4, affinity);
        let (s8, d8, r8) = serve(&load, 8, affinity);
        prop_assert_eq!(&s1, &s4);
        prop_assert_eq!(&s1, &s8);
        prop_assert_eq!(&d1, &d4);
        prop_assert_eq!(&d1, &d8);
        prop_assert_eq!(r1.trace_fingerprint, r4.trace_fingerprint);
        prop_assert_eq!(r1.trace_fingerprint, r8.trace_fingerprint);
        // Every request completed (no shedding under the generous depth),
        // so the digests are real execution traces, not vacuous Nones.
        prop_assert!(d1.iter().all(Option::is_some));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Service deadlines are part of the determinism contract: cancelled
    /// requests cancel identically at any lane count.
    #[test]
    fn deadline_cancellations_are_lane_count_invariant(
        seed in 0u64..500,
        deadline_us in 1u64..200_000,
    ) {
        let load = LoadGenConfig {
            seed,
            requests: 16,
            families: 2,
            mean_interarrival_us: 5_000,
            interactive_fraction: 0.7,
            interactive_deadline_us: Some(deadline_us),
            gen_calls: 1,
            family_zipf: 0.0,
            duplicate_share: 0.0,
        };
        let (s1, d1, _) = serve(&load, 1, true);
        let (s8, d8, _) = serve(&load, 8, true);
        prop_assert_eq!(s1, s8);
        prop_assert_eq!(d1, d8);
    }
}

/// An interactive flood cannot indefinitely delay a batch request: the
/// aging rule dispatches the batch head after at most `starvation_limit`
/// consecutive interactive dispatches.
#[test]
fn interactive_flood_cannot_starve_batch() {
    use spear_core::history::RefinementMode;
    use spear_core::llm::EchoLlm;
    use spear_core::pipeline::Pipeline;
    use spear_core::plan::lower;
    use spear_core::runtime::ExecState;

    let runtime = Runtime::builder().llm(Arc::new(EchoLlm::default())).build();
    let plan = Arc::new(
        lower(
            &Pipeline::builder("flood")
                .create_text("p", "Answer: {{ctx:q}}", RefinementMode::Manual)
                .gen("a", "p")
                .build(),
        )
        .expect("lowers"),
    );
    let request = |id: u64, priority: Priority| {
        let mut state = ExecState::new();
        state.context.set("q", format!("q{id}"));
        ServeRequest::new(id, priority, Arc::clone(&plan), state, 0)
    };

    // One batch request buried under 40 simultaneous interactive ones, on
    // a single lane dispatching one request per round.
    let starvation_limit = 3u32;
    let mut requests = vec![request(0, Priority::Batch)];
    for id in 1..=40 {
        requests.push(request(id, Priority::Interactive));
    }
    let node = ServeNode::new(ServeConfig {
        lanes: 1,
        quantum: 1,
        affinity_routing: false,
        admission: AdmissionConfig {
            max_depth: 1_000,
            starvation_limit,
            ..AdmissionConfig::default()
        },
        verify_admission: true,
        pressure: None,
        program_cache_capacity: 64,
        reuse: true,
    });
    let run = node.run(&runtime, None, requests);

    let batch = run.outcome(0).expect("batch request served");
    assert_eq!(batch.status, ServeStatus::Completed);
    let interactive_finishes: Vec<u64> = run
        .outcomes
        .iter()
        .filter(|o| o.priority == Priority::Interactive)
        .map(|o| o.finish_us)
        .collect();
    let last = interactive_finishes.iter().max().copied().unwrap();
    assert!(
        batch.finish_us < last,
        "batch ({}) must not run after the whole flood ({last})",
        batch.finish_us
    );
    // Stronger: the aging bound says at most `starvation_limit`
    // interactive requests run first.
    let before_batch = interactive_finishes
        .iter()
        .filter(|&&f| f < batch.finish_us)
        .count();
    assert!(
        before_batch <= starvation_limit as usize,
        "only {starvation_limit} interactive dispatches may precede the \
         aged batch request, saw {before_batch}"
    );
    assert_eq!(run.report.batch.completed, 1);
    assert_eq!(run.report.interactive.completed, 40);
}

/// Affinity routing converts shared prompt prefixes into prefix-cache
/// hits; the same workload with routing off gets (almost) none.
#[test]
fn affinity_routing_buys_cache_hit_rate() {
    let load = LoadGenConfig {
        seed: 11,
        requests: 48,
        families: 3,
        mean_interarrival_us: 10_000,
        interactive_fraction: 0.5,
        interactive_deadline_us: None,
        gen_calls: 1,
        family_zipf: 0.0,
        duplicate_share: 0.0,
    };
    let (_, _, with_affinity) = serve(&load, 4, true);
    let (_, _, without) = serve(&load, 4, false);
    let on = with_affinity.cache_hit_rate().unwrap_or(0.0);
    let off = without.cache_hit_rate().unwrap_or(0.0);
    assert!(
        on > off + 0.3,
        "affinity routing should lift hit rate substantially: on={on:.3} off={off:.3}"
    );
    // The split by class is populated on both sides.
    assert!(with_affinity.interactive.prompt_tokens > 0);
    assert!(with_affinity.batch.prompt_tokens > 0);
    // Engine-level counters agree that the cache did real work.
    assert!(with_affinity.cache.lookups > 0);
    assert!(with_affinity.cache.hit_tokens > without.cache.hit_tokens);
}
