//! Integration tests for the serving node's compiled-program cache: the
//! LRU bound must hold under concurrent admission from many threads (with
//! coherent counters), recency must decide who gets evicted, and — the
//! specialization soundness property — a per-affinity specialized program
//! must produce byte-identical traces to a generic compile of the same
//! plan, because specialization only pre-warms host-side memoization.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use spear_core::llm::LlmClient;
use spear_core::plan::{lower, LoweredPlan};
use spear_core::prelude::{
    Cond, ExecState, Pipeline, RefinementMode, Runtime, Value, ViewCatalog, ViewDef,
};
use spear_core::view::ParamSpec;
use spear_llm::{ModelProfile, SimLlm};
use spear_serve::program_cache::ProgramCache;

fn plain_plan(name: &str) -> LoweredPlan {
    let p = Pipeline::builder(name)
        .create_text("p", "Q: {{ctx:q}}", RefinementMode::Manual)
        .gen("a", "p")
        .build();
    lower(&p).expect("pipeline lowers")
}

fn runtime() -> Runtime {
    Runtime::builder()
        .llm(Arc::new(spear_core::EchoLlm::default()))
        .build()
}

#[test]
fn lru_bound_holds_under_concurrent_admission() {
    let cache = Arc::new(ProgramCache::new(4));
    let runtime = Arc::new(runtime());
    let threads: u32 = 8;
    let plans_per_thread: u32 = 16;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            let runtime = Arc::clone(&runtime);
            scope.spawn(move || {
                for i in 0..plans_per_thread {
                    // Half the key space is shared across threads so hits
                    // and misses interleave; every plan compiles.
                    let name = format!("plan_{}", (t * plans_per_thread + i) % 24);
                    let plan = plain_plan(&name);
                    let program = cache.get_or_compile(&plan, &runtime, None);
                    assert!(program.is_some(), "well-formed plan must compile");
                }
            });
        }
    });

    assert!(
        cache.len() <= 4,
        "capacity exceeded: {} resident programs",
        cache.len()
    );
    let counters = cache.drain_counters();
    assert_eq!(
        counters.compiled + counters.cache_hits,
        u64::from(threads * plans_per_thread),
        "every lookup is exactly one hit or one compile"
    );
    assert_eq!(
        counters.compiled - counters.evicted,
        cache.len() as u64,
        "residents = compiles minus evictions"
    );
}

#[test]
fn eviction_follows_recency() {
    let cache = ProgramCache::new(2);
    let rt = runtime();
    let (a, b, c) = (plain_plan("a"), plain_plan("b"), plain_plan("c"));

    assert!(cache.get_or_compile(&a, &rt, None).is_some());
    assert!(cache.get_or_compile(&b, &rt, None).is_some());
    // Touch `a` so `b` becomes least-recently-used, then overflow with `c`.
    assert!(cache.get_or_compile(&a, &rt, None).is_some());
    assert!(cache.get_or_compile(&c, &rt, None).is_some());
    cache.drain_counters();

    // `a` survived (hit), `b` was evicted (recompile).
    assert!(cache.get_or_compile(&a, &rt, None).is_some());
    assert!(cache.get_or_compile(&b, &rt, None).is_some());
    let counters = cache.drain_counters();
    assert_eq!(counters.cache_hits, 1, "a should still be resident");
    assert_eq!(counters.compiled, 1, "b should have been evicted");
}

#[test]
fn failed_compiles_are_not_cached() {
    let cache = ProgramCache::new(4);
    let rt = runtime();
    // A hand-built plan with a malformed jump target fails verification.
    let mut plan = plain_plan("bad");
    plan.ops
        .push(spear_core::plan::LoweredOp::Jump { target: 9999 });
    assert!(cache.get_or_compile(&plan, &rt, None).is_none());
    assert!(cache.is_empty(), "failed compiles must not occupy a slot");
    let counters = cache.drain_counters();
    assert_eq!(counters.compiled, 0);
}

/// Build a view-derived pipeline (so the plan carries an affinity key and
/// the cache's specialization path runs) over a family-fixed template
/// prefix and a per-request parameter.
fn family_plan(template_head: &str, topic: &str, retry: bool) -> (LoweredPlan, ViewCatalog) {
    let views = ViewCatalog::new();
    views.register(
        ViewDef::new(
            "family",
            format!("{template_head}topic {{{{topic}}}}: {{{{ctx:q}}}}"),
        )
        .with_param(ParamSpec::required("topic")),
    );
    let args: BTreeMap<String, Value> = [("topic".to_string(), Value::from(topic))]
        .into_iter()
        .collect();
    let mut b = Pipeline::builder("family_member").create_from_view("p", "family", args);
    b = b.gen("answer", "p");
    if retry {
        b = b.check(Cond::low_confidence(0.7), |t| t.gen("answer_retry", "p"));
    }
    (lower(&b.build()).expect("pipeline lowers"), views)
}

fn fingerprint(result: &spear_core::Result<spear_core::ExecReport>, state: &ExecState) -> String {
    format!(
        "{result:?}|{}|{}",
        state.trace.to_jsonl().expect("trace serializes"),
        state.step,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness of per-affinity specialization: the program handed out by
    /// the cache (family prefix folded, token chain pre-resolved through
    /// the engine's interner) executes byte-identically to a freshly
    /// compiled generic program on the same engine — on the cold first
    /// request and on a warm repeat.
    #[test]
    fn specialized_and_generic_programs_trace_identically(
        head in "[a-z ]{1,24}",
        topic in "[a-z]{1,8}",
        question in "[a-z ]{1,16}",
        retry in any::<bool>(),
    ) {
        let (plan, views) = family_plan(&head, &topic, retry);
        prop_assert!(plan.affinity_key().is_some(), "view-derived plan must be keyed");

        let run = |specialize: bool| -> (String, String) {
            let engine = Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct()));
            let rt = Runtime::builder()
                .llm(Arc::clone(&engine) as Arc<dyn LlmClient>)
                .views(views.clone())
                .build();
            let program = if specialize {
                let cache = ProgramCache::new(8);
                cache
                    .get_or_compile(&plan, &rt, Some(&engine))
                    .expect("plan compiles")
            } else {
                Arc::new(spear_core::compile(&plan).expect("plan compiles"))
            };
            let run_once = || {
                let mut state = ExecState::new();
                state.context.set("q", question.clone());
                let result = rt.execute_program(&program, &mut state);
                fingerprint(&result, &state)
            };
            (run_once(), run_once())
        };

        let (spec_cold, spec_warm) = run(true);
        let (gen_cold, gen_warm) = run(false);
        prop_assert_eq!(&spec_cold, &gen_cold, "cold traces diverge");
        prop_assert_eq!(&spec_warm, &gen_warm, "warm traces diverge");
    }
}

#[test]
fn cached_programs_carry_static_bounds_and_optimize_on_admission() {
    let cache = ProgramCache::new(4);
    let rt = runtime();

    // A plain one-GEN plan: bounds are stored with the slot, optimizer
    // finds nothing to rewrite.
    let plan = plain_plan("bounded");
    cache.get_or_compile(&plan, &rt, None).expect("compiles");
    let bounds = cache
        .bounds_of(&plan)
        .expect("bounds stored with the program");
    assert_eq!(bounds.llm_calls, spear_core::analysis::Interval::exact(1));
    assert_eq!(bounds.tokens.hi, 256);
    assert!(bounds.terminates);
    let counters = cache.drain_counters();
    assert_eq!(counters.compiled, 1);
    assert_eq!(counters.optimized, 0);

    // A statically-gated plan: the verified optimizer folds the Never
    // branch, the counter ticks, and the stored bounds reflect the
    // optimized program (one reachable GEN, not two).
    let gated = lower(
        &Pipeline::builder("gated")
            .create_text("p", "Q: {{ctx:q}}", RefinementMode::Manual)
            .gen("a", "p")
            .check(Cond::Never, |t| t.gen("b", "p"))
            .build(),
    )
    .expect("pipeline lowers");
    cache.get_or_compile(&gated, &rt, None).expect("compiles");
    let counters = cache.drain_counters();
    assert_eq!(counters.compiled, 1);
    assert_eq!(counters.optimized, 1);
    let bounds = cache.bounds_of(&gated).expect("bounds stored");
    assert_eq!(bounds.llm_calls, spear_core::analysis::Interval::exact(1));
}
