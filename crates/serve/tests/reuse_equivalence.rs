//! The generation memo's invisibility contract: for any duplicate-heavy
//! workload, serving with `ServeConfig::reuse` on is byte-identical to
//! serving with it off — statuses, trace digests, token usage, and the
//! virtual timeline — at any lane count, including runs where requests
//! abort on token budgets or cancel on service deadlines. The memo may
//! only change host-side cost and the `ServeReport::reuse` ledger, and
//! that ledger must itself be identical at every lane count.

use std::sync::Arc;

use proptest::prelude::*;
use spear_core::llm::LlmClient;
use spear_core::runtime::{Runtime, RuntimeConfig};
use spear_llm::{ModelProfile, SimLlm};
use spear_serve::prelude::*;

/// Outputs that must not depend on the reuse knob or the lane count.
#[derive(Debug, PartialEq)]
struct Observed {
    statuses: Vec<String>,
    digests: Vec<Option<u64>>,
    usage: Vec<(u64, u64, u64)>,
    makespan_us: u64,
}

fn serve(
    load: &LoadGenConfig,
    lanes: usize,
    reuse: bool,
    max_tokens: Option<u64>,
) -> (Observed, ReuseReport) {
    let workload = generate(load);
    let engine = Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct()));
    let runtime = Runtime::builder()
        .llm(Arc::clone(&engine) as Arc<dyn LlmClient>)
        .views(workload.views.clone())
        .config(RuntimeConfig {
            max_tokens,
            ..RuntimeConfig::default()
        })
        .build();
    let node = ServeNode::new(ServeConfig {
        lanes,
        quantum: 2,
        affinity_routing: true,
        admission: AdmissionConfig {
            max_depth: 100_000,
            ..AdmissionConfig::default()
        },
        verify_admission: false,
        pressure: None,
        program_cache_capacity: 64,
        reuse,
    });
    let run = node.run(&runtime, Some(&engine), workload.requests);
    let observed = Observed {
        statuses: run
            .outcomes
            .iter()
            .map(|o| format!("{:?}", o.status))
            .collect(),
        digests: run.outcomes.iter().map(|o| o.trace_digest).collect(),
        usage: run
            .outcomes
            .iter()
            .map(|o| {
                (
                    o.usage.prompt_tokens,
                    o.usage.cached_tokens,
                    o.usage.completion_tokens,
                )
            })
            .collect(),
        makespan_us: run.report.makespan_us,
    };
    (observed, run.report.reuse)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Reuse on ≡ reuse off at 1, 4, and 8 lanes, over random seeds and
    /// duplicate shares — and the reuse-on ledger is lane-invariant.
    #[test]
    fn reuse_is_invisible_at_any_lane_count(
        seed in 0u64..1_000,
        duplicate_pct in 30u32..=90,
        gen_calls in 1usize..=3,
    ) {
        let load = LoadGenConfig {
            seed,
            requests: 24,
            families: 3,
            mean_interarrival_us: 5_000,
            duplicate_share: f64::from(duplicate_pct) / 100.0,
            gen_calls,
            ..LoadGenConfig::default()
        };
        let mut ledgers = Vec::new();
        for lanes in [1usize, 4, 8] {
            let (on, ledger) = serve(&load, lanes, true, None);
            let (off, off_ledger) = serve(&load, lanes, false, None);
            prop_assert_eq!(&on, &off, "reuse must be invisible at {} lanes", lanes);
            prop_assert_eq!(off_ledger, ReuseReport::default());
            ledgers.push(ledger);
        }
        prop_assert!(
            ledgers.windows(2).all(|w| w[0] == w[1]),
            "reuse ledger must be lane-invariant: {:?}", ledgers
        );
    }

    /// Budget-aborted executions stay equivalent: a tight `max_tokens`
    /// fails requests identically whether their GENs replayed from the
    /// memo or executed live (replays restate the original usage, so the
    /// budget gate sees the same numbers).
    #[test]
    fn budget_aborts_are_reuse_invariant(
        seed in 0u64..500,
        max_tokens in 200u64..2_000,
    ) {
        let load = LoadGenConfig {
            seed,
            requests: 16,
            families: 2,
            mean_interarrival_us: 5_000,
            duplicate_share: 0.6,
            ..LoadGenConfig::default()
        };
        for lanes in [1usize, 4] {
            let (on, _) = serve(&load, lanes, true, Some(max_tokens));
            let (off, _) = serve(&load, lanes, false, Some(max_tokens));
            prop_assert_eq!(&on, &off, "budget aborts diverged at {} lanes", lanes);
        }
    }

    /// Deadline cancellations stay equivalent: replayed GENs advance the
    /// virtual clock by the same service time as live execution, so the
    /// deadline gate cancels the same requests at the same slots.
    #[test]
    fn deadline_cancellations_are_reuse_invariant(
        seed in 0u64..500,
        deadline_us in 1u64..150_000,
    ) {
        let load = LoadGenConfig {
            seed,
            requests: 16,
            families: 2,
            mean_interarrival_us: 5_000,
            interactive_fraction: 0.7,
            interactive_deadline_us: Some(deadline_us),
            duplicate_share: 0.6,
            gen_calls: 2,
            ..LoadGenConfig::default()
        };
        for lanes in [1usize, 8] {
            let (on, _) = serve(&load, lanes, true, None);
            let (off, _) = serve(&load, lanes, false, None);
            prop_assert_eq!(&on, &off, "cancellations diverged at {} lanes", lanes);
        }
    }
}

/// The duplicate-heavy sweep exercises both ledger classes: duplicates
/// inside their leader's service window count as `coalesced`, later ones
/// as `hits`, and the split is identical at every lane count.
#[test]
fn ledger_classifies_hits_and_coalesced_deterministically() {
    let load = LoadGenConfig {
        seed: 7,
        requests: 96,
        families: 3,
        mean_interarrival_us: 2_000,
        duplicate_share: 0.7,
        ..LoadGenConfig::default()
    };
    let (_, baseline) = serve(&load, 1, true, None);
    assert!(baseline.coalesced > 0, "bursty duplicates coalesce");
    assert!(baseline.saved_calls == baseline.hits + baseline.coalesced);
    assert!(baseline.saved_tokens > 0);
    assert!(baseline.inserted > 0);
    for lanes in [4usize, 8] {
        let (_, ledger) = serve(&load, lanes, true, None);
        assert_eq!(ledger, baseline, "ledger diverged at {lanes} lanes");
    }
}
