//! Memory-pressure invariants: a bounded KV block pool shapes *timing*
//! — queue waits, service time, preemptions, evictions — but never
//! *results*. A pressured run must produce byte-identical executions to
//! the unconstrained run of the same workload, and all contended
//! counters must be lane-count-invariant.

use std::sync::Arc;

use proptest::prelude::*;
use spear_core::llm::LlmClient;
use spear_core::runtime::Runtime;
use spear_llm::{ModelProfile, SimLlm};
use spear_serve::prelude::*;

/// A pool tight enough that a serving run with concurrent decode work
/// must evict resident blocks and preempt running sequences.
fn tight_pressure() -> KvPressureConfig {
    KvPressureConfig {
        pool_blocks: 200,
        block_size: 4,
        pool_stripes: 1,
        max_batched_tokens: 1024,
        prefill_chunk_tokens: 128,
        ..KvPressureConfig::default()
    }
}

fn config(lanes: usize, pressure: Option<KvPressureConfig>) -> ServeConfig {
    ServeConfig {
        lanes,
        quantum: 2,
        affinity_routing: true,
        // Generous depth and bucket: under pressure the bounded pool is
        // the backpressure valve, and the equivalence claim is about
        // requests that actually run.
        admission: AdmissionConfig {
            max_depth: 100_000,
            ..AdmissionConfig::default()
        },
        verify_admission: true,
        pressure,
        program_cache_capacity: 64,
        reuse: true,
    }
}

/// Run `load` on a fresh engine/runtime/node (so engine cache state never
/// leaks between compared runs).
fn serve(load: &LoadGenConfig, lanes: usize, pressure: Option<KvPressureConfig>) -> ServeRun {
    let workload = generate(load);
    let engine = Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct()));
    let runtime = Runtime::builder()
        .llm(Arc::clone(&engine) as Arc<dyn LlmClient>)
        .views(workload.views.clone())
        .build();
    ServeNode::new(config(lanes, pressure)).run(&runtime, Some(&engine), workload.requests)
}

/// A bursty workload: arrivals far faster than service, so many
/// sequences contend for pool residency at once.
fn bursty_load(seed: u64, requests: usize) -> LoadGenConfig {
    LoadGenConfig {
        seed,
        requests,
        families: 4,
        mean_interarrival_us: 500,
        interactive_fraction: 0.6,
        interactive_deadline_us: None,
        // Six GEN slots: long decode phases make running requests' KV
        // footprints grow, which is what forces mid-flight preemption.
        gen_calls: 6,
        family_zipf: 0.0,
        duplicate_share: 0.0,
    }
}

/// The tentpole equivalence claim: same workload, with and without the
/// bounded pool — every request's status, trace digest, and token usage
/// are identical, while the pressured run visibly preempted and evicted.
#[test]
fn pressured_runs_execute_byte_identically_to_unconstrained_runs() {
    let load = bursty_load(1729, 64);
    let free = serve(&load, 4, None);
    let pressured = serve(&load, 4, Some(tight_pressure()));

    assert_eq!(free.outcomes.len(), pressured.outcomes.len());
    for (a, b) in free.outcomes.iter().zip(&pressured.outcomes) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.status, b.status, "request {}", a.id);
        assert_eq!(a.trace_digest, b.trace_digest, "request {}", a.id);
        assert_eq!(a.usage, b.usage, "request {}", a.id);
    }
    assert_eq!(
        free.report.trace_fingerprint,
        pressured.report.trace_fingerprint
    );

    // The unconstrained run never touches the pool…
    assert!(!free.report.kv.enabled);
    assert_eq!(free.report.kv.preempted, 0);
    assert!(free.outcomes.iter().all(|o| o.preemptions == 0));

    // …while the pressured run visibly fought for memory.
    let kv = &pressured.report.kv;
    assert!(kv.enabled);
    assert!(kv.preempted > 0, "tight pool must preempt: {kv:?}");
    assert!(kv.evicted_blocks > 0, "tight pool must evict: {kv:?}");
    assert!(kv.freed_blocks > 0, "preemption frees private blocks");
    assert!(kv.alloc_failures > 0);
    assert!(kv.peak_live_blocks <= kv.pool_blocks);
    assert!(kv.reused_blocks > 0, "families still share prefix blocks");
    // Per-request preemption counts reconcile with the report, both in
    // the KV totals and in the per-class split.
    let per_request: u64 = pressured
        .outcomes
        .iter()
        .map(|o| u64::from(o.preemptions))
        .sum();
    assert_eq!(per_request, kv.preempted);
    assert_eq!(
        pressured.report.interactive.preempted + pressured.report.batch.preempted,
        kv.preempted
    );

    // Contention costs time: under identical token economics, the tight
    // pool's recompute-on-resume makespan can only be worse than a pool
    // big enough to never contend. (The unconstrained run is not the
    // baseline here — it uses the lane-quantum timing model, not the
    // iteration scheduler's.)
    let roomy = serve(
        &load,
        4,
        Some(KvPressureConfig {
            pool_blocks: 1 << 20,
            ..tight_pressure()
        }),
    );
    assert_eq!(roomy.report.kv.preempted, 0, "a huge pool never preempts");
    assert_eq!(roomy.report.kv.evicted_blocks, 0);
    assert_eq!(
        roomy.report.trace_fingerprint,
        pressured.report.trace_fingerprint
    );
    assert!(pressured.report.makespan_us >= roomy.report.makespan_us);
}

/// Preempted requests still complete (recompute-on-resume, not drop).
#[test]
fn preempted_requests_complete_with_real_digests() {
    let run = serve(&bursty_load(7, 48), 4, Some(tight_pressure()));
    assert!(run.report.kv.preempted > 0);
    let preempted: Vec<_> = run.outcomes.iter().filter(|o| o.preemptions > 0).collect();
    assert!(!preempted.is_empty());
    for o in preempted {
        assert_eq!(o.status, ServeStatus::Completed, "request {}", o.id);
        assert!(o.trace_digest.is_some());
        assert!(o.finish_us > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Eviction and preemption counters are part of the determinism
    /// contract: identical fingerprints *and* identical contended
    /// counters at 1, 4, and 8 lanes. Lanes parallelize host execution;
    /// the simulated device schedule is lane-invariant by construction.
    #[test]
    fn pressure_counters_are_lane_count_invariant(
        seed in 0u64..500,
        requests in 24usize..40,
        pool_blocks in 64usize..160,
    ) {
        let load = bursty_load(seed, requests);
        let pressure = KvPressureConfig {
            pool_blocks,
            ..tight_pressure()
        };
        let r1 = serve(&load, 1, Some(pressure.clone()));
        let r4 = serve(&load, 4, Some(pressure.clone()));
        let r8 = serve(&load, 8, Some(pressure));

        prop_assert_eq!(r1.report.trace_fingerprint, r4.report.trace_fingerprint);
        prop_assert_eq!(r1.report.trace_fingerprint, r8.report.trace_fingerprint);
        prop_assert_eq!(&r1.report.kv, &r4.report.kv);
        prop_assert_eq!(&r1.report.kv, &r8.report.kv);
        prop_assert_eq!(r1.report.makespan_us, r4.report.makespan_us);
        prop_assert_eq!(r1.report.makespan_us, r8.report.makespan_us);
        prop_assert_eq!(
            r1.report.interactive.preempted,
            r4.report.interactive.preempted
        );
        prop_assert_eq!(r1.report.batch.preempted, r8.report.batch.preempted);
        for (a, b) in r1.outcomes.iter().zip(&r4.outcomes) {
            prop_assert_eq!(a.preemptions, b.preemptions);
            prop_assert_eq!(a.finish_us, b.finish_us);
            prop_assert_eq!(a.queue_wait_us, b.queue_wait_us);
        }
        for (a, b) in r1.outcomes.iter().zip(&r8.outcomes) {
            prop_assert_eq!(a.preemptions, b.preemptions);
            prop_assert_eq!(a.finish_us, b.finish_us);
        }
    }
}
