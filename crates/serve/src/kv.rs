//! Token-level continuous batching under a bounded KV block pool — the
//! memory-pressure model behind `ServeConfig::pressure`.
//!
//! ## Two-phase design: execute, then schedule
//!
//! The serving scheduler keeps the repo-wide determinism invariant (same
//! traces and counters at 1, 4, or 8 lanes) by splitting a pressured run
//! in two:
//!
//! 1. **Execute** every admitted request exactly as the unconstrained
//!    path would — same owner groups, same per-group arrival order, same
//!    engine — so `GenResponse`s and trace digests are byte-identical
//!    whether or not memory pressure is configured (pinned by the
//!    preemption-equivalence test).
//! 2. **Schedule** the measured token footprints through this module's
//!    single-threaded virtual-time iteration loop against a bounded
//!    [`BlockPool`]. Lanes parallelize phase 1's host execution only; the
//!    batching engine being modelled here is one token-interleaved
//!    device, so every eviction and preemption decision happens on the
//!    virtual clock and the counters are lane-invariant *by
//!    construction*.
//!
//! ## The iteration loop (vLLM-style)
//!
//! Each virtual-time iteration composes one batch under a
//! `max_batched_tokens` budget: first a decode step (one token) for every
//! running decode-phase sequence, then chunked prefill for running
//! prefill-phase sequences, then admission of waiting sequences while
//! budget remains (bounded by `max_running_seqs`). Blocks are allocated
//! **as the context materializes** — admission pins only whatever prefix
//! is already resident (prefix-cache reuse, skipping its recompute), and
//! every prefill chunk or decode step first extends the sequence's lease
//! to cover the tokens about to be processed. When the pool is
//! exhausted, the scheduler preempts a *later-admitted* running sequence
//! (preferring the batch class, then the latest admission) — freeing its
//! blocks ([`BlockPool::free`], recompute-on-resume) and re-queueing it
//! **ahead of new arrivals** — and retries. Never preempting an
//! earlier-admitted sequence makes progress unconditional: the oldest
//! running sequence can always grow, so every run terminates. A sequence
//! too large for the whole pool degrades to a streamed tail (it pins
//! what fits and keeps going) instead of livelocking on itself.
//!
//! Preempted sequences keep their generated-token count; on re-admission
//! they re-prefill `prompt + decoded` tokens, minus whatever prefix
//! blocks survived in the pool (the family's shared prefix usually did —
//! that is prefix caching earning its keep under contention).

use spear_llm::{BlockPool, PoolExhausted};

use crate::metrics::KvReport;
use crate::queue::ClassFifo;
use crate::request::Priority;

/// Memory-pressure configuration: the bounded pool plus the iteration
/// scheduler's token economics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvPressureConfig {
    /// Total KV block budget (the "GPU memory" of the simulated device).
    pub pool_blocks: usize,
    /// Tokens per KV block.
    pub block_size: usize,
    /// Lock stripes for the pool (scheduling here is single-threaded, so
    /// this only shapes per-stripe capacity rounding).
    pub pool_stripes: usize,
    /// Per-iteration token budget shared by decode steps and prefill
    /// chunks.
    pub max_batched_tokens: u64,
    /// Largest prefill chunk one sequence gets per iteration.
    pub prefill_chunk_tokens: u64,
    /// Cap on concurrently running sequences (vLLM's `max_num_seqs`).
    pub max_running_seqs: usize,
    /// Fixed virtual µs per iteration (kernel launch / scheduling
    /// overhead).
    pub step_overhead_us: u64,
    /// Virtual µs per prefill token.
    pub prefill_us_per_token: u64,
    /// Virtual µs per decode token.
    pub decode_us_per_token: u64,
}

impl Default for KvPressureConfig {
    fn default() -> Self {
        Self {
            pool_blocks: 4096,
            block_size: 16,
            pool_stripes: 1,
            max_batched_tokens: 2048,
            prefill_chunk_tokens: 256,
            max_running_seqs: 16,
            step_overhead_us: 50,
            prefill_us_per_token: 2,
            decode_us_per_token: 40,
        }
    }
}

/// One sequence's token footprint, measured by the execution phase.
#[derive(Debug, Clone)]
pub(crate) struct SeqInput {
    /// Request id (reporting only).
    pub id: u64,
    /// Scheduling class.
    pub priority: Priority,
    /// Arrival timestamp on the virtual clock.
    pub arrival_us: u64,
    /// Prompt tokens to prefill.
    pub prompt_tokens: u64,
    /// Tokens the execution actually generated.
    pub completion_tokens: u64,
    /// Leading prompt tokens shared with the sequence's affinity group
    /// (clamped to `prompt_tokens`; only full blocks are shared).
    pub shared_prefix_tokens: u64,
    /// Chain-hash seed: equal for sequences in one affinity group, unique
    /// otherwise.
    pub family_seed: u64,
}

/// Virtual-time placement of one sequence, produced by the scheduler.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SeqTiming {
    /// When the sequence first entered the running set.
    pub start_us: u64,
    /// When its last token (or empty footprint) completed.
    pub finish_us: u64,
    /// Its own tokens' share of iteration time.
    pub service_us: u64,
    /// Preemption events it suffered.
    pub preemptions: u32,
}

/// Everything one simulation produced.
#[derive(Debug)]
pub(crate) struct KvSimRun {
    /// Per-sequence timings, parallel to the input slice.
    pub timings: Vec<SeqTiming>,
    /// Pool + scheduler counters.
    pub report: KvReport,
    /// Preemption events per class, in [`Priority::ALL`] order.
    pub preempted_by_class: [u64; 2],
    /// Waiting-set depth per class observed at each arrival, in
    /// [`Priority::ALL`] order.
    pub depth_samples: Vec<(Priority, u64)>,
    /// Virtual time the last sequence finished.
    pub makespan_us: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Waiting,
    Running,
    Finished,
}

struct Seq {
    phase: Phase,
    /// Context tokens whose KV is materialized (prefill progress; during
    /// decode it tracks `prompt + decoded`).
    prefilled: u64,
    decoded: u64,
    leased_blocks: usize,
    admission_order: u64,
    /// Decode finished this iteration; release happens at iteration end.
    finishing: bool,
    started_at: Option<u64>,
    finished_at: u64,
    service_us: u64,
    preemptions: u32,
}

fn class_index(p: Priority) -> usize {
    match p {
        Priority::Interactive => 0,
        Priority::Batch => 1,
    }
}

/// Preemption preference rank: lower ranks are preempted first.
fn preempt_rank(p: Priority) -> u8 {
    match p {
        Priority::Batch => 0,
        Priority::Interactive => 1,
    }
}

fn mix(seed: u64, parts: &[u64]) -> u64 {
    let mut h = seed | 1;
    for &p in parts {
        for b in p.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

struct Sim<'a> {
    cfg: &'a KvPressureConfig,
    inputs: &'a [SeqInput],
    seqs: Vec<Seq>,
    pool: BlockPool,
    running: Vec<usize>,
    resume: std::collections::VecDeque<usize>,
    waiting: ClassFifo<usize>,
    admission_counter: u64,
    preempted_by_class: [u64; 2],
    depth_samples: Vec<(Priority, u64)>,
    peak_live_blocks: u64,
    steps: u64,
}

impl<'a> Sim<'a> {
    /// Pool sequence ids are `index + 1` (0 is nobody).
    fn pool_seq(idx: usize) -> u64 {
        idx as u64 + 1
    }

    /// Context tokens the sequence must have materialized before its next
    /// decode step: the prompt plus everything decoded so far.
    fn context_target(&self, idx: usize) -> u64 {
        self.inputs[idx].prompt_tokens + self.seqs[idx].decoded
    }

    /// Block-hash chain covering the first `blocks` blocks of `idx`'s
    /// context. Blocks inside the (full-block) shared prefix hash by
    /// family only, so same-family sequences share them physically; the
    /// rest is salted by id, shareable only with this sequence's own
    /// resumed self.
    fn chain_for(&self, idx: usize, blocks: usize) -> Vec<u64> {
        let input = &self.inputs[idx];
        let bs = self.cfg.block_size as u64;
        let shared_blocks = input.shared_prefix_tokens.min(input.prompt_tokens) / bs;
        (0..blocks as u64)
            .map(|b| {
                if b < shared_blocks {
                    mix(input.family_seed, &[b])
                } else {
                    mix(input.family_seed, &[input.id + 1, b])
                }
            })
            .collect()
    }

    fn blocks_for_tokens(&self, tokens: u64) -> usize {
        (tokens as usize).div_ceil(self.cfg.block_size)
    }

    /// Preempt `idx`: drop its private blocks (recompute-on-resume) and
    /// re-queue it ahead of new arrivals.
    fn preempt(&mut self, idx: usize) {
        self.pool.free(Self::pool_seq(idx));
        let class = self.inputs[idx].priority;
        let seq = &mut self.seqs[idx];
        seq.leased_blocks = 0;
        seq.prefilled = 0;
        seq.phase = Phase::Waiting;
        seq.preemptions += 1;
        self.preempted_by_class[class_index(class)] += 1;
        self.running.retain(|&r| r != idx);
        self.resume.push_back(idx);
    }

    /// The running sequence to preempt so `for_idx` can allocate: among
    /// sequences admitted strictly *later* than the requester (so the
    /// oldest running sequence is never preempted and progress is
    /// unconditional), prefer the batch class, then the latest admission.
    /// Never a finishing sequence — its lease releases this iteration
    /// anyway.
    fn pick_victim(&self, for_idx: usize) -> Option<usize> {
        let requester_order = self.seqs[for_idx].admission_order;
        self.running
            .iter()
            .copied()
            .filter(|&v| {
                v != for_idx
                    && !self.seqs[v].finishing
                    && self.seqs[v].leased_blocks > 0
                    && self.seqs[v].admission_order > requester_order
            })
            .max_by_key(|&v| {
                (
                    std::cmp::Reverse(preempt_rank(self.inputs[v].priority)),
                    self.seqs[v].admission_order,
                )
            })
    }

    /// Grow `idx`'s lease to cover `blocks` blocks, preempting
    /// later-admitted victims as needed. Returns `false` when the step
    /// must be skipped this iteration — earlier-admitted sequences (or
    /// this iteration's finishers) hold the pool, and their progress or
    /// release is what frees it.
    fn ensure_blocks(&mut self, idx: usize, blocks: usize) -> bool {
        loop {
            let chain = self.chain_for(idx, blocks);
            match self.pool.allocate(Self::pool_seq(idx), &chain) {
                Ok(grant) => {
                    self.seqs[idx].leased_blocks = grant.lease_blocks;
                    return true;
                }
                Err(PoolExhausted { .. }) => {
                    if let Some(victim) = self.pick_victim(idx) {
                        self.preempt(victim);
                        continue;
                    }
                    if self
                        .running
                        .iter()
                        .any(|&v| v != idx && self.seqs[v].leased_blocks > 0)
                    {
                        // Earlier-admitted sequences (or finishers about
                        // to release) pin the pool: wait for them rather
                        // than inverting admission order.
                        return false;
                    }
                    // Nobody else holds blocks: the sequence is bigger
                    // than the pool. Pin what fits and stream the tail —
                    // never livelock on self-preemption.
                    let grant = self.pool.allocate_prefix(Self::pool_seq(idx), &chain);
                    self.seqs[idx].leased_blocks = grant.lease_blocks;
                    return true;
                }
            }
        }
    }

    fn run(mut self) -> KvSimRun {
        let n = self.inputs.len();
        let mut next_arrival = 0usize;
        let mut finished = 0usize;
        let mut now = 0u64;
        let mut stalled_iterations = 0u32;

        while finished < n {
            // Admit arrivals whose timestamp has been reached.
            while next_arrival < n && self.inputs[next_arrival].arrival_us <= now {
                let class = self.inputs[next_arrival].priority;
                self.waiting.push_back(class, next_arrival);
                self.depth_samples
                    .push((class, self.waiting.depth(class) as u64));
                next_arrival += 1;
            }
            if self.running.is_empty() && self.resume.is_empty() && self.waiting.is_empty() {
                // Idle: jump to the next arrival.
                let arrival = self.inputs[next_arrival].arrival_us;
                now = now.max(arrival);
                continue;
            }

            let mut budget = self.cfg.max_batched_tokens.max(1);
            let mut prefill_tokens = 0u64;
            let mut decode_tokens = 0u64;
            let mut admissions = 0u32;
            let mut preemptions_before = self.preempted_by_class;

            // --- Decode: one token for every running decode-phase
            // sequence, in admission order.
            for idx in self.running.clone() {
                if budget == 0 {
                    break;
                }
                let seq = &self.seqs[idx];
                if seq.phase != Phase::Running || seq.finishing {
                    continue; // preempted earlier in this very pass
                }
                let target = self.context_target(idx);
                let input = &self.inputs[idx];
                if seq.prefilled < target || seq.decoded >= input.completion_tokens {
                    continue; // still prefilling, or nothing to decode
                }
                // KV room for the token about to be generated.
                let blocks_needed = self.blocks_for_tokens(target + 1);
                if blocks_needed > self.seqs[idx].leased_blocks
                    && !self.ensure_blocks(idx, blocks_needed)
                {
                    continue;
                }
                if self.seqs[idx].phase != Phase::Running {
                    continue; // lost a preemption fight for its own slot
                }
                budget -= 1;
                decode_tokens += 1;
                let seq = &mut self.seqs[idx];
                seq.decoded += 1;
                seq.prefilled += 1;
                seq.service_us += self.cfg.decode_us_per_token;
                if seq.decoded == self.inputs[idx].completion_tokens {
                    seq.finishing = true;
                }
            }

            // --- Prefill: chunked, for running prefill-phase sequences.
            // Each chunk first extends the lease to cover the tokens it
            // is about to materialize; a sequence that cannot get blocks
            // (earlier-admitted holders) simply skips its turn.
            for idx in self.running.clone() {
                if budget == 0 {
                    break;
                }
                if self.seqs[idx].phase != Phase::Running || self.seqs[idx].finishing {
                    continue;
                }
                let target = self.context_target(idx);
                let remaining = target.saturating_sub(self.seqs[idx].prefilled);
                if remaining == 0 {
                    continue;
                }
                let chunk = budget
                    .min(self.cfg.prefill_chunk_tokens.max(1))
                    .min(remaining);
                let covered = self.seqs[idx].prefilled + chunk;
                let blocks_needed = self.blocks_for_tokens(covered);
                if blocks_needed > self.seqs[idx].leased_blocks
                    && !self.ensure_blocks(idx, blocks_needed)
                {
                    continue;
                }
                budget -= chunk;
                prefill_tokens += chunk;
                let seq = &mut self.seqs[idx];
                seq.prefilled += chunk;
                seq.service_us += chunk * self.cfg.prefill_us_per_token;
                if seq.prefilled >= target && seq.decoded >= self.inputs[idx].completion_tokens {
                    seq.finishing = true; // nothing to decode (empty completion)
                }
            }

            // --- Admission: resumed sequences first (ahead of new
            // arrivals), then the waiting set, while budget and running
            // slots remain. Admission pins only the already-resident
            // prefix (which allocates nothing new, so it cannot fail);
            // blocks for the rest of the context are leased chunk by
            // chunk as prefill materializes it.
            let max_running = self.cfg.max_running_seqs.max(1);
            while budget > 0 && self.running.len() < max_running {
                let idx = match self.resume.pop_front() {
                    Some(idx) => idx,
                    None => match self.waiting.pop() {
                        Some((_, idx)) => idx,
                        None => break,
                    },
                };
                let target = self.context_target(idx);
                let blocks = self.blocks_for_tokens(target);
                let chain = self.chain_for(idx, blocks);
                let resident = self.pool.peek(&chain);
                let grant = self
                    .pool
                    .allocate(Self::pool_seq(idx), &chain[..resident])
                    .expect("pinning a fully-resident prefix needs no new blocks");
                admissions += 1;
                let bs = self.cfg.block_size as u64;
                let seq = &mut self.seqs[idx];
                seq.leased_blocks = grant.lease_blocks;
                // Resident prefix blocks skip recompute (pool prefix
                // reuse — shared family blocks and, on resume, whatever
                // of the sequence's own context survived).
                seq.prefilled = (grant.lease_blocks as u64 * bs).min(target);
                seq.phase = Phase::Running;
                seq.admission_order = self.admission_counter;
                self.admission_counter += 1;
                if seq.started_at.is_none() {
                    seq.started_at = Some(now);
                }
                self.running.push(idx);
                // First prefill chunk within this same iteration, lease
                // permitting (a full pool just leaves it for later).
                let remaining = target.saturating_sub(self.seqs[idx].prefilled);
                let chunk = budget
                    .min(self.cfg.prefill_chunk_tokens.max(1))
                    .min(remaining);
                let covered = self.seqs[idx].prefilled + chunk;
                let blocks_needed = self.blocks_for_tokens(covered);
                if chunk > 0
                    && blocks_needed > self.seqs[idx].leased_blocks
                    && !self.ensure_blocks(idx, blocks_needed)
                {
                    continue;
                }
                budget -= chunk;
                prefill_tokens += chunk;
                let seq = &mut self.seqs[idx];
                seq.prefilled += chunk;
                seq.service_us += chunk * self.cfg.prefill_us_per_token;
                if seq.prefilled >= target && seq.decoded >= self.inputs[idx].completion_tokens {
                    seq.finishing = true; // empty or fully-cached footprint
                }
            }

            // --- Advance the clock and settle finishers.
            let batched = prefill_tokens + decode_tokens;
            if batched > 0 {
                now += self.cfg.step_overhead_us
                    + prefill_tokens * self.cfg.prefill_us_per_token
                    + decode_tokens * self.cfg.decode_us_per_token;
                self.steps += 1;
            }
            for idx in 0..n {
                if self.seqs[idx].finishing {
                    self.seqs[idx].finishing = false;
                    self.seqs[idx].phase = Phase::Finished;
                    self.seqs[idx].finished_at = now;
                    self.pool.release(Self::pool_seq(idx));
                    self.seqs[idx].leased_blocks = 0;
                    self.running.retain(|&r| r != idx);
                    finished += 1;
                }
            }
            self.peak_live_blocks = self.peak_live_blocks.max(self.pool.live_blocks() as u64);

            // Stall guard: an iteration that moved no tokens, admitted
            // nothing, and preempted nothing means a scheduling bug — the
            // design guarantees at least one of the three.
            preemptions_before[0] = self.preempted_by_class[0] - preemptions_before[0];
            preemptions_before[1] = self.preempted_by_class[1] - preemptions_before[1];
            let progressed =
                batched > 0 || admissions > 0 || preemptions_before[0] + preemptions_before[1] > 0;
            if progressed {
                stalled_iterations = 0;
            } else {
                stalled_iterations += 1;
                assert!(
                    stalled_iterations < 4,
                    "KV iteration scheduler stalled: {} running, {} waiting, {} resumed, \
                     pool {}/{} blocks live",
                    self.running.len(),
                    self.waiting.len(),
                    self.resume.len(),
                    self.pool.live_blocks(),
                    self.pool.capacity(),
                );
            }
        }

        let stats = self.pool.stats();
        let timings = self
            .seqs
            .iter()
            .map(|s| SeqTiming {
                start_us: s.started_at.unwrap_or(s.finished_at),
                finish_us: s.finished_at,
                service_us: s.service_us,
                preemptions: s.preemptions,
            })
            .collect();
        KvSimRun {
            timings,
            report: KvReport {
                enabled: true,
                pool_blocks: self.pool.capacity() as u64,
                block_size: self.cfg.block_size as u64,
                max_batched_tokens: self.cfg.max_batched_tokens,
                steps: self.steps,
                preempted: self.preempted_by_class.iter().sum(),
                evicted_blocks: stats.evicted_blocks,
                freed_blocks: stats.freed_blocks,
                inserted_blocks: stats.inserted_blocks,
                reused_blocks: stats.reused_blocks,
                requested_blocks: stats.requested_blocks,
                alloc_failures: stats.alloc_failures,
                peak_live_blocks: self.peak_live_blocks,
            },
            preempted_by_class: self.preempted_by_class,
            depth_samples: self.depth_samples,
            makespan_us: now,
        }
    }
}

/// Schedule `inputs` (sorted by non-decreasing `arrival_us`) through the
/// iteration loop. Single-threaded and fully deterministic: the output is
/// a pure function of `inputs` and `cfg`.
pub(crate) fn simulate(inputs: &[SeqInput], cfg: &KvPressureConfig) -> KvSimRun {
    debug_assert!(
        inputs
            .windows(2)
            .all(|w| w[0].arrival_us <= w[1].arrival_us),
        "sequences must be sorted by arrival"
    );
    let seqs = inputs
        .iter()
        .map(|_| Seq {
            phase: Phase::Waiting,
            prefilled: 0,
            decoded: 0,
            leased_blocks: 0,
            admission_order: 0,
            finishing: false,
            started_at: None,
            finished_at: 0,
            service_us: 0,
            preemptions: 0,
        })
        .collect();
    Sim {
        cfg,
        inputs,
        seqs,
        pool: BlockPool::new(cfg.pool_blocks, cfg.pool_stripes.max(1)),
        running: Vec::new(),
        resume: std::collections::VecDeque::new(),
        waiting: ClassFifo::new(u32::MAX), // aging handled upstream; FIFO per class here
        admission_counter: 0,
        preempted_by_class: [0; 2],
        depth_samples: Vec::new(),
        peak_live_blocks: 0,
        steps: 0,
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(id: u64, arrival_us: u64, prompt: u64, completion: u64, shared: u64) -> SeqInput {
        SeqInput {
            id,
            priority: if id.is_multiple_of(2) {
                Priority::Interactive
            } else {
                Priority::Batch
            },
            arrival_us,
            prompt_tokens: prompt,
            completion_tokens: completion,
            shared_prefix_tokens: shared,
            family_seed: 7,
        }
    }

    fn tight_cfg() -> KvPressureConfig {
        KvPressureConfig {
            pool_blocks: 24,
            block_size: 16,
            pool_stripes: 1,
            max_batched_tokens: 64,
            prefill_chunk_tokens: 32,
            ..KvPressureConfig::default()
        }
    }

    #[test]
    fn roomy_pool_never_preempts_and_finishes_everything() {
        let inputs: Vec<SeqInput> = (0..8).map(|i| seq(i, i * 100, 320, 40, 256)).collect();
        let run = simulate(&inputs, &KvPressureConfig::default());
        assert_eq!(run.report.preempted, 0);
        assert_eq!(run.report.evicted_blocks, 0);
        assert!(run.report.steps > 0);
        assert!(run.report.reused_blocks > 0, "family prefix reuse");
        for (t, input) in run.timings.iter().zip(&inputs) {
            assert!(t.start_us >= input.arrival_us);
            assert!(t.finish_us > t.start_us);
            assert!(t.service_us > 0);
            assert_eq!(t.preemptions, 0);
        }
        assert_eq!(
            run.makespan_us,
            run.timings.iter().map(|t| t.finish_us).max().unwrap()
        );
    }

    #[test]
    fn tight_pool_preempts_and_still_finishes_everything() {
        // 24 blocks = 384 tokens of KV for 8 concurrent sequences that
        // each need 360 context tokens: decode must fight for blocks.
        let inputs: Vec<SeqInput> = (0..8).map(|i| seq(i, i * 10, 320, 40, 256)).collect();
        let run = simulate(&inputs, &tight_cfg());
        assert!(
            run.report.preempted > 0,
            "pressure must preempt: {:?}",
            run.report
        );
        assert!(
            run.report.freed_blocks > 0,
            "preemption frees private blocks"
        );
        assert!(run.report.alloc_failures > 0);
        assert!(run.report.peak_live_blocks <= 24);
        let preempted_total: u64 = run.preempted_by_class.iter().sum();
        assert_eq!(preempted_total, run.report.preempted);
        for t in &run.timings {
            assert!(t.finish_us > 0, "every sequence still finishes");
        }
        // Preempted sequences recompute, so total service exceeds the
        // unconstrained run's.
        let unconstrained = simulate(&inputs, &KvPressureConfig::default());
        let pressured_service: u64 = run.timings.iter().map(|t| t.service_us).sum();
        let free_service: u64 = unconstrained.timings.iter().map(|t| t.service_us).sum();
        assert!(pressured_service > free_service);
    }

    #[test]
    fn sequences_larger_than_the_pool_stream_instead_of_livelocking() {
        let cfg = KvPressureConfig {
            pool_blocks: 4,
            block_size: 16,
            pool_stripes: 1,
            ..KvPressureConfig::default()
        };
        // 640 prompt tokens = 40 blocks, 10× the pool.
        let inputs = vec![seq(0, 0, 640, 32, 0)];
        let run = simulate(&inputs, &cfg);
        assert!(run.timings[0].finish_us > 0);
        assert!(run.report.peak_live_blocks <= 4);
    }

    #[test]
    fn empty_footprints_finish_instantly() {
        // A cancelled/failed execution has no measured tokens; it passes
        // through the scheduler at its admission instant.
        let inputs = vec![seq(0, 50, 0, 0, 0), seq(1, 60, 64, 8, 0)];
        let run = simulate(&inputs, &KvPressureConfig::default());
        assert_eq!(run.timings[0].service_us, 0);
        assert_eq!(run.timings[0].finish_us, run.timings[0].start_us);
        assert!(run.timings[1].service_us > 0);
    }

    #[test]
    fn simulation_is_a_pure_function_of_its_inputs() {
        let inputs: Vec<SeqInput> = (0..12).map(|i| seq(i, i * 7, 200, 24, 128)).collect();
        let cfg = tight_cfg();
        let a = simulate(&inputs, &cfg);
        let b = simulate(&inputs, &cfg);
        assert_eq!(a.report, b.report);
        assert_eq!(a.makespan_us, b.makespan_us);
        for (x, y) in a.timings.iter().zip(&b.timings) {
            assert_eq!(
                (x.start_us, x.finish_us, x.service_us, x.preemptions),
                (y.start_us, y.finish_us, y.service_us, y.preemptions)
            );
        }
    }
}
