//! Deterministic seeded open-loop load generator.
//!
//! Produces a serving workload — registered prompt-family views, shared
//! lowered plans, and a timestamped request stream — as a pure function of
//! [`LoadGenConfig`]. Two calls with the same config yield byte-identical
//! workloads, which is what lets the benchmarks compare scheduler
//! configurations (affinity on vs off, 1 vs 8 lanes) under *the same*
//! offered load.
//!
//! The stream is **open-loop**: arrival timestamps follow a seeded
//! exponential (Poisson) process that does not react to scheduler
//! progress, so queueing behaviour under overload is actually exercised
//! instead of being throttled away by the generator.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::prelude::*;

use spear_core::pipeline::Pipeline;
use spear_core::plan::{lower, LoweredPlan};
use spear_core::runtime::ExecState;
use spear_core::view::{ViewCatalog, ViewDef};
use spear_llm::Tokenizer;

use crate::request::{Priority, ServeRequest};

/// Shape of a generated workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGenConfig {
    /// RNG seed; the workload is a pure function of this config.
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of distinct prompt families (views). Requests in one family
    /// share a long instruction prefix — the reuse affinity routing
    /// exploits.
    pub families: usize,
    /// Mean virtual µs between arrivals (exponential inter-arrival).
    pub mean_interarrival_us: u64,
    /// Probability a request is [`Priority::Interactive`].
    pub interactive_fraction: f64,
    /// Optional service deadline stamped on interactive requests.
    pub interactive_deadline_us: Option<u64>,
    /// GEN slots per pipeline (min 1). More slots mean longer decode
    /// phases — the knob memory-pressure workloads use to make running
    /// requests' KV footprints *grow* enough to fight for pool blocks.
    /// The default of 1 produces exactly the classic single-GEN plan.
    pub gen_calls: usize,
    /// Zipf exponent for family popularity. `0.0` (the default) keeps the
    /// historical uniform draw — byte-identical workloads, so existing
    /// BENCH fingerprints are preserved. `s > 0.0` samples family `k`
    /// (0-indexed rank) with probability proportional to `1/(k+1)^s`,
    /// reproducing the skewed family popularity real prompt corpora
    /// exhibit — the regime cluster routing's hot-prefix replication is
    /// built for.
    pub family_zipf: f64,
    /// Probability a request is an exact duplicate of an earlier request in
    /// the stream: same family *and* same item payload, so it renders to the
    /// byte-identical prompt (the regime the generation memo serves). `0.0`
    /// (the default) draws nothing extra from the RNG, so existing BENCH
    /// fingerprints are preserved byte-for-byte. Duplicates keep their own
    /// fresh arrival time and priority draw.
    pub duplicate_share: f64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            requests: 64,
            families: 4,
            mean_interarrival_us: 20_000,
            interactive_fraction: 0.6,
            interactive_deadline_us: None,
            gen_calls: 1,
            family_zipf: 0.0,
            duplicate_share: 0.0,
        }
    }
}

/// A generated workload: the view catalog the runtime needs, the shared
/// per-family plans, and the timestamped request stream (sorted by
/// arrival).
#[derive(Debug)]
pub struct GeneratedWorkload {
    /// Views referenced by the plans (hand to `Runtime::builder().views`).
    pub views: ViewCatalog,
    /// One shared lowered plan per family; requests hold clones of these
    /// `Arc`s, so affinity grouping is visible through pointer-independent
    /// [`LoweredPlan::affinity_key`]s.
    pub plans: Vec<Arc<LoweredPlan>>,
    /// The request stream, sorted by non-decreasing `arrival_us` with ids
    /// `0..requests`.
    pub requests: Vec<ServeRequest>,
}

/// Family topics: first line of each family's instruction, so different
/// families diverge at the very first token block (no cross-family prefix
/// sharing muddying the affinity measurement).
const TOPICS: &[&str] = &[
    "support tickets about account access",
    "product reviews of kitchen appliances",
    "incident reports from the payments service",
    "meeting notes from the design team",
    "bug reports filed against the mobile app",
    "customer emails about delivery delays",
    "forum posts discussing firmware updates",
    "survey answers on commute patterns",
];

/// Filler vocabulary for unique per-request payload text.
const WORDS: &[&str] = &[
    "ledger", "gasket", "thread", "signal", "carton", "branch", "kernel", "saddle", "lantern",
    "mortar", "pulley", "quartz", "ribbon", "socket", "tunnel", "valley", "walnut", "zephyr",
    "anchor", "bobbin",
];

/// Render one family's instruction text: a topic-first header plus a long
/// shared guideline block and a trailing context slot. Long enough
/// (hundreds of tokens) that prefix reuse is worth routing for.
#[must_use]
pub fn family_instruction(family: usize) -> String {
    let topic = TOPICS[family % TOPICS.len()];
    let mut text = format!(
        "You are processing {topic}. Summarize the item below and flag \
         anything requiring follow-up.\nGuidelines for every item:\n"
    );
    for i in 1..=10 {
        text.push_str(&format!(
            "{i}. Read the full item before answering; weigh wording about \
             {topic} over incidental detail, keep the summary faithful to \
             the original claims, and never invent facts the item does not \
             state.\n"
        ));
    }
    text.push_str("Item: {{ctx:item}}\nAnswer with a word limit of 50.");
    text
}

/// The registered view name for a family.
#[must_use]
pub fn family_view_name(family: usize) -> String {
    format!("serve_family_{family}")
}

/// Generate a workload from `config`. Deterministic: same config, same
/// workload.
#[must_use]
pub fn generate(config: &LoadGenConfig) -> GeneratedWorkload {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let tokenizer = Tokenizer::new();
    let families = config.families.max(1);

    let views = ViewCatalog::new();
    let mut plans = Vec::with_capacity(families);
    let mut instruction_tokens = Vec::with_capacity(families);
    for family in 0..families {
        let text = family_instruction(family);
        instruction_tokens.push(tokenizer.count(&text) as u64);
        views.register(ViewDef::new(family_view_name(family), text).with_tag("serve-load"));
        // The first GEN keeps its historical name so `gen_calls: 1`
        // lowers to exactly the classic plan (stable trace digests).
        let mut builder = Pipeline::builder(format!("serve_{family}"))
            .create_from_view("p", &family_view_name(family), BTreeMap::new())
            .gen("answer", "p");
        for extra in 1..config.gen_calls.max(1) {
            builder = builder.gen(&format!("answer_{extra}"), "p");
        }
        let pipeline = builder.build();
        plans.push(Arc::new(
            lower(&pipeline).expect("generated pipelines lower clean"),
        ));
    }

    // Family-popularity CDF. `None` keeps the historical uniform
    // `gen_range` draw — the exact same RNG consumption as before the knob
    // existed, so default-config workloads stay byte-identical.
    let zipf_cdf: Option<Vec<f64>> = (config.family_zipf > 0.0).then(|| {
        let weights: Vec<f64> = (0..families)
            .map(|k| 1.0 / ((k + 1) as f64).powf(config.family_zipf))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect()
    });

    let mut requests = Vec::with_capacity(config.requests);
    // (family, item) of every *original* request generated so far —
    // duplicate draws replay one of these verbatim.
    let mut originals: Vec<(usize, String)> = Vec::new();
    let mut arrival_us = 0u64;
    for id in 0..config.requests as u64 {
        // Exponential inter-arrival on the virtual clock.
        let unit: f64 = rng.gen_unit();
        let dt = (-(1.0 - unit).ln() * config.mean_interarrival_us as f64).round() as u64;
        arrival_us += dt.max(1);

        // The duplicate gate only consumes RNG when the knob is on, so
        // `duplicate_share: 0.0` keeps the historical draw sequence (and
        // thus the existing BENCH fingerprints) byte-identical.
        let duplicate_of: Option<usize> = (config.duplicate_share > 0.0)
            .then(|| {
                let u: f64 = rng.gen_unit();
                (u < config.duplicate_share && !originals.is_empty())
                    .then(|| rng.gen_range(0..originals.len()))
            })
            .flatten();

        let (family, item) = match duplicate_of {
            Some(idx) => originals[idx].clone(),
            None => {
                let family = match &zipf_cdf {
                    None => rng.gen_range(0..families),
                    Some(cdf) => {
                        let u = rng.gen_unit();
                        cdf.iter().position(|&c| u < c).unwrap_or(families - 1)
                    }
                };
                (family, String::new())
            }
        };
        let interactive = rng.gen_bool(config.interactive_fraction);
        let priority = if interactive {
            Priority::Interactive
        } else {
            Priority::Batch
        };

        // Unique per-request payload: same family => shared instruction
        // prefix, distinct suffix. (Duplicates reuse their source's payload
        // wholesale, so they render to the byte-identical prompt.)
        let item = if duplicate_of.is_some() {
            item
        } else {
            let mut item = format!("case {id}:");
            for _ in 0..12 {
                item.push(' ');
                item.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
            }
            originals.push((family, item.clone()));
            item
        };
        let mut state = ExecState::new();
        state.context.set("item", item.as_str());

        let est_tokens = instruction_tokens[family] + tokenizer.count(&item) as u64 + 50;
        let mut request =
            ServeRequest::new(id, priority, Arc::clone(&plans[family]), state, arrival_us)
                .with_est_tokens(est_tokens)
                // The family instruction is the prefix every same-family
                // request shares — under memory pressure those tokens map
                // to the family's shared KV blocks.
                .with_shared_prefix_tokens(instruction_tokens[family]);
        if interactive {
            if let Some(deadline) = config.interactive_deadline_us {
                request = request.with_deadline_us(deadline);
            }
        }
        requests.push(request);
    }

    GeneratedWorkload {
        views,
        plans,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = LoadGenConfig::default();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.requests.len(), b.requests.len());
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.arrival_us, y.arrival_us);
            assert_eq!(x.est_tokens, y.est_tokens);
            assert_eq!(x.affinity_key(), y.affinity_key());
        }
        let c = generate(&LoadGenConfig { seed: 43, ..config });
        let arrivals_a: Vec<u64> = a.requests.iter().map(|r| r.arrival_us).collect();
        let arrivals_c: Vec<u64> = c.requests.iter().map(|r| r.arrival_us).collect();
        assert_ne!(arrivals_a, arrivals_c, "different seeds differ");
    }

    #[test]
    fn arrivals_are_sorted_and_ids_unique() {
        let w = generate(&LoadGenConfig {
            requests: 100,
            ..LoadGenConfig::default()
        });
        assert!(w
            .requests
            .windows(2)
            .all(|p| p[0].arrival_us <= p[1].arrival_us));
        let ids: Vec<u64> = w.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn families_share_affinity_keys_and_differ_across_families() {
        let w = generate(&LoadGenConfig {
            requests: 40,
            families: 3,
            ..LoadGenConfig::default()
        });
        let mut keys = std::collections::BTreeSet::new();
        for r in &w.requests {
            let key = r.affinity_key().expect("view-backed plans have keys");
            keys.insert(key);
        }
        assert_eq!(keys.len(), 3, "one key per family");
        // Instructions diverge at the first line.
        let a = family_instruction(0);
        let b = family_instruction(1);
        assert_ne!(a.lines().next(), b.lines().next());
    }

    #[test]
    fn interactive_deadlines_are_stamped() {
        let w = generate(&LoadGenConfig {
            requests: 50,
            interactive_deadline_us: Some(9_000),
            ..LoadGenConfig::default()
        });
        for r in &w.requests {
            match r.priority {
                Priority::Interactive => assert_eq!(r.deadline_us, Some(9_000)),
                Priority::Batch => assert_eq!(r.deadline_us, None),
            }
        }
        assert!(w.requests.iter().any(|r| r.priority == Priority::Batch));
        assert!(w
            .requests
            .iter()
            .any(|r| r.priority == Priority::Interactive));
    }

    #[test]
    fn zipf_skews_family_popularity_deterministically() {
        let config = LoadGenConfig {
            requests: 400,
            families: 8,
            family_zipf: 1.2,
            ..LoadGenConfig::default()
        };
        let w = generate(&config);
        let keys: Vec<String> = (0..8)
            .map(|f| w.plans[f].affinity_key().expect("view-backed"))
            .collect();
        let mut counts = vec![0usize; 8];
        for r in &w.requests {
            let key = r.affinity_key().unwrap();
            let family = keys.iter().position(|k| *k == key).unwrap();
            counts[family] += 1;
        }
        // Rank-0 dominates; the tail is thin. (Zipf 1.2 over 8 families
        // gives rank 0 ≈ 41% and rank 7 ≈ 3.4% of mass.)
        assert!(
            counts[0] > counts[7] * 3,
            "rank 0 should dwarf rank 7: {counts:?}"
        );
        assert!(
            counts[0] * 100 > 400 * 25,
            "rank 0 should hold >25% of requests: {counts:?}"
        );
        // All families still sampled (the CDF covers the whole range).
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");

        // Deterministic: same config, same stream.
        let v = generate(&config);
        for (a, b) in w.requests.iter().zip(&v.requests) {
            assert_eq!(a.affinity_key(), b.affinity_key());
            assert_eq!(a.arrival_us, b.arrival_us);
        }
    }

    #[test]
    fn zero_exponent_is_the_uniform_sampler() {
        // `family_zipf: 0.0` takes the exact historical uniform code path:
        // the config equals the default, and the draw sequence (hence the
        // whole workload) is the default workload.
        let uniform = generate(&LoadGenConfig {
            family_zipf: 0.0,
            ..LoadGenConfig::default()
        });
        let default = generate(&LoadGenConfig::default());
        for (a, b) in uniform.requests.iter().zip(&default.requests) {
            assert_eq!(a.affinity_key(), b.affinity_key());
            assert_eq!(a.arrival_us, b.arrival_us);
            assert_eq!(a.priority, b.priority);
        }
    }

    #[test]
    fn zero_duplicate_share_is_the_historical_stream() {
        // `duplicate_share: 0.0` draws nothing extra, so the workload is
        // byte-identical to the pre-knob generator (pinning the existing
        // BENCH fingerprints).
        let plain = generate(&LoadGenConfig::default());
        let gated = generate(&LoadGenConfig {
            duplicate_share: 0.0,
            ..LoadGenConfig::default()
        });
        for (a, b) in plain.requests.iter().zip(&gated.requests) {
            assert_eq!(a.arrival_us, b.arrival_us);
            assert_eq!(a.priority, b.priority);
            assert_eq!(a.affinity_key(), b.affinity_key());
            assert_eq!(
                a.state.context.get_ref("item"),
                b.state.context.get_ref("item")
            );
        }
    }

    #[test]
    fn duplicates_replay_family_and_item_verbatim() {
        let config = LoadGenConfig {
            requests: 200,
            duplicate_share: 0.6,
            ..LoadGenConfig::default()
        };
        let w = generate(&config);
        // A duplicate shares (affinity key, item) with an earlier request;
        // count requests whose payload pair appeared before them.
        let mut seen = std::collections::BTreeSet::new();
        let mut duplicates = 0usize;
        for r in &w.requests {
            let item = format!("{:?}", r.state.context.get_ref("item"));
            let pair = (r.affinity_key(), item);
            if !seen.insert(pair) {
                duplicates += 1;
            }
        }
        assert!(
            duplicates > 60,
            "share 0.6 over 200 requests should replay many payloads, got {duplicates}"
        );
        // Arrivals still strictly ordered with unique ids.
        assert!(w
            .requests
            .windows(2)
            .all(|p| p[0].arrival_us <= p[1].arrival_us));

        // Deterministic: same config, same duplicate pattern.
        let v = generate(&config);
        for (a, b) in w.requests.iter().zip(&v.requests) {
            assert_eq!(a.arrival_us, b.arrival_us);
            assert_eq!(
                a.state.context.get_ref("item"),
                b.state.context.get_ref("item")
            );
        }
    }

    #[test]
    fn instructions_are_long_enough_to_cache() {
        let tokens = Tokenizer::new().count(&family_instruction(0));
        assert!(
            tokens > 200,
            "family instruction should be hundreds of tokens, got {tokens}"
        );
    }
}
