//! Typed serving-layer errors — load shedding is explicit, never a silent
//! drop.

use crate::request::Priority;

/// Why the serving layer refused or abandoned a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control shed the request: either its class queue is at
    /// capacity or the token bucket cannot cover its estimated cost.
    /// The request was **not** executed and the caller should back off.
    Overloaded {
        /// Class whose limit was hit.
        priority: Priority,
        /// Depth of that class's queue at rejection time.
        queue_depth: usize,
        /// Virtual µs until the token bucket will have refilled enough to
        /// admit a request of this size (0 when shed on queue depth).
        retry_after_us: u64,
    },
    /// The request's service deadline expired; execution was cancelled
    /// cooperatively between plan slots.
    DeadlineExceeded {
        /// Virtual service time accumulated when the deadline tripped.
        after_us: u64,
    },
    /// The request's [`spear_core::cancel::CancelToken`] was tripped.
    Cancelled {
        /// Reason carried by the token.
        reason: String,
    },
    /// The pipeline itself failed (propagated runtime error).
    Exec {
        /// Rendered runtime error.
        error: String,
    },
    /// The request's plan failed static verification at admission: the
    /// IR verifier found error-severity defects, so the request was
    /// rejected before any LLM call or queue slot was spent.
    InvalidPlan {
        /// Name of the rejected plan.
        plan: String,
        /// Rendered diagnostics (one per defect, stable lint codes).
        details: Vec<String>,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                priority,
                queue_depth,
                retry_after_us,
            } => write!(
                f,
                "overloaded: {} queue at depth {queue_depth}, retry after {retry_after_us} us",
                priority.label()
            ),
            ServeError::DeadlineExceeded { after_us } => {
                write!(f, "deadline exceeded after {after_us} us of service")
            }
            ServeError::Cancelled { reason } => write!(f, "cancelled: {reason}"),
            ServeError::Exec { error } => write!(f, "execution failed: {error}"),
            ServeError::InvalidPlan { plan, details } => {
                write!(f, "invalid plan {plan:?}: {} defect(s)", details.len())?;
                if let Some(first) = details.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = ServeError::Overloaded {
            priority: Priority::Batch,
            queue_depth: 32,
            retry_after_us: 1500,
        };
        let s = e.to_string();
        assert!(s.contains("batch"), "{s}");
        assert!(s.contains("32"), "{s}");
        assert!(s.contains("1500"), "{s}");
        assert!(ServeError::DeadlineExceeded { after_us: 9 }
            .to_string()
            .contains("9 us"));
    }
}
