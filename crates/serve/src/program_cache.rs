//! Bounded cache of compiled (and per-affinity specialized) programs.
//!
//! The scheduler compiles each admitted plan to `spear-core`'s bytecode
//! once per `(plan fingerprint, affinity key)` pair and reuses the
//! `Arc<Program>` for every later member of the family. On first compile
//! of a keyed family the cache additionally **specializes** the program:
//! it constant-folds the family's fixed prompt prefix (the leading
//! template literal every member renders identically) and pre-resolves
//! that prefix's token/block-hash chain through the engine's token
//! interner, so the family's first real request already starts warm.
//!
//! Specialization touches only host-side memoization state — the prefix
//! cache and all response-visible numbers are untouched, so specialized
//! and generic programs produce byte-identical traces (pinned by the
//! `program_cache` integration tests).

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

use spear_core::analysis::{analyze, ProgramBounds, ResourceModel};
use spear_core::plan::LoweredPlan;
use spear_core::runtime::Runtime;
use spear_core::segment::{SegmentedText, TextSegment};
use spear_core::vm::{self, Program};
use spear_llm::SimLlm;

use crate::metrics::CompileReport;

/// Cache key: content fingerprint of the plan plus its affinity key.
/// Fingerprint-equal plans compile identically; the affinity component
/// keeps per-family specialized programs distinct from each other (two
/// families can share a plan shape but not a prefix).
type Key = (u64, Option<String>);

struct Slot {
    program: Arc<Program>,
    bounds: Arc<ProgramBounds>,
    last_used: u64,
}

struct Inner {
    map: HashMap<Key, Slot>,
    tick: u64,
    counters: CompileReport,
}

/// A bounded, thread-safe LRU cache of compiled programs, owned by the
/// serving node and shared across its runs.
pub struct ProgramCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl std::fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramCache")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl ProgramCache {
    /// A cache holding at most `capacity` compiled programs (clamped to at
    /// least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                counters: CompileReport::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Number of resident compiled programs.
    #[must_use]
    pub fn len(&self) -> usize {
        match self.inner.lock() {
            Ok(inner) => inner.map.len(),
            Err(poisoned) => poisoned.into_inner().map.len(),
        }
    }

    /// `true` when no program is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up (or compile, and for keyed families specialize) the program
    /// for `plan`. Returns `None` when the plan fails to compile — i.e.
    /// fails structural verification — in which case nothing is cached and
    /// the caller should fall back to interpreting the plan so the error
    /// surfaces through the normal execution path.
    pub fn get_or_compile(
        &self,
        plan: &LoweredPlan,
        runtime: &Runtime,
        engine: Option<&SimLlm>,
    ) -> Option<Arc<Program>> {
        let key: Key = (plan.fingerprint(), plan.affinity_key());
        let mut guard = match self.inner.lock() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        let inner = &mut *guard;
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.map.get_mut(&key) {
            slot.last_used = tick;
            inner.counters.cache_hits += 1;
            return Some(Arc::clone(&slot.program));
        }

        // Mirror the runtime's own gate: with verification on, compilation
        // is fail-closed; with it off, out-of-range targets are clamped
        // exactly as the interpreter would fall off the end.
        let compiled = if runtime.config().verify {
            vm::compile(plan)
        } else {
            vm::compile_assuming_verified(plan)
        };
        let mut program = compiled.ok()?;
        inner.counters.compiled += 1;

        // Verified bytecode optimization: jump threading, dead else-edge
        // redirection, and unreachable-op pruning — accepted only when the
        // optimized form symbolically bisimulates the original
        // (`vm::optimize` is fail-closed), so traces stay byte-identical.
        if let Some(optimized) = vm::optimize(&program) {
            program = optimized;
            inner.counters.optimized += 1;
        }

        // Static cost envelope for the code that will actually run.
        let bounds = Arc::new(analyze(&program, &ResourceModel::default()));

        // Per-affinity specialization: constant-fold the family's fixed
        // prompt prefix and pre-resolve its token chain.
        if key.1.is_some() {
            if let Some((prefix, hash)) =
                vm::family_template(plan, runtime.views()).and_then(|text| vm::family_prefix(&text))
            {
                if let Some(engine) = engine {
                    let mut segments = SegmentedText::new();
                    segments.push_segment(TextSegment::from_shared(Arc::clone(&prefix), hash));
                    engine.preresolve(&segments);
                }
                program.set_prefix(prefix);
                inner.counters.specialized += 1;
            }
        }

        let program = Arc::new(program);
        inner.map.insert(
            key,
            Slot {
                program: Arc::clone(&program),
                bounds,
                last_used: tick,
            },
        );
        while inner.map.len() > self.capacity {
            // Evict the least-recently-used entry. Ties cannot happen:
            // every touch gets a fresh tick under the lock.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                inner.counters.evicted += 1;
            } else {
                break;
            }
        }
        Some(program)
    }

    /// The static cost envelope derived for `plan`'s resident program, if
    /// any (any affinity variant: bounds depend only on the plan's code,
    /// which is fingerprint-determined, not on the specialized prefix).
    #[must_use]
    pub fn bounds_of(&self, plan: &LoweredPlan) -> Option<Arc<ProgramBounds>> {
        let fingerprint = plan.fingerprint();
        let guard = match self.inner.lock() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard
            .map
            .iter()
            .find(|(k, _)| k.0 == fingerprint)
            .map(|(_, slot)| Arc::clone(&slot.bounds))
    }

    /// Take the counters accumulated since the last drain (the per-run
    /// delta for [`crate::metrics::ServeReport::compile`]).
    pub fn drain_counters(&self) -> CompileReport {
        let mut inner = match self.inner.lock() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        std::mem::take(&mut inner.counters)
    }
}
