//! Serving metrics: log-bucketed histograms and the per-run
//! [`ServeReport`] snapshot.

use spear_llm::CacheStats;

use crate::request::Priority;

/// A power-of-two-bucketed histogram for non-negative integer samples
/// (virtual µs, queue depths). Bucket `i > 0` covers `[2^(i-1), 2^i - 1]`;
/// bucket 0 holds zeros. Quantiles are reported as the upper bound of the
/// covering bucket — a ≤2× overestimate, which is enough for the
/// order-of-magnitude comparisons the serving benchmarks make.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

const BUCKETS: usize = 64;

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the samples (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Largest sample seen.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`), clamped to the maximum sample. `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return Some(upper.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Condensed, serializable view.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: self.mean(),
            p50: self.quantile(0.5),
            p90: self.quantile(0.9),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

/// Condensed histogram statistics for reports.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Exact mean (`None` when empty).
    pub mean: Option<f64>,
    /// Bucketed median upper bound.
    pub p50: Option<u64>,
    /// Bucketed 90th-percentile upper bound.
    pub p90: Option<u64>,
    /// Bucketed 99th-percentile upper bound.
    pub p99: Option<u64>,
    /// Exact maximum.
    pub max: u64,
}

/// Per-priority-class counters and distributions.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClassReport {
    /// Requests submitted in this class.
    pub submitted: u64,
    /// Requests admitted past the admission gate.
    pub admitted: u64,
    /// Requests shed by admission control (typed, counted — never silent).
    pub rejected: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests cancelled by their service deadline.
    pub deadline_exceeded: u64,
    /// Requests cancelled via their token.
    pub cancelled: u64,
    /// Requests whose pipeline failed.
    pub failed: u64,
    /// Preemption events suffered by this class's requests under memory
    /// pressure (a request preempted twice counts twice). Always 0 when
    /// `ServeConfig::pressure` is off. Defaults to 0 when deserializing
    /// reports written before this counter existed.
    #[serde(default)]
    pub preempted: u64,
    /// Prompt tokens across completed requests.
    pub prompt_tokens: u64,
    /// Prompt tokens served from the prefix cache across completed
    /// requests.
    pub cached_tokens: u64,
    /// Queue depth observed at each admission into this class.
    pub queue_depth: HistogramSummary,
    /// Virtual µs between arrival and dispatch.
    pub queue_wait_us: HistogramSummary,
    /// Virtual µs of execution (service) time.
    pub service_us: HistogramSummary,
    /// Virtual µs between arrival and completion.
    pub e2e_us: HistogramSummary,
}

impl ClassReport {
    /// Prefix-cache token hit rate over this class's completed requests
    /// (`None` before any prompt tokens).
    #[must_use]
    pub fn cache_hit_rate(&self) -> Option<f64> {
        if self.prompt_tokens == 0 {
            None
        } else {
            Some(self.cached_tokens as f64 / self.prompt_tokens as f64)
        }
    }
}

/// Snapshot of one serving run, serializable for benchmark artifacts.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeReport {
    /// Worker lanes the scheduler dispatched onto.
    pub lanes: usize,
    /// Whether cache-affinity routing was enabled.
    pub affinity_routing: bool,
    /// Virtual time at which the last lane went idle.
    pub makespan_us: u64,
    /// Order-canonical FNV fold of per-request trace digests and
    /// statuses — two runs served identically iff fingerprints match.
    pub trace_fingerprint: u64,
    /// Interactive-class metrics.
    pub interactive: ClassReport,
    /// Batch-class metrics.
    pub batch: ClassReport,
    /// Engine-level prefix-cache counters accumulated during the run
    /// (all classes combined; the per-class split lives in
    /// `interactive`/`batch` token counts).
    pub cache: CacheStats,
    /// KV block-pool and iteration-scheduler counters (all zeros with
    /// `enabled: false` when the run had no `ServeConfig::pressure`).
    /// Defaults for reports written before memory pressure existed.
    #[serde(default)]
    pub kv: KvReport,
    /// Plan-compilation counters from the program cache. Defaults for
    /// reports written before the compiled hot path existed.
    #[serde(default)]
    pub compile: CompileReport,
    /// Linkage to the cluster run this node-level report was produced
    /// under, stamped by the cluster fabric after the node run completes.
    /// `None` for standalone (single-node) serving and for reports written
    /// before the cluster existed.
    #[serde(default)]
    pub cluster: Option<ClusterLinkage>,
    /// Whole-call generation-reuse counters (all zeros with
    /// `ServeConfig::reuse` off). Defaults for reports written before the
    /// reuse layer existed.
    #[serde(default)]
    pub reuse: ReuseReport,
}

/// Counters from the whole-call generation-reuse layer (DESIGN.md §15).
///
/// The hit/coalesced split and the savings ledger are derived from
/// per-request reuse metadata by a deterministic post-pass over requests
/// in arrival order — a duplicate whose arrival falls inside its nominal
/// leader's service window counts as `coalesced` (it would have raced the
/// leader on an unloaded node), later duplicates as `hits` — so, like
/// [`KvReport`], every number here is lane-count-invariant for a fixed
/// workload: physical condvar races decide host speed, never counters.
/// Traces report each reused call's *original* usage (responses are
/// byte-identical to reuse-off); `saved_tokens`/`saved_calls` record what
/// the backend did not actually execute.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ReuseReport {
    /// Duplicate GEN calls served from a completed memo entry.
    pub hits: u64,
    /// Duplicate GEN calls that arrived inside their leader's service
    /// window (single-flight coalescing on an unloaded node).
    pub coalesced: u64,
    /// Entries completed into the memo during the run.
    pub inserted: u64,
    /// Entries evicted by the memo's LRU bound during the run.
    pub evicted: u64,
    /// Approximate bytes resident in the memo at the end of the run.
    pub bytes: u64,
    /// Prompt + completion tokens of reused calls — work the backend
    /// skipped (the traces still report the original usage).
    pub saved_tokens: u64,
    /// GEN executions the memo absorbed.
    pub saved_calls: u64,
}

/// How a node-level [`ServeReport`] relates to the cluster run that
/// produced it. Every post-PR-3 `ServeReport` field carries
/// `#[serde(default)]`, so reports written by any earlier schema — and
/// standalone reports written today — deserialize under the current one
/// (pinned by `tests/report_compat.rs` against the checked-in BENCH
/// artifacts).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ClusterLinkage {
    /// The node's id within the cluster.
    pub node_id: u64,
    /// Virtual timestamp the node joined the cluster (0 for seed nodes).
    pub joined_us: u64,
    /// Whether the node was draining (or drained) when the run ended.
    pub drained: bool,
}

/// Counters from the memory-pressure KV scheduler: the bounded block
/// pool's accounting plus iteration-level batching totals. All counters
/// are lane-count-invariant for a fixed workload, pool size, and token
/// budget — the scheduler's decisions live on the virtual clock, not on
/// worker threads.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct KvReport {
    /// Whether the run scheduled under a bounded pool at all.
    pub enabled: bool,
    /// Pool capacity in blocks.
    pub pool_blocks: u64,
    /// Tokens per KV block.
    pub block_size: u64,
    /// Per-iteration token budget (decode steps + prefill chunks).
    pub max_batched_tokens: u64,
    /// Iterations that processed at least one token.
    pub steps: u64,
    /// Preemption events across all classes (recompute-on-resume).
    pub preempted: u64,
    /// Blocks evicted by pool capacity pressure (unpinned LRU leaves).
    pub evicted_blocks: u64,
    /// Blocks dropped by preemption (`BlockPool::free`).
    pub freed_blocks: u64,
    /// Blocks newly inserted into the pool.
    pub inserted_blocks: u64,
    /// Requested blocks served by resident prefixes (the *contended* reuse
    /// measure: what prefix sharing is worth when blocks actually fight
    /// for residency).
    pub reused_blocks: u64,
    /// Blocks requested across all allocations.
    pub requested_blocks: u64,
    /// Allocation attempts that found the pool exhausted (each is followed
    /// by a preemption or a deferred admission).
    pub alloc_failures: u64,
    /// High-water mark of resident blocks.
    pub peak_live_blocks: u64,
}

impl KvReport {
    /// Fraction of requested blocks served by resident prefixes under
    /// contention, in `[0, 1]`; `None` before any request.
    #[must_use]
    pub fn pool_reuse_rate(&self) -> Option<f64> {
        if self.requested_blocks == 0 {
            None
        } else {
            Some(self.reused_blocks as f64 / self.requested_blocks as f64)
        }
    }
}

/// Counters from the scheduler's [`crate::program_cache::ProgramCache`]:
/// how many admissions compiled a fresh program, how many specialized one
/// for an affinity family, and how many reused a cached program. All
/// counters are lane-count-invariant — admission order is deterministic
/// and compilation happens before dispatch.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CompileReport {
    /// Programs compiled from a lowered plan (cache misses).
    pub compiled: u64,
    /// Compiled programs additionally specialized for their affinity
    /// family (prefix constant-folded and pre-resolved through the token
    /// interner).
    pub specialized: u64,
    /// Admissions served by an already-compiled cached program.
    pub cache_hits: u64,
    /// Cached programs evicted by capacity pressure.
    pub evicted: u64,
    /// Freshly compiled programs additionally improved by the verified
    /// bytecode optimizer (translation validation passed and at least one
    /// op was removed or rethreaded).
    #[serde(default)]
    pub optimized: u64,
    /// Admission verifications skipped because an identical plan family
    /// (fingerprint + assumed prompts + deadline) already verified clean
    /// this run.
    #[serde(default)]
    pub verify_memo_hits: u64,
}

impl CompileReport {
    /// Fraction of admissions served from the program cache, in `[0, 1]`;
    /// `None` before any admission.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.compiled + self.cache_hits;
        if total == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / total as f64)
        }
    }
}

impl ServeReport {
    /// The class report for `class`.
    #[must_use]
    pub fn class(&self, class: Priority) -> &ClassReport {
        match class {
            Priority::Interactive => &self.interactive,
            Priority::Batch => &self.batch,
        }
    }

    /// Combined prefix-cache token hit rate over completed requests.
    #[must_use]
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let prompt = self.interactive.prompt_tokens + self.batch.prompt_tokens;
        if prompt == 0 {
            None
        } else {
            Some((self.interactive.cached_tokens + self.batch.cached_tokens) as f64 / prompt as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000, 1000, 1000, 1000, 50_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), 50_000);
        assert!((h.mean().unwrap() - 5410.6).abs() < 1e-9);
        // p50: rank 5 lands in the bucket covering 100 -> upper bound 127.
        assert_eq!(h.quantile(0.5), Some(127));
        // p90: rank 9 is the last 1000 -> bucket [512,1023].
        assert_eq!(h.quantile(0.9), Some(1023));
        // p99 and p100 clamp to the true max.
        assert_eq!(h.quantile(0.99), Some(50_000));
        assert_eq!(h.quantile(1.0), Some(50_000));
    }

    #[test]
    fn empty_histogram_is_honest() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, None);
    }

    #[test]
    fn default_histogram_records_lazily() {
        // Default (deserialized) histograms have no bucket storage yet.
        let mut h = Histogram::default();
        h.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), Some(7));
    }

    #[test]
    fn zero_samples_live_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn hit_rates_split_by_class() {
        let mut r = ServeReport::default();
        r.interactive.prompt_tokens = 100;
        r.interactive.cached_tokens = 80;
        r.batch.prompt_tokens = 300;
        r.batch.cached_tokens = 60;
        assert!((r.interactive.cache_hit_rate().unwrap() - 0.8).abs() < 1e-12);
        assert!((r.batch.cache_hit_rate().unwrap() - 0.2).abs() < 1e-12);
        assert!((r.cache_hit_rate().unwrap() - 0.35).abs() < 1e-12);
        assert_eq!(r.class(Priority::Interactive).prompt_tokens, 100);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = ServeReport {
            lanes: 4,
            affinity_routing: true,
            makespan_us: 123,
            trace_fingerprint: 42,
            ..ServeReport::default()
        };
        let mut h = Histogram::new();
        h.record(10);
        r.interactive.service_us = h.summary();
        let json = serde_json::to_string(&r).unwrap();
        let back: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
