//! The serving scheduler: virtual-time dispatch of admitted requests onto
//! [`BatchRunner`] lanes, with cache-affinity routing.
//!
//! ## Execution model
//!
//! [`ServeNode::run`] is a discrete-event loop over the workload's virtual
//! clock. Each round it (1) admits every request whose arrival timestamp
//! has been reached, (2) pops up to `lanes × quantum` requests from the
//! priority queue, (3) executes them as one assigned batch, charging each
//! job's virtual service time to its lane's clock, and (4) advances the
//! clock to the earliest moment a lane frees up (or to the next arrival
//! when idle). Real threads do the work — one per active lane via
//! [`BatchRunner::run_assigned`] — but all *timing* is virtual, so a run
//! is reproducible regardless of the host machine.
//!
//! ## Cache-affinity routing
//!
//! With `affinity_routing` on, requests whose lowered plans share an
//! [`affinity key`](spear_core::plan::LoweredPlan::affinity_key) — i.e.
//! whose prompts share a structured prefix — are mapped to the same cache
//! owner and the same lane. Same-owner jobs execute sequentially in
//! arrival order on one thread, so each sees its predecessors' prefix
//! insertions deterministically; the owner-aware cache in `spear-llm`
//! turns that into real hit-rate, as `BENCH_serve.json` witnesses. With
//! affinity off, every request gets a fresh owner (full isolation, no
//! cross-request reuse) and lanes are assigned round-robin.
//!
//! ## Determinism across lane counts
//!
//! For a fixed workload, per-request **traces** are byte-identical at any
//! lane count (pinned by proptest), because every input to an execution
//! is lane-count-invariant: token-bucket admission is a function of
//! arrival timestamps only; an owner group's members are dispatched in
//! arrival order (per-class FIFO) whatever the interleaving; deadlines
//! bound the job's *own* accumulated service time, not wall or queue
//! time. Queue waits, end-to-end latencies, and depth-based shedding do
//! scale with capacity — that is the point of adding lanes — so the
//! *report* is per-configuration while the *traces* are not.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use spear_core::batch::{AssignedJob, BatchRunner};
use spear_core::error::SpearError;
use spear_core::llm::ReusePolicy;
use spear_core::metadata::{ReuseEvent, TokenUsage};
use spear_core::runtime::Runtime;
use spear_kv::shard::fnv1a;
use spear_llm::{MemoStats, SimLlm};

use crate::error::ServeError;
use crate::kv::{self, KvPressureConfig, SeqInput};
use crate::metrics::{ClassReport, Histogram, ReuseReport, ServeReport};
use crate::program_cache::ProgramCache;
use crate::queue::{AdmissionConfig, AdmissionQueue};
use crate::request::{Priority, ServeRequest};

/// Owner-id namespace for serve-assigned cache groups: disjoint from
/// `BatchRunner`'s small sequential ids and from `SimLlm::submit_many`'s
/// `1 << 63` namespace.
const SERVE_OWNER_BASE: u64 = 1 << 62;

/// Distinct plan families the admission-verification memo holds before
/// resetting (overflow means an adversarially diverse workload; clearing
/// just re-verifies, it never changes decisions).
const VERIFY_MEMO_CAPACITY: usize = 1024;

/// Scheduler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker lanes to dispatch onto (also the `BatchRunner` pool size).
    pub lanes: usize,
    /// Maximum requests dispatched per lane per round.
    pub quantum: usize,
    /// Route same-affinity-key requests to a shared cache owner and lane.
    pub affinity_routing: bool,
    /// Admission-control limits.
    pub admission: AdmissionConfig,
    /// Statically verify each request's plan at admission and reject
    /// requests whose plan has error-severity defects (bad jump targets,
    /// undefined prompt keys, budget-infeasible deadlines, …) before any
    /// LLM call or queue slot is spent. Default on; turn off only for
    /// workloads known-verified out of band.
    pub verify_admission: bool,
    /// Schedule the run's token footprints through a bounded KV block
    /// pool with token-level continuous batching (see [`crate::kv`]).
    /// Executions stay byte-identical to the unconstrained path — the
    /// pool shapes *timing* (queue waits, service, preemptions,
    /// evictions), not results. With pressure on, the KV pool itself is
    /// the backpressure valve: queue-depth shedding never binds (token
    /// bucket and plan verification still apply). `None` = unbounded
    /// memory, the classic lane scheduler.
    pub pressure: Option<KvPressureConfig>,
    /// Capacity of the node's compiled-program cache
    /// ([`crate::program_cache::ProgramCache`]): distinct
    /// `(plan fingerprint, affinity key)` pairs held resident. Admissions
    /// beyond capacity evict least-recently-used programs (counted in
    /// [`crate::metrics::CompileReport`]).
    pub program_cache_capacity: usize,
    /// Whole-call generation reuse (DESIGN.md §15): stamp each request's
    /// execution state with [`ReusePolicy::Exact`] so duplicate GENs are
    /// served from the engine's single-flight memo. Observably invisible —
    /// statuses, digests, per-request usage, and cache counters are
    /// byte-identical to reuse-off (pinned by proptest); only host cost
    /// and the [`crate::metrics::ReuseReport`] ledger change. Default on:
    /// serving is exactly where duplicate-heavy traffic lives.
    pub reuse: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            lanes: 4,
            quantum: 4,
            affinity_routing: true,
            admission: AdmissionConfig::default(),
            verify_admission: true,
            pressure: None,
            program_cache_capacity: 64,
            reuse: true,
        }
    }
}

/// Terminal status of one request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeStatus {
    /// Ran to completion.
    Completed,
    /// Shed by admission control (never executed).
    Rejected {
        /// The typed overload error.
        error: ServeError,
    },
    /// Cancelled by its service deadline between plan slots.
    DeadlineExceeded {
        /// Virtual service time accumulated when cancelled.
        after_us: u64,
    },
    /// Cancelled via its [`spear_core::cancel::CancelToken`].
    Cancelled {
        /// Reason carried by the token.
        reason: String,
    },
    /// The pipeline failed with a runtime error.
    Failed {
        /// Rendered error.
        error: String,
    },
}

/// Per-request result of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Request id.
    pub id: u64,
    /// Scheduling class.
    pub priority: Priority,
    /// Terminal status.
    pub status: ServeStatus,
    /// Virtual µs spent queued (0 unless dispatched).
    pub queue_wait_us: u64,
    /// Virtual µs of execution time (partial time for cancelled runs).
    pub service_us: u64,
    /// Virtual completion timestamp (0 for rejected requests).
    pub finish_us: u64,
    /// Trace digest of the completed execution (`None` unless completed).
    pub trace_digest: Option<u64>,
    /// Token usage of the completed execution (zero unless completed).
    pub usage: TokenUsage,
    /// Times the request was preempted by the KV scheduler (always 0
    /// without `ServeConfig::pressure`).
    pub preemptions: u32,
}

/// Everything a serving run produced: per-request outcomes (in request-id
/// order) and the aggregate report.
#[derive(Debug)]
pub struct ServeRun {
    /// One outcome per submitted request, sorted by id.
    pub outcomes: Vec<ServeOutcome>,
    /// Aggregate metrics snapshot.
    pub report: ServeReport,
}

impl ServeRun {
    /// The outcome for a request id, if it was part of the run.
    #[must_use]
    pub fn outcome(&self, id: u64) -> Option<&ServeOutcome> {
        self.outcomes
            .binary_search_by_key(&id, |o| o.id)
            .ok()
            .map(|i| &self.outcomes[i])
    }
}

/// Aggregation scratch for one priority class.
#[derive(Debug, Default)]
struct ClassAccum {
    report: ClassReport,
    queue_depth: Histogram,
    queue_wait_us: Histogram,
    service_us: Histogram,
    e2e_us: Histogram,
}

impl ClassAccum {
    fn finish(mut self) -> ClassReport {
        self.report.queue_depth = self.queue_depth.summary();
        self.report.queue_wait_us = self.queue_wait_us.summary();
        self.report.service_us = self.service_us.summary();
        self.report.e2e_us = self.e2e_us.summary();
        self.report
    }
}

/// Per-run memo of admission-verification results, keyed by plan family
/// (plan fingerprint ⊕ assumed prompt keys ⊕ deadline). Verification also
/// depends on the runtime's registries, and each run may bring a
/// different runtime, so the memo is cleared at the start of every run —
/// within a run the full `Verifier` executes once per family instead of
/// once per request.
#[derive(Debug, Default)]
struct VerifyMemo {
    map: HashMap<u64, Option<Vec<String>>>,
    hits: u64,
}

/// The long-lived serving node: a scheduler plus its worker-lane pool.
/// One node can serve many successive [`ServeNode::run`] calls; owner ids
/// never alias across runs.
#[derive(Debug)]
pub struct ServeNode {
    config: ServeConfig,
    runner: BatchRunner,
    run_seq: AtomicU64,
    programs: ProgramCache,
    verify_memo: Mutex<VerifyMemo>,
}

impl ServeNode {
    /// A node with `config.lanes` worker lanes.
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        let lanes = config.lanes.max(1);
        let programs = ProgramCache::new(config.program_cache_capacity);
        Self {
            config: ServeConfig { lanes, ..config },
            runner: BatchRunner::new(lanes),
            run_seq: AtomicU64::new(0),
            programs,
            verify_memo: Mutex::new(VerifyMemo::default()),
        }
    }

    /// Memoized admission verification: the full [`verify_for_admission`]
    /// runs once per plan family per run; later family members reuse the
    /// cached verdict (including rejection details).
    fn verify_admission_memoized(
        &self,
        runtime: &Runtime,
        request: &ServeRequest,
    ) -> Option<Vec<String>> {
        let key = Self::verify_key(request);
        {
            let mut memo = match self.verify_memo.lock() {
                Ok(memo) => memo,
                Err(poisoned) => poisoned.into_inner(),
            };
            if let Some(cached) = memo.map.get(&key).cloned() {
                memo.hits += 1;
                return cached;
            }
        }
        // Verify outside the lock: the memo only makes the common
        // (already-seen family) case cheap.
        let verdict = verify_for_admission(runtime, request);
        let mut memo = match self.verify_memo.lock() {
            Ok(memo) => memo,
            Err(poisoned) => poisoned.into_inner(),
        };
        if memo.map.len() >= VERIFY_MEMO_CAPACITY {
            memo.map.clear();
        }
        memo.map.insert(key, verdict.clone());
        verdict
    }

    /// The memo key: everything [`verify_for_admission`] reads from the
    /// request (the runtime's contribution is handled by clearing the memo
    /// each run).
    fn verify_key(request: &ServeRequest) -> u64 {
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(&request.plan.fingerprint().to_le_bytes());
        for key in request.state.prompts.keys() {
            bytes.extend_from_slice(key.as_bytes());
            bytes.push(0xff);
        }
        bytes.extend_from_slice(&request.deadline_us.unwrap_or(u64::MAX).to_le_bytes());
        fnv1a(&bytes)
    }

    /// Reset the memo for a fresh run (a new run may bring a different
    /// runtime, whose registries verification depends on).
    fn reset_verify_memo(&self) {
        let mut memo = match self.verify_memo.lock() {
            Ok(memo) => memo,
            Err(poisoned) => poisoned.into_inner(),
        };
        memo.map.clear();
        memo.hits = 0;
    }

    /// Take the memo hits accumulated this run (for
    /// [`crate::metrics::CompileReport::verify_memo_hits`]).
    fn drain_verify_memo_hits(&self) -> u64 {
        let mut memo = match self.verify_memo.lock() {
            Ok(memo) => memo,
            Err(poisoned) => poisoned.into_inner(),
        };
        std::mem::take(&mut memo.hits)
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The node's compiled-program cache (shared across runs).
    #[must_use]
    pub fn programs(&self) -> &ProgramCache {
        &self.programs
    }

    /// Serve a workload to completion and return per-request outcomes
    /// plus the aggregate report.
    ///
    /// `requests` must be sorted by non-decreasing `arrival_us` with
    /// unique ids (the load generator produces exactly this shape); the
    /// engine reference, when given, lets the report include engine-level
    /// cache counters for the run.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is not sorted by arrival time or contains
    /// duplicate ids — both are harness bugs, not load conditions.
    pub fn run(
        &self,
        runtime: &Runtime,
        engine: Option<&SimLlm>,
        mut requests: Vec<ServeRequest>,
    ) -> ServeRun {
        assert!(
            requests
                .windows(2)
                .all(|w| w[0].arrival_us <= w[1].arrival_us),
            "requests must arrive in non-decreasing virtual-time order"
        );
        self.reset_verify_memo();
        if let Some(pressure) = self.config.pressure.clone() {
            return self.run_pressured(runtime, engine, requests, &pressure);
        }
        let cache_before = engine.map(|e| e.cache_stats());
        let reuse_before = engine.map(|e| e.reuse_stats());
        let reuse_policy = self.reuse_policy();
        let run_nonce = self.run_seq.fetch_add(1, Ordering::Relaxed);
        let owner_base = SERVE_OWNER_BASE | (run_nonce << 32);

        let lanes = self.config.lanes;
        let round_size = lanes * self.config.quantum.max(1);
        let mut queue = AdmissionQueue::new(self.config.admission.clone());
        let mut accum: HashMap<Priority, ClassAccum> = HashMap::new();
        let mut outcomes: Vec<ServeOutcome> = Vec::with_capacity(requests.len());
        // Affinity-group bookkeeping: key -> (owner id, pinned lane).
        let mut groups: HashMap<(Priority, String), (u64, usize)> = HashMap::new();
        let mut next_owner = 0u64;
        let mut round_robin = 0usize;
        let mut lane_clock = vec![0u64; lanes];
        let mut now = 0u64;
        // (arrival_us, id, service_us, per-GEN reuse events) of completed
        // requests, for the deterministic reuse ledger.
        let mut reuse_rows: Vec<(u64, u64, u64, Vec<ReuseEvent>)> = Vec::new();

        requests.reverse(); // pop() takes the earliest arrival
        for r in &requests {
            accum.entry(r.priority).or_default().report.submitted += 1;
        }

        loop {
            // (1) Admit everything that has arrived by `now`.
            while requests.last().is_some_and(|r| r.arrival_us <= now) {
                let request = requests.pop().expect("peeked");
                let class = request.priority;
                let entry = accum.entry(class).or_default();
                if self.config.verify_admission {
                    if let Some(details) = self.verify_admission_memoized(runtime, &request) {
                        entry.report.rejected += 1;
                        outcomes.push(ServeOutcome {
                            id: request.id,
                            priority: class,
                            status: ServeStatus::Rejected {
                                error: ServeError::InvalidPlan {
                                    plan: request.plan.name.clone(),
                                    details,
                                },
                            },
                            queue_wait_us: 0,
                            service_us: 0,
                            finish_us: 0,
                            trace_digest: None,
                            usage: TokenUsage::default(),
                            preemptions: 0,
                        });
                        continue;
                    }
                }
                match queue.offer(request) {
                    Ok(()) => {
                        entry.report.admitted += 1;
                        entry.queue_depth.record(queue.depth(class) as u64);
                    }
                    Err(shed) => {
                        let (rejected, error) = *shed;
                        entry.report.rejected += 1;
                        outcomes.push(ServeOutcome {
                            id: rejected.id,
                            priority: class,
                            status: ServeStatus::Rejected { error },
                            queue_wait_us: 0,
                            service_us: 0,
                            finish_us: 0,
                            trace_digest: None,
                            usage: TokenUsage::default(),
                            preemptions: 0,
                        });
                    }
                }
            }

            // (2) Pop a dispatch round.
            let popped = queue.pop_batch(round_size);
            if popped.is_empty() {
                match requests.last() {
                    Some(r) => {
                        now = now.max(r.arrival_us);
                        continue;
                    }
                    None => break,
                }
            }

            // (3) Place each popped request on a lane with an owner group.
            let mut jobs = Vec::with_capacity(popped.len());
            let mut meta = Vec::with_capacity(popped.len());
            for mut request in popped {
                let (owner, lane) = if self.config.affinity_routing {
                    match request.affinity_key() {
                        Some(key) => {
                            let seed = request.plan.affinity_seed().unwrap_or_default();
                            let slot = groups.entry((request.priority, key)).or_insert_with(|| {
                                let owner = owner_base + next_owner;
                                next_owner += 1;
                                (owner, (seed % lanes as u64) as usize)
                            });
                            *slot
                        }
                        None => {
                            Self::isolated(owner_base, &mut next_owner, &mut round_robin, lanes)
                        }
                    }
                } else {
                    Self::isolated(owner_base, &mut next_owner, &mut round_robin, lanes)
                };
                request.state.deadline_us = request.deadline_us;
                request.state.cancel = Some(request.cancel.clone());
                request.state.reuse = reuse_policy;
                meta.push((request.id, request.priority, request.arrival_us, lane));
                let program = self.programs.get_or_compile(&request.plan, runtime, engine);
                jobs.push(AssignedJob {
                    lane,
                    owner,
                    plan: Arc::clone(&request.plan),
                    program,
                    state: std::mem::take(&mut request.state),
                });
            }
            let results = self.runner.run_assigned(runtime, jobs);

            // (4) Charge virtual time and record outcomes, in dispatch
            // order (same-lane jobs queue behind each other).
            for ((id, priority, arrival_us, lane), result) in meta.into_iter().zip(results) {
                let start_us = lane_clock[lane].max(now);
                let entry = accum.entry(priority).or_default();
                let (status, service_us, digest, usage) = match result {
                    Ok(mut outcome) => {
                        let service = outcome.state.metadata.latency_us;
                        let digest = outcome.state.trace.digest().ok();
                        entry.report.completed += 1;
                        entry.report.prompt_tokens += outcome.state.metadata.usage.prompt_tokens;
                        entry.report.cached_tokens += outcome.state.metadata.usage.cached_tokens;
                        let events = std::mem::take(&mut outcome.state.metadata.reuse_events);
                        if !events.is_empty() {
                            reuse_rows.push((arrival_us, id, service, events));
                        }
                        (
                            ServeStatus::Completed,
                            service,
                            digest,
                            outcome.state.metadata.usage,
                        )
                    }
                    Err(SpearError::Cancelled { reason, after_us }) => {
                        let status = if reason == "deadline" {
                            entry.report.deadline_exceeded += 1;
                            ServeStatus::DeadlineExceeded { after_us }
                        } else {
                            entry.report.cancelled += 1;
                            ServeStatus::Cancelled { reason }
                        };
                        (status, after_us, None, TokenUsage::default())
                    }
                    Err(error) => {
                        entry.report.failed += 1;
                        (
                            ServeStatus::Failed {
                                error: error.to_string(),
                            },
                            0,
                            None,
                            TokenUsage::default(),
                        )
                    }
                };
                let finish_us = start_us + service_us;
                lane_clock[lane] = finish_us;
                let queue_wait_us = start_us.saturating_sub(arrival_us);
                entry.queue_wait_us.record(queue_wait_us);
                entry.service_us.record(service_us);
                entry.e2e_us.record(finish_us.saturating_sub(arrival_us));
                outcomes.push(ServeOutcome {
                    id,
                    priority,
                    status,
                    queue_wait_us,
                    service_us,
                    finish_us,
                    trace_digest: digest,
                    usage,
                    preemptions: 0,
                });
            }

            // (5) Advance to the earliest time a lane frees up.
            let earliest_free = lane_clock.iter().copied().min().unwrap_or(now);
            now = now.max(earliest_free);
        }

        outcomes.sort_by_key(|o| o.id);
        assert!(
            outcomes.windows(2).all(|w| w[0].id < w[1].id),
            "request ids must be unique"
        );

        let mut report = ServeReport {
            lanes,
            affinity_routing: self.config.affinity_routing,
            makespan_us: lane_clock.iter().copied().max().unwrap_or(0),
            trace_fingerprint: Self::fingerprint(&outcomes),
            interactive: accum
                .remove(&Priority::Interactive)
                .unwrap_or_default()
                .finish(),
            batch: accum.remove(&Priority::Batch).unwrap_or_default().finish(),
            cache: Default::default(),
            kv: Default::default(),
            compile: {
                let mut compile = self.programs.drain_counters();
                compile.verify_memo_hits = self.drain_verify_memo_hits();
                compile
            },
            cluster: None,
            reuse: Self::reuse_ledger(reuse_rows),
        };
        if let (Some(engine), Some(before)) = (engine, cache_before) {
            report.cache = engine.cache_stats().delta_since(&before);
        }
        if let (Some(engine), Some(before)) = (engine, reuse_before) {
            Self::stamp_memo_stats(&mut report.reuse, &before, &engine.reuse_stats());
        }
        ServeRun { outcomes, report }
    }

    /// The memory-pressure path: execute everything exactly as the
    /// unconstrained scheduler would (same owner groups, same per-group
    /// order — byte-identical traces), then schedule the measured token
    /// footprints through the KV iteration scheduler (`crate::kv`) for
    /// timing, preemption, and eviction behaviour. Split this way, every
    /// pool decision lives on the single-threaded virtual clock, so the
    /// contended counters are lane-count-invariant by construction.
    fn run_pressured(
        &self,
        runtime: &Runtime,
        engine: Option<&SimLlm>,
        requests: Vec<ServeRequest>,
        pressure: &KvPressureConfig,
    ) -> ServeRun {
        let cache_before = engine.map(|e| e.cache_stats());
        let reuse_before = engine.map(|e| e.reuse_stats());
        let reuse_policy = self.reuse_policy();
        let run_nonce = self.run_seq.fetch_add(1, Ordering::Relaxed);
        let owner_base = SERVE_OWNER_BASE | (run_nonce << 32);
        let lanes = self.config.lanes;

        let mut accum: HashMap<Priority, ClassAccum> = HashMap::new();
        let mut outcomes: Vec<ServeOutcome> = Vec::with_capacity(requests.len());

        // Phase 0 — admission, in arrival order. The token bucket and the
        // plan verifier apply exactly as in the unconstrained path (both
        // are pure functions of the arrival-ordered stream); depth-based
        // shedding does not, because under pressure the bounded pool —
        // not queue depth — is the backpressure valve: each admitted
        // request is drained into the KV waiting set immediately.
        let mut queue = AdmissionQueue::new(self.config.admission.clone());
        let mut admitted: Vec<ServeRequest> = Vec::with_capacity(requests.len());
        for request in requests {
            let class = request.priority;
            let entry = accum.entry(class).or_default();
            entry.report.submitted += 1;
            if self.config.verify_admission {
                if let Some(details) = self.verify_admission_memoized(runtime, &request) {
                    entry.report.rejected += 1;
                    outcomes.push(ServeOutcome {
                        id: request.id,
                        priority: class,
                        status: ServeStatus::Rejected {
                            error: ServeError::InvalidPlan {
                                plan: request.plan.name.clone(),
                                details,
                            },
                        },
                        queue_wait_us: 0,
                        service_us: 0,
                        finish_us: 0,
                        trace_digest: None,
                        usage: TokenUsage::default(),
                        preemptions: 0,
                    });
                    continue;
                }
            }
            match queue.offer(request) {
                Ok(()) => {
                    entry.report.admitted += 1;
                    admitted.push(queue.pop().expect("just offered"));
                }
                Err(shed) => {
                    let (rejected, error) = *shed;
                    entry.report.rejected += 1;
                    outcomes.push(ServeOutcome {
                        id: rejected.id,
                        priority: class,
                        status: ServeStatus::Rejected { error },
                        queue_wait_us: 0,
                        service_us: 0,
                        finish_us: 0,
                        trace_digest: None,
                        usage: TokenUsage::default(),
                        preemptions: 0,
                    });
                }
            }
        }

        // Phase 1 — execute, with the unconstrained path's placement:
        // same (class, affinity-key) owner groups, same hashed lane,
        // members in arrival order. Lanes parallelize host execution
        // only; results and digests are placement-invariant.
        let mut groups: HashMap<(Priority, String), (u64, usize)> = HashMap::new();
        let mut next_owner = 0u64;
        let mut round_robin = 0usize;
        let mut jobs = Vec::with_capacity(admitted.len());
        let mut meta = Vec::with_capacity(admitted.len());
        for mut request in admitted {
            // `grouped` ⇒ the request shares a cache owner with its
            // affinity family, and its `shared_prefix_tokens` map to the
            // family's shared pool blocks. Isolated requests share no
            // owner, hence no shared KV: their seed is unique and their
            // prefix claim is dropped.
            let (owner, lane, family_seed, grouped) = if self.config.affinity_routing {
                match request.affinity_key() {
                    Some(key) => {
                        let seed = request.plan.affinity_seed().unwrap_or_default();
                        let slot = groups.entry((request.priority, key)).or_insert_with(|| {
                            let owner = owner_base + next_owner;
                            next_owner += 1;
                            (owner, (seed % lanes as u64) as usize)
                        });
                        (slot.0, slot.1, seed, true)
                    }
                    None => {
                        let (owner, lane) =
                            Self::isolated(owner_base, &mut next_owner, &mut round_robin, lanes);
                        (owner, lane, fnv1a(&request.id.to_le_bytes()), false)
                    }
                }
            } else {
                let (owner, lane) =
                    Self::isolated(owner_base, &mut next_owner, &mut round_robin, lanes);
                (owner, lane, fnv1a(&request.id.to_le_bytes()), false)
            };
            let shared_prefix_tokens = if grouped {
                request.shared_prefix_tokens
            } else {
                0
            };
            request.state.deadline_us = request.deadline_us;
            request.state.cancel = Some(request.cancel.clone());
            request.state.reuse = reuse_policy;
            meta.push((
                request.id,
                request.priority,
                request.arrival_us,
                shared_prefix_tokens,
                family_seed,
            ));
            let program = self.programs.get_or_compile(&request.plan, runtime, engine);
            jobs.push(AssignedJob {
                lane,
                owner,
                plan: Arc::clone(&request.plan),
                program,
                state: std::mem::take(&mut request.state),
            });
        }
        let results = self.runner.run_assigned(runtime, jobs);

        // Phase 2 — schedule the measured footprints through the bounded
        // pool. Completed requests carry their real prefill/decode token
        // counts; cancelled and failed ones pass through with an empty
        // footprint but keep their measured partial service time.
        let mut inputs = Vec::with_capacity(meta.len());
        let mut executed = Vec::with_capacity(meta.len());
        let mut reuse_rows: Vec<(u64, u64, u64, Vec<ReuseEvent>)> = Vec::new();
        for ((id, priority, arrival_us, shared_prefix_tokens, family_seed), result) in
            meta.into_iter().zip(results)
        {
            let entry = accum.entry(priority).or_default();
            let mut gen_calls = 1u64;
            let (status, exec_service_us, digest, usage) = match result {
                Ok(mut outcome) => {
                    let digest = outcome.state.trace.digest().ok();
                    entry.report.completed += 1;
                    entry.report.prompt_tokens += outcome.state.metadata.usage.prompt_tokens;
                    entry.report.cached_tokens += outcome.state.metadata.usage.cached_tokens;
                    gen_calls = outcome.state.metadata.gen_calls.max(1);
                    let events = std::mem::take(&mut outcome.state.metadata.reuse_events);
                    if !events.is_empty() {
                        reuse_rows.push((
                            arrival_us,
                            id,
                            outcome.state.metadata.latency_us,
                            events,
                        ));
                    }
                    (
                        ServeStatus::Completed,
                        outcome.state.metadata.latency_us,
                        digest,
                        outcome.state.metadata.usage,
                    )
                }
                Err(SpearError::Cancelled { reason, after_us }) => {
                    let status = if reason == "deadline" {
                        entry.report.deadline_exceeded += 1;
                        ServeStatus::DeadlineExceeded { after_us }
                    } else {
                        entry.report.cancelled += 1;
                        ServeStatus::Cancelled { reason }
                    };
                    (status, after_us, None, TokenUsage::default())
                }
                Err(error) => {
                    entry.report.failed += 1;
                    (
                        ServeStatus::Failed {
                            error: error.to_string(),
                        },
                        0,
                        None,
                        TokenUsage::default(),
                    )
                }
            };
            let completed = status == ServeStatus::Completed;
            // KV footprint of the sequence's device residency. Usage
            // totals accumulate over every GEN call of the plan, but the
            // calls run serially over one growing context — the resident
            // footprint is the per-call prompt (averaged: calls share the
            // prompt's prefix) plus everything decoded across calls.
            inputs.push(SeqInput {
                id,
                priority,
                arrival_us,
                prompt_tokens: if completed {
                    usage.prompt_tokens / gen_calls
                } else {
                    0
                },
                completion_tokens: if completed {
                    usage.completion_tokens
                } else {
                    0
                },
                shared_prefix_tokens: if completed { shared_prefix_tokens } else { 0 },
                family_seed,
            });
            executed.push((
                id,
                priority,
                arrival_us,
                status,
                exec_service_us,
                digest,
                usage,
            ));
        }
        let sim = kv::simulate(&inputs, pressure);

        for ((id, priority, arrival_us, status, exec_service_us, digest, usage), timing) in
            executed.into_iter().zip(&sim.timings)
        {
            let completed = status == ServeStatus::Completed;
            // Completed requests take the KV scheduler's token-level
            // timing; non-completed ones keep their measured partial
            // service, placed at their scheduling instant.
            let service_us = if completed {
                timing.service_us
            } else {
                exec_service_us
            };
            let finish_us = if completed {
                timing.finish_us
            } else {
                timing.start_us + exec_service_us
            };
            let queue_wait_us = timing.start_us.saturating_sub(arrival_us);
            let entry = accum.entry(priority).or_default();
            entry.queue_wait_us.record(queue_wait_us);
            entry.service_us.record(service_us);
            entry.e2e_us.record(finish_us.saturating_sub(arrival_us));
            outcomes.push(ServeOutcome {
                id,
                priority,
                status,
                queue_wait_us,
                service_us,
                finish_us,
                trace_digest: digest,
                usage,
                preemptions: timing.preemptions,
            });
        }
        for (class, depth) in &sim.depth_samples {
            accum.entry(*class).or_default().queue_depth.record(*depth);
        }
        for (i, class) in Priority::ALL.iter().enumerate() {
            accum.entry(*class).or_default().report.preempted = sim.preempted_by_class[i];
        }

        outcomes.sort_by_key(|o| o.id);
        assert!(
            outcomes.windows(2).all(|w| w[0].id < w[1].id),
            "request ids must be unique"
        );
        let mut report = ServeReport {
            lanes,
            affinity_routing: self.config.affinity_routing,
            makespan_us: sim.makespan_us,
            trace_fingerprint: Self::fingerprint(&outcomes),
            interactive: accum
                .remove(&Priority::Interactive)
                .unwrap_or_default()
                .finish(),
            batch: accum.remove(&Priority::Batch).unwrap_or_default().finish(),
            cache: Default::default(),
            kv: sim.report,
            compile: {
                let mut compile = self.programs.drain_counters();
                compile.verify_memo_hits = self.drain_verify_memo_hits();
                compile
            },
            cluster: None,
            reuse: Self::reuse_ledger(reuse_rows),
        };
        if let (Some(engine), Some(before)) = (engine, cache_before) {
            report.cache = engine.cache_stats().delta_since(&before);
        }
        if let (Some(engine), Some(before)) = (engine, reuse_before) {
            Self::stamp_memo_stats(&mut report.reuse, &before, &engine.reuse_stats());
        }
        ServeRun { outcomes, report }
    }

    /// The [`ReusePolicy`] stamped on every admitted request's
    /// [`spear_core::ExecState`].
    fn reuse_policy(&self) -> ReusePolicy {
        if self.config.reuse {
            ReusePolicy::Exact
        } else {
            ReusePolicy::Off
        }
    }

    /// Deterministic reuse ledger: classify each duplicate GEN as `coalesced`
    /// (its request arrived while the nominal leader — the first arrival for
    /// that memo key — was still in service) or a plain cache `hit`
    /// (arrived after the leader finished). Built from arrival order and
    /// virtual service times only, so the counters are identical at any lane
    /// count even though *which* physical call populated the memo varies.
    fn reuse_ledger(mut rows: Vec<(u64, u64, u64, Vec<ReuseEvent>)>) -> ReuseReport {
        rows.sort_by_key(|&(arrival_us, id, _, _)| (arrival_us, id));
        let mut leaders: HashMap<u64, (u64, u64)> = HashMap::new();
        let mut report = ReuseReport::default();
        for (arrival_us, _, service_us, events) in rows {
            for event in events {
                match leaders.entry(event.key) {
                    Entry::Vacant(slot) => {
                        slot.insert((arrival_us, service_us));
                    }
                    Entry::Occupied(slot) => {
                        let (lead_arrival, lead_service) = *slot.get();
                        if arrival_us < lead_arrival.saturating_add(lead_service) {
                            report.coalesced += 1;
                        } else {
                            report.hits += 1;
                        }
                        report.saved_calls += 1;
                        report.saved_tokens += event.prompt_tokens + event.completion_tokens;
                    }
                }
            }
        }
        report
    }

    /// Fill in the memo-occupancy half of a [`ReuseReport`] from engine-side
    /// [`MemoStats`] snapshots taken before and after the run.
    fn stamp_memo_stats(reuse: &mut ReuseReport, before: &MemoStats, after: &MemoStats) {
        reuse.inserted = after.insertions.saturating_sub(before.insertions);
        reuse.evicted = after.evictions.saturating_sub(before.evictions);
        reuse.bytes = after.resident_bytes;
    }

    /// Fresh-owner, round-robin-lane placement (no affinity).
    fn isolated(
        owner_base: u64,
        next_owner: &mut u64,
        round_robin: &mut usize,
        lanes: usize,
    ) -> (u64, usize) {
        let owner = owner_base + *next_owner;
        *next_owner += 1;
        let lane = *round_robin % lanes;
        *round_robin += 1;
        (owner, lane)
    }

    /// Order-canonical fold of statuses and trace digests, keyed by id.
    fn fingerprint(outcomes: &[ServeOutcome]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for o in outcomes {
            mix(o.id);
            let tag = match &o.status {
                ServeStatus::Completed => 1,
                ServeStatus::Rejected { .. } => 2,
                ServeStatus::DeadlineExceeded { .. } => 3,
                ServeStatus::Cancelled { .. } => 4,
                ServeStatus::Failed { .. } => 5,
            };
            mix(tag);
            mix(o.trace_digest.unwrap_or(0));
        }
        hash
    }
}

/// Statically verify a request's plan at admission: full IR verification
/// against the runtime's registries, seeded with the prompt keys already
/// present in the request's starting state, with the request's service
/// deadline as the feasibility budget. When the IR verifier is clean and
/// a deadline is set, the decision is refined with the bytecode abstract
/// interpreter's interval bounds
/// ([`spear_core::analysis::absint::analyze`]): its latency floor walks
/// only paths that survive statically-decided CHECKs, so it is at least
/// the IR floor and can expose infeasibility the slot-order walk misses —
/// refinement only ever *adds* rejections, keeping the previous decisions
/// a strict subset. Returns the rendered error-severity diagnostics, or
/// `None` when the plan is sound enough to run.
fn verify_for_admission(runtime: &Runtime, request: &ServeRequest) -> Option<Vec<String>> {
    let mut verifier = spear_core::analysis::Verifier::with_runtime(runtime);
    for key in request.state.prompts.keys() {
        verifier = verifier.assume_prompt(key);
    }
    if let Some(deadline) = request.deadline_us {
        verifier = verifier.deadline_us(deadline);
    }
    let mut details: Vec<String> = verifier
        .verify(&request.plan)
        .iter()
        .filter(|d| d.is_error())
        .map(ToString::to_string)
        .collect();
    if details.is_empty() {
        if let Some(deadline) = request.deadline_us {
            if let Ok(program) = spear_core::vm::compile(&request.plan) {
                let bounds = spear_core::analysis::analyze(
                    &program,
                    &spear_core::analysis::ResourceModel::default(),
                );
                if bounds.latency_lo_us > deadline {
                    details.push(
                        spear_core::analysis::Diagnostic::plan_level(
                            &spear_core::analysis::lints::BUDGET_INFEASIBLE,
                            format!(
                                "every executable path needs at least {} µs of generation \
                                 but the deadline is {deadline} µs (bytecode interval bounds)",
                                bounds.latency_lo_us
                            ),
                        )
                        .to_string(),
                    );
                }
            }
        }
    }
    if details.is_empty() {
        None
    } else {
        Some(details)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_core::history::RefinementMode;
    use spear_core::llm::EchoLlm;
    use spear_core::pipeline::Pipeline;
    use spear_core::plan::{lower, LoweredPlan};
    use spear_core::runtime::ExecState;

    fn runtime() -> Runtime {
        Runtime::builder().llm(Arc::new(EchoLlm::default())).build()
    }

    fn plan(gens: usize) -> Arc<LoweredPlan> {
        let mut b = Pipeline::builder("serve_test").create_text(
            "p",
            "Answer briefly: {{ctx:q}}",
            RefinementMode::Manual,
        );
        for i in 0..gens {
            b = b.gen(&format!("a{i}"), "p");
        }
        Arc::new(lower(&b.build()).expect("lowers"))
    }

    fn request(id: u64, class: Priority, arrival_us: u64) -> ServeRequest {
        let mut state = ExecState::new();
        state.context.set("q", format!("question {id}"));
        ServeRequest::new(id, class, plan(1), state, arrival_us)
    }

    #[test]
    fn all_requests_get_exactly_one_outcome() {
        let node = ServeNode::new(ServeConfig::default());
        let rt = runtime();
        let requests: Vec<_> = (0..20)
            .map(|i| {
                request(
                    i,
                    if i % 3 == 0 {
                        Priority::Batch
                    } else {
                        Priority::Interactive
                    },
                    i * 10,
                )
            })
            .collect();
        let run = node.run(&rt, None, requests);
        assert_eq!(run.outcomes.len(), 20);
        assert!(run
            .outcomes
            .iter()
            .all(|o| o.status == ServeStatus::Completed));
        let ids: Vec<u64> = run.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
        assert_eq!(
            run.report.interactive.completed + run.report.batch.completed,
            20
        );
        assert!(run.report.makespan_us > 0);
        assert!(run.outcome(7).is_some());
        assert!(run.outcome(99).is_none());
    }

    #[test]
    fn admission_verification_is_memoized_per_plan_family() {
        // Ten requests sharing one plan family (same fingerprint, same
        // prompt keys, no deadline): the first admission verifies, the
        // other nine hit the memo.
        let node = ServeNode::new(ServeConfig::default());
        let rt = runtime();
        let requests: Vec<_> = (0..10)
            .map(|i| request(i, Priority::Interactive, i * 10))
            .collect();
        let run = node.run(&rt, None, requests);
        assert_eq!(run.report.compile.verify_memo_hits, 9);

        // The memo is per-run state: a second run on the same node
        // re-verifies once, it does not carry 10 stale entries over.
        let requests: Vec<_> = (0..10)
            .map(|i| request(i, Priority::Interactive, i * 10))
            .collect();
        let run = node.run(&rt, None, requests);
        assert_eq!(run.report.compile.verify_memo_hits, 9);
    }

    #[test]
    fn service_deadline_produces_deadline_exceeded() {
        // Admission verification off: a 1 µs deadline is statically
        // infeasible and would be shed up front; this test exercises the
        // *runtime* deadline gate between plan slots.
        let node = ServeNode::new(ServeConfig {
            verify_admission: false,
            ..ServeConfig::default()
        });
        let rt = runtime();
        let mut state = ExecState::new();
        state.context.set("q", "slow question");
        // Two GEN slots with a 1us budget: the first completes (crossing
        // the line), the gate cancels before the second.
        let r = ServeRequest::new(1, Priority::Interactive, plan(2), state, 0).with_deadline_us(1);
        let run = node.run(&rt, None, vec![r]);
        let o = run.outcome(1).unwrap();
        assert!(
            matches!(o.status, ServeStatus::DeadlineExceeded { after_us } if after_us > 1),
            "{:?}",
            o.status
        );
        assert!(o.service_us > 0, "partial service time is charged");
        assert_eq!(run.report.interactive.deadline_exceeded, 1);
    }

    #[test]
    fn tripped_token_cancels_without_execution_effects() {
        let node = ServeNode::new(ServeConfig::default());
        let rt = runtime();
        let r = request(5, Priority::Batch, 0);
        r.cancel_handle().cancel();
        let run = node.run(&rt, None, vec![r]);
        let o = run.outcome(5).unwrap();
        assert!(
            matches!(&o.status, ServeStatus::Cancelled { reason } if reason == "cancelled"),
            "{:?}",
            o.status
        );
        assert_eq!(o.service_us, 0);
        assert_eq!(run.report.batch.cancelled, 1);
    }

    #[test]
    fn depth_overload_sheds_explicitly() {
        let node = ServeNode::new(ServeConfig {
            lanes: 1,
            quantum: 1,
            admission: AdmissionConfig {
                max_depth: 2,
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        });
        let rt = runtime();
        // All arrive at t=0: one is dispatched per round; with depth 2,
        // later arrivals shed.
        let requests: Vec<_> = (0..6)
            .map(|i| request(i, Priority::Interactive, 0))
            .collect();
        let run = node.run(&rt, None, requests);
        let rejected = run
            .outcomes
            .iter()
            .filter(|o| matches!(o.status, ServeStatus::Rejected { .. }))
            .count();
        assert!(rejected > 0, "overflow must shed");
        assert_eq!(run.report.interactive.rejected, rejected as u64);
        assert_eq!(
            run.report.interactive.admitted + run.report.interactive.rejected,
            6
        );
        for o in &run.outcomes {
            if let ServeStatus::Rejected { error } = &o.status {
                assert!(matches!(error, ServeError::Overloaded { .. }));
            }
        }
    }

    #[test]
    fn invalid_plans_are_rejected_at_admission() {
        // A plan that GENs from a never-created prompt key is caught by
        // the IR verifier at admission: rejected with a stable lint code
        // before any LLM call, while sound neighbours run to completion.
        let node = ServeNode::new(ServeConfig::default());
        let rt = runtime();
        let bad = Arc::new(
            lower(&Pipeline::builder("bad").gen("a", "missing_prompt").build())
                .expect("structurally sound, so it lowers"),
        );
        let requests = vec![
            request(1, Priority::Interactive, 0),
            ServeRequest::new(2, Priority::Interactive, bad, ExecState::new(), 0),
            request(3, Priority::Interactive, 0),
        ];
        let run = node.run(&rt, None, requests);
        assert_eq!(run.outcome(1).unwrap().status, ServeStatus::Completed);
        let o = run.outcome(2).unwrap();
        match &o.status {
            ServeStatus::Rejected {
                error: ServeError::InvalidPlan { plan, details },
            } => {
                assert_eq!(plan, "bad");
                assert!(
                    details.iter().any(|d| d.contains("SPEAR-E004")),
                    "{details:?}"
                );
            }
            other => panic!("expected admission rejection, got {other:?}"),
        }
        assert_eq!(o.service_us, 0, "rejected before any execution");
        assert_eq!(run.outcome(3).unwrap().status, ServeStatus::Completed);
        assert_eq!(run.report.interactive.rejected, 1);
    }

    #[test]
    fn admission_verifier_respects_preseeded_prompts() {
        // The same "missing key" plan is sound when the request's own
        // starting state carries the prompt: the verifier seeds from it.
        let node = ServeNode::new(ServeConfig::default());
        let rt = runtime();
        let plan = Arc::new(
            lower(&Pipeline::builder("pre").gen("a", "preexisting").build()).expect("lowers"),
        );
        let state = ExecState::new();
        state
            .prompts
            .define("preexisting", "seeded text", "test", RefinementMode::Manual);
        let run = node.run(
            &rt,
            None,
            vec![ServeRequest::new(1, Priority::Interactive, plan, state, 0)],
        );
        assert_eq!(run.outcome(1).unwrap().status, ServeStatus::Completed);
    }

    #[test]
    fn infeasible_deadlines_are_rejected_at_admission() {
        // Two GEN slots cost at least 200 virtual µs; a 1 µs deadline can
        // never be met, so the verifier sheds the request up front
        // (SPEAR-E005) instead of burning an LLM call to find out.
        let node = ServeNode::new(ServeConfig::default());
        let rt = runtime();
        let mut state = ExecState::new();
        state.context.set("q", "doomed question");
        let r = ServeRequest::new(1, Priority::Interactive, plan(2), state, 0).with_deadline_us(1);
        let run = node.run(&rt, None, vec![r]);
        match &run.outcome(1).unwrap().status {
            ServeStatus::Rejected {
                error: ServeError::InvalidPlan { details, .. },
            } => assert!(
                details.iter().any(|d| d.contains("SPEAR-E005")),
                "{details:?}"
            ),
            other => panic!("expected admission rejection, got {other:?}"),
        }
    }

    #[test]
    fn pipeline_failures_are_contained() {
        // Runtime failures (as opposed to statically detectable defects)
        // still surface as Failed without poisoning neighbouring requests.
        let node = ServeNode::new(ServeConfig::default());
        let rt = Runtime::builder()
            .llm(Arc::new(EchoLlm::default()))
            .agent(
                "boom",
                Arc::new(spear_core::agent::FnAgent(
                    |_: &spear_core::value::Value, _: &spear_core::context::Context| {
                        Err(SpearError::Agent {
                            agent: "boom".into(),
                            reason: "intentional test failure".into(),
                        })
                    },
                )),
            )
            .build();
        let failing = Arc::new(
            lower(
                &Pipeline::builder("failing")
                    .create_text("p", "payload", RefinementMode::Manual)
                    .delegate(
                        "boom",
                        spear_core::ops::PayloadSpec::PromptKey("p".into()),
                        "out",
                    )
                    .build(),
            )
            .expect("lowers"),
        );
        let requests = vec![
            request(1, Priority::Interactive, 0),
            ServeRequest::new(2, Priority::Interactive, failing, ExecState::new(), 0),
            request(3, Priority::Interactive, 0),
        ];
        let run = node.run(&rt, None, requests);
        assert_eq!(run.outcome(1).unwrap().status, ServeStatus::Completed);
        assert!(matches!(
            run.outcome(2).unwrap().status,
            ServeStatus::Failed { .. }
        ));
        assert_eq!(run.outcome(3).unwrap().status, ServeStatus::Completed);
        assert_eq!(run.report.interactive.failed, 1);
    }

    #[test]
    fn virtual_queueing_orders_lane_time() {
        // One lane: three simultaneous arrivals queue behind each other,
        // so finish times strictly increase and waits accumulate.
        let node = ServeNode::new(ServeConfig {
            lanes: 1,
            quantum: 8,
            affinity_routing: false,
            ..ServeConfig::default()
        });
        let rt = runtime();
        let requests: Vec<_> = (0..3)
            .map(|i| request(i, Priority::Interactive, 0))
            .collect();
        let run = node.run(&rt, None, requests);
        let finishes: Vec<u64> = run.outcomes.iter().map(|o| o.finish_us).collect();
        assert!(finishes[0] < finishes[1] && finishes[1] < finishes[2]);
        assert_eq!(run.outcomes[0].queue_wait_us, 0);
        assert!(run.outcomes[2].queue_wait_us > run.outcomes[1].queue_wait_us);
        assert_eq!(run.report.makespan_us, finishes[2]);
    }

    #[test]
    fn affinity_groups_share_lanes_and_owners_deterministically() {
        // Same plan (same affinity key) => same lane; report identical
        // across repeated runs of a fresh node.
        let config = ServeConfig {
            lanes: 4,
            ..ServeConfig::default()
        };
        let rt = runtime();
        let make = || {
            let shared = plan(1);
            (0..8)
                .map(|i| {
                    let mut state = ExecState::new();
                    state.context.set("q", format!("question {i}"));
                    ServeRequest::new(i, Priority::Interactive, Arc::clone(&shared), state, i * 5)
                })
                .collect::<Vec<_>>()
        };
        let a = ServeNode::new(config.clone()).run(&rt, None, make());
        let b = ServeNode::new(config).run(&rt, None, make());
        assert_eq!(a.report.trace_fingerprint, b.report.trace_fingerprint);
        assert_eq!(a.report.makespan_us, b.report.makespan_us);
    }
}
