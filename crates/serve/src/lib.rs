//! # spear-serve — admission-controlled, cache-affinity request scheduling
//!
//! A serving layer over the SPEAR runtime: long-lived [`ServeNode`]s
//! accept pipeline-execution requests, shed load explicitly when
//! overloaded, schedule two priority classes starvation-free, and route
//! requests that share a structured prompt prefix to the same cache
//! stripe and worker lane — turning the prompt identity that SPEAR makes
//! first-class into prefix-cache hit-rate, the serving-side payoff the
//! paper argues for (§5–§6).
//!
//! The layer is built from four pieces:
//!
//! - [`queue::AdmissionQueue`] — bounded per-class FIFOs behind a
//!   token-bucket admission gate; overload produces a typed
//!   [`ServeError::Overloaded`], never a silent drop, and an aging rule
//!   bounds how long interactive floods can starve batch work;
//! - [`scheduler::ServeNode`] — a virtual-time dispatch loop over
//!   [`spear_core::batch::BatchRunner`] lanes with per-request deadlines
//!   (cooperative cancellation between plan slots) and cache-affinity
//!   placement via [`spear_core::plan::LoweredPlan::affinity_key`];
//! - [`loadgen`] — a seeded open-loop generator producing reproducible
//!   workloads for benchmarks and tests;
//! - [`metrics::ServeReport`] — a serializable snapshot: admission and
//!   completion counters, queue-depth/latency histograms, and cache
//!   hit-rates split by priority class.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use spear_serve::prelude::*;
//! use spear_llm::{ModelProfile, SimLlm};
//! use spear_core::runtime::Runtime;
//!
//! // A reproducible workload: 24 requests over 3 prompt families.
//! let workload = generate(&LoadGenConfig {
//!     seed: 7,
//!     requests: 24,
//!     families: 3,
//!     ..LoadGenConfig::default()
//! });
//!
//! let engine = Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct()));
//! let runtime = Runtime::builder()
//!     .llm(Arc::clone(&engine) as Arc<dyn spear_core::llm::LlmClient>)
//!     .views(workload.views.clone())
//!     .build();
//!
//! let node = ServeNode::new(ServeConfig {
//!     lanes: 4,
//!     affinity_routing: true,
//!     ..ServeConfig::default()
//! });
//! let run = node.run(&runtime, Some(&engine), workload.requests);
//!
//! assert_eq!(run.outcomes.len(), 24);
//! let completed = run.report.interactive.completed + run.report.batch.completed;
//! assert_eq!(completed, 24);
//! // Affinity routing makes family members share their instruction
//! // prefix in the cache, so the run sees real hit-rate.
//! assert!(run.report.cache_hit_rate().unwrap() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::redundant_clone, clippy::inefficient_to_string)]

pub mod error;
pub mod kv;
pub mod loadgen;
pub mod metrics;
pub mod program_cache;
pub mod queue;
pub mod request;
pub mod scheduler;

pub use error::ServeError;
pub use kv::KvPressureConfig;
pub use loadgen::{generate, GeneratedWorkload, LoadGenConfig};
pub use metrics::{
    ClassReport, ClusterLinkage, CompileReport, Histogram, HistogramSummary, KvReport, ReuseReport,
    ServeReport,
};
pub use program_cache::ProgramCache;
pub use queue::{AdmissionConfig, AdmissionQueue, ClassFifo};
pub use request::{Priority, ServeRequest};
pub use scheduler::{ServeConfig, ServeNode, ServeOutcome, ServeRun, ServeStatus};

/// Glob-import of the serving layer's main types.
pub mod prelude {
    pub use crate::error::ServeError;
    pub use crate::kv::KvPressureConfig;
    pub use crate::loadgen::{generate, GeneratedWorkload, LoadGenConfig};
    pub use crate::metrics::{
        ClassReport, ClusterLinkage, CompileReport, Histogram, HistogramSummary, KvReport,
        ReuseReport, ServeReport,
    };
    pub use crate::program_cache::ProgramCache;
    pub use crate::queue::{AdmissionConfig, AdmissionQueue, ClassFifo};
    pub use crate::request::{Priority, ServeRequest};
    pub use crate::scheduler::{ServeConfig, ServeNode, ServeOutcome, ServeRun, ServeStatus};
}
