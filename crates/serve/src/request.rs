//! The unit of serving work: a lowered pipeline plan plus its private
//! execution state, stamped with arrival time, priority class, and
//! deadline.

use std::sync::Arc;

use spear_core::cancel::CancelToken;
use spear_core::plan::LoweredPlan;
use spear_core::runtime::ExecState;

/// Scheduling class of a request.
///
/// Interactive requests are dispatched ahead of batch requests; the
/// admission queue's aging rule (`AdmissionConfig::starvation_limit`)
/// bounds how long an interactive flood can defer the batch class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Priority {
    /// Latency-sensitive foreground work.
    Interactive,
    /// Throughput-oriented background work.
    Batch,
}

impl Priority {
    /// All classes, in dispatch-preference order.
    pub const ALL: [Priority; 2] = [Priority::Interactive, Priority::Batch];

    /// Stable display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// One serving request: what to run, whose state to run it against, and
/// how the scheduler should treat it.
#[derive(Debug)]
pub struct ServeRequest {
    /// Caller-chosen id; must be unique within one `ServeNode::run` call
    /// (outcomes are reported per id).
    pub id: u64,
    /// Scheduling class.
    pub priority: Priority,
    /// The lowered plan to execute. Requests sharing a plan share the
    /// `Arc`; affinity routing groups requests by the plan's
    /// [`LoweredPlan::affinity_key`].
    pub plan: Arc<LoweredPlan>,
    /// The request's private execution state (context inputs, etc.).
    pub state: ExecState,
    /// Arrival timestamp on the virtual clock, in microseconds. Requests
    /// must be submitted in non-decreasing arrival order.
    pub arrival_us: u64,
    /// Optional **service** deadline: the maximum virtual time the
    /// execution itself may accumulate before the spine cancels it
    /// between slots (see [`spear_core::cancel`]). `None` = unbounded.
    pub deadline_us: Option<u64>,
    /// Estimated prompt+completion tokens, charged against the admission
    /// token bucket. Zero is allowed (admission then only enforces queue
    /// depth).
    pub est_tokens: u64,
    /// Leading prompt tokens shared with every other request in the same
    /// affinity group (the family instruction prefix). Under memory
    /// pressure (`ServeConfig::pressure`) the KV scheduler maps these
    /// tokens to the group's shared pool blocks; requests outside any
    /// affinity group ignore the field. Zero = no shared prefix.
    pub shared_prefix_tokens: u64,
    /// Cooperative cancellation handle. Clone it before submitting to
    /// cancel the request from outside the scheduler.
    pub cancel: CancelToken,
}

impl ServeRequest {
    /// A request with no deadline and no token estimate.
    #[must_use]
    pub fn new(
        id: u64,
        priority: Priority,
        plan: Arc<LoweredPlan>,
        state: ExecState,
        arrival_us: u64,
    ) -> Self {
        Self {
            id,
            priority,
            plan,
            state,
            arrival_us,
            deadline_us: None,
            est_tokens: 0,
            shared_prefix_tokens: 0,
            cancel: CancelToken::new("cancelled"),
        }
    }

    /// Set the service deadline (virtual µs of execution time).
    #[must_use]
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Set the admission token estimate.
    #[must_use]
    pub fn with_est_tokens(mut self, est_tokens: u64) -> Self {
        self.est_tokens = est_tokens;
        self
    }

    /// Set the affinity-group shared-prefix length in tokens.
    #[must_use]
    pub fn with_shared_prefix_tokens(mut self, shared_prefix_tokens: u64) -> Self {
        self.shared_prefix_tokens = shared_prefix_tokens;
        self
    }

    /// A clone of the cancellation handle (trip it to cancel the request
    /// cooperatively).
    #[must_use]
    pub fn cancel_handle(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The affinity group key of this request's plan, if it has one.
    #[must_use]
    pub fn affinity_key(&self) -> Option<String> {
        self.plan.affinity_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_core::history::RefinementMode;
    use spear_core::pipeline::Pipeline;
    use spear_core::plan::lower;

    #[test]
    fn builder_style_setters_stick() {
        let plan = Arc::new(
            lower(
                &Pipeline::builder("r")
                    .create_text("p", "hello {{ctx:x}}", RefinementMode::Manual)
                    .gen("a", "p")
                    .build(),
            )
            .expect("lowers"),
        );
        let r = ServeRequest::new(7, Priority::Interactive, plan, ExecState::new(), 100)
            .with_deadline_us(5_000)
            .with_est_tokens(64)
            .with_shared_prefix_tokens(32);
        assert_eq!(r.id, 7);
        assert_eq!(r.deadline_us, Some(5_000));
        assert_eq!(r.est_tokens, 64);
        assert_eq!(r.shared_prefix_tokens, 32);
        assert!(r.affinity_key().is_some());
        let handle = r.cancel_handle();
        handle.cancel();
        assert!(r.cancel.is_cancelled());
    }

    #[test]
    fn priority_labels_are_stable() {
        assert_eq!(Priority::Interactive.label(), "interactive");
        assert_eq!(Priority::Batch.label(), "batch");
        assert_eq!(Priority::ALL.len(), 2);
    }
}
