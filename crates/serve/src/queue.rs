//! Bounded admission queue with token-budget admission control and
//! starvation-free two-class priority dispatch.
//!
//! ## Admission (lane-count invariant)
//!
//! A request is admitted iff (a) its class queue is below `max_depth` and
//! (b) the token bucket holds at least `est_tokens`. The bucket refills as
//! a function of each request's **arrival timestamp** — never of the
//! scheduler's progress — so for workloads whose depth limit is not the
//! binding constraint, the admitted set is identical at any lane count
//! (the property the determinism proptest pins). Depth-based shedding is
//! genuine backpressure and *is* capacity-dependent, by design.
//!
//! ## Dispatch
//!
//! Interactive requests are popped before batch requests, each class FIFO
//! in arrival order. An aging counter bounds starvation: after
//! `starvation_limit` consecutive interactive pops while a batch request
//! is waiting, the next pop takes the batch head. Hence a batch request
//! is delayed by at most `starvation_limit` interactive requests per
//! dispatch slot it is passed over for, no matter how heavy the flood.

use std::collections::VecDeque;

use crate::error::ServeError;
use crate::request::{Priority, ServeRequest};

/// A two-class FIFO with starvation aging — the dispatch-order core shared
/// by the [`AdmissionQueue`] and the memory-pressure KV scheduler's
/// waiting set (`crate::kv`). Interactive items pop before batch items;
/// after `starvation_limit` consecutive interactive pops while batch work
/// waits, the next pop takes the batch head.
#[derive(Debug)]
pub struct ClassFifo<T> {
    interactive: VecDeque<T>,
    batch: VecDeque<T>,
    starvation_limit: u32,
    /// Consecutive interactive pops since the last batch pop.
    consecutive_interactive: u32,
}

impl<T> ClassFifo<T> {
    /// An empty FIFO with the given aging bound.
    #[must_use]
    pub fn new(starvation_limit: u32) -> Self {
        Self {
            interactive: VecDeque::new(),
            batch: VecDeque::new(),
            starvation_limit,
            consecutive_interactive: 0,
        }
    }

    fn deque(&mut self, class: Priority) -> &mut VecDeque<T> {
        match class {
            Priority::Interactive => &mut self.interactive,
            Priority::Batch => &mut self.batch,
        }
    }

    /// Queued items in `class`.
    #[must_use]
    pub fn depth(&self, class: Priority) -> usize {
        match class {
            Priority::Interactive => self.interactive.len(),
            Priority::Batch => self.batch.len(),
        }
    }

    /// Total queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }

    /// Whether both class queues are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.interactive.is_empty() && self.batch.is_empty()
    }

    /// Enqueue at the back of `class` (normal arrival order).
    pub fn push_back(&mut self, class: Priority, item: T) {
        self.deque(class).push_back(item);
    }

    /// Enqueue at the *front* of `class` — used to re-admit preempted work
    /// ahead of everything that arrived after it.
    pub fn push_front(&mut self, class: Priority, item: T) {
        self.deque(class).push_front(item);
    }

    /// Pop the next item, honouring class priority and the aging bound.
    pub fn pop(&mut self) -> Option<(Priority, T)> {
        let take_batch = !self.batch.is_empty()
            && (self.interactive.is_empty()
                || self.consecutive_interactive >= self.starvation_limit);
        if take_batch {
            self.consecutive_interactive = 0;
            return self.batch.pop_front().map(|i| (Priority::Batch, i));
        }
        if let Some(item) = self.interactive.pop_front() {
            // Only count against the aging bound while batch work waits;
            // an interactive run on an otherwise idle queue starves no one.
            if self.batch.is_empty() {
                self.consecutive_interactive = 0;
            } else {
                self.consecutive_interactive += 1;
            }
            return Some((Priority::Interactive, item));
        }
        None
    }
}

/// Admission-control limits.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum queued requests per class; `offer` sheds above this.
    pub max_depth: usize,
    /// Token-bucket capacity (burst budget), in estimated tokens.
    pub bucket_capacity: u64,
    /// Bucket refill rate in tokens per virtual microsecond.
    pub refill_per_us: f64,
    /// Maximum consecutive interactive pops while batch work waits.
    pub starvation_limit: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_depth: 1024,
            bucket_capacity: 1_000_000,
            refill_per_us: 10.0,
            starvation_limit: 4,
        }
    }
}

/// The serving queue: per-class FIFOs behind a token-bucket admission
/// gate.
#[derive(Debug)]
pub struct AdmissionQueue {
    config: AdmissionConfig,
    fifo: ClassFifo<ServeRequest>,
    /// Current bucket level in tokens.
    level: f64,
    /// Arrival timestamp the bucket was last refilled to.
    refilled_at_us: u64,
}

impl AdmissionQueue {
    /// An empty queue with a full bucket.
    #[must_use]
    pub fn new(config: AdmissionConfig) -> Self {
        let level = config.bucket_capacity as f64;
        let fifo = ClassFifo::new(config.starvation_limit);
        Self {
            config,
            fifo,
            level,
            refilled_at_us: 0,
        }
    }

    /// Queued requests in `class`.
    #[must_use]
    pub fn depth(&self, class: Priority) -> usize {
        self.fifo.depth(class)
    }

    /// Total queued requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether both class queues are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Refill the bucket up to the given arrival timestamp. Arrivals must
    /// be offered in non-decreasing timestamp order; an out-of-order
    /// timestamp is clamped (no negative refill).
    fn refill_to(&mut self, arrival_us: u64) {
        if arrival_us > self.refilled_at_us {
            let dt = (arrival_us - self.refilled_at_us) as f64;
            self.level = (self.level + dt * self.config.refill_per_us)
                .min(self.config.bucket_capacity as f64);
            self.refilled_at_us = arrival_us;
        }
    }

    /// Offer a request for admission. On success the request is queued;
    /// on overload it is handed back with a typed overload error carrying
    /// a retry hint — shedding is always explicit, never a silent drop.
    /// The `Err` payload is boxed to keep the happy path's return value
    /// register-sized.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the class queue is at `max_depth`
    /// or the token bucket cannot cover `est_tokens`.
    pub fn offer(&mut self, request: ServeRequest) -> Result<(), Box<(ServeRequest, ServeError)>> {
        self.refill_to(request.arrival_us);
        let class = request.priority;
        let depth = self.depth(class);
        if depth >= self.config.max_depth {
            let error = ServeError::Overloaded {
                priority: class,
                queue_depth: depth,
                retry_after_us: 0,
            };
            return Err(Box::new((request, error)));
        }
        let cost = request.est_tokens as f64;
        if cost > self.level {
            let deficit = cost - self.level;
            let retry_after_us = if self.config.refill_per_us > 0.0 {
                (deficit / self.config.refill_per_us).ceil() as u64
            } else {
                u64::MAX
            };
            let error = ServeError::Overloaded {
                priority: class,
                queue_depth: depth,
                retry_after_us,
            };
            return Err(Box::new((request, error)));
        }
        self.level -= cost;
        self.fifo.push_back(class, request);
        Ok(())
    }

    /// Pop the next request to dispatch, honouring priority and the aging
    /// bound. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<ServeRequest> {
        self.fifo.pop().map(|(_, request)| request)
    }

    /// Pop up to `max` requests (dispatch round).
    pub fn pop_batch(&mut self, max: usize) -> Vec<ServeRequest> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.pop() {
                Some(r) => out.push(r),
                None => break,
            }
        }
        out
    }

    /// Current token-bucket level (observability).
    #[must_use]
    pub fn bucket_level(&self) -> f64 {
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_core::history::RefinementMode;
    use spear_core::pipeline::Pipeline;
    use spear_core::plan::{lower, LoweredPlan};
    use spear_core::runtime::ExecState;
    use std::sync::Arc;

    fn plan() -> Arc<LoweredPlan> {
        Arc::new(
            lower(
                &Pipeline::builder("q")
                    .create_text("p", "hi {{ctx:x}}", RefinementMode::Manual)
                    .gen("a", "p")
                    .build(),
            )
            .expect("lowers"),
        )
    }

    fn req(id: u64, class: Priority, arrival_us: u64, est_tokens: u64) -> ServeRequest {
        ServeRequest::new(id, class, plan(), ExecState::new(), arrival_us)
            .with_est_tokens(est_tokens)
    }

    #[test]
    fn fifo_within_class_interactive_first() {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        q.offer(req(1, Priority::Batch, 0, 0)).unwrap();
        q.offer(req(2, Priority::Interactive, 0, 0)).unwrap();
        q.offer(req(3, Priority::Interactive, 0, 0)).unwrap();
        let order: Vec<u64> = q.pop_batch(10).iter().map(|r| r.id).collect();
        assert_eq!(order, vec![2, 3, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn depth_limit_sheds_with_typed_error() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            max_depth: 2,
            ..AdmissionConfig::default()
        });
        q.offer(req(1, Priority::Interactive, 0, 0)).unwrap();
        q.offer(req(2, Priority::Interactive, 0, 0)).unwrap();
        let (rejected, error) = *q.offer(req(3, Priority::Interactive, 0, 0)).unwrap_err();
        assert_eq!(rejected.id, 3, "request is handed back, not dropped");
        assert!(matches!(
            error,
            ServeError::Overloaded {
                priority: Priority::Interactive,
                queue_depth: 2,
                retry_after_us: 0,
            }
        ));
        // The other class still has room.
        q.offer(req(4, Priority::Batch, 0, 0)).unwrap();
    }

    #[test]
    fn token_bucket_sheds_and_refills_by_arrival_time() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            bucket_capacity: 100,
            refill_per_us: 1.0,
            ..AdmissionConfig::default()
        });
        q.offer(req(1, Priority::Interactive, 0, 80)).unwrap();
        // 20 tokens left; a 50-token request at t=0 is shed with a hint.
        let (_, error) = *q.offer(req(2, Priority::Interactive, 0, 50)).unwrap_err();
        let ServeError::Overloaded { retry_after_us, .. } = error else {
            panic!("expected overload");
        };
        assert_eq!(retry_after_us, 30, "deficit 30 tokens at 1 token/us");
        // The same request arriving 30us later is admitted: refill is a
        // pure function of arrival timestamps.
        q.offer(req(3, Priority::Interactive, 30, 50)).unwrap();
        assert!(q.bucket_level() < 1.0);
    }

    #[test]
    fn aging_bounds_interactive_monopoly() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            starvation_limit: 2,
            ..AdmissionConfig::default()
        });
        q.offer(req(100, Priority::Batch, 0, 0)).unwrap();
        for id in 0..6 {
            q.offer(req(id, Priority::Interactive, 0, 0)).unwrap();
        }
        let order: Vec<u64> = q.pop_batch(10).iter().map(|r| r.id).collect();
        // Two interactive, then the aged batch request, then the rest.
        assert_eq!(order, vec![0, 1, 100, 2, 3, 4, 5]);
    }

    #[test]
    fn idle_interactive_runs_do_not_build_aging_debt() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            starvation_limit: 2,
            ..AdmissionConfig::default()
        });
        // Interactive pops with no batch waiting leave the counter at 0.
        for id in 0..5 {
            q.offer(req(id, Priority::Interactive, 0, 0)).unwrap();
        }
        assert_eq!(q.pop().unwrap().id, 0);
        assert_eq!(q.pop().unwrap().id, 1);
        q.offer(req(100, Priority::Batch, 0, 0)).unwrap();
        // Fresh batch arrival: the bound starts counting from here.
        assert_eq!(q.pop().unwrap().id, 2);
        assert_eq!(q.pop().unwrap().id, 3);
        assert_eq!(q.pop().unwrap().id, 100, "aged in after starvation_limit");
    }

    #[test]
    fn class_fifo_push_front_reenters_ahead_of_arrivals() {
        // The resume path for preempted work: push_front puts an item
        // ahead of everything queued behind it in its class, while class
        // priority and aging still apply.
        let mut f: ClassFifo<u64> = ClassFifo::new(4);
        f.push_back(Priority::Batch, 1);
        f.push_back(Priority::Batch, 2);
        f.push_front(Priority::Batch, 99);
        f.push_back(Priority::Interactive, 10);
        f.push_front(Priority::Interactive, 9);
        assert_eq!(f.len(), 5);
        assert_eq!(f.depth(Priority::Batch), 3);
        assert_eq!(f.pop(), Some((Priority::Interactive, 9)));
        assert_eq!(f.pop(), Some((Priority::Interactive, 10)));
        assert_eq!(f.pop(), Some((Priority::Batch, 99)));
        assert_eq!(f.pop(), Some((Priority::Batch, 1)));
        assert_eq!(f.pop(), Some((Priority::Batch, 2)));
        assert_eq!(f.pop(), None);
        assert!(f.is_empty());
    }

    #[test]
    fn zero_cost_requests_only_face_depth_limits() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            bucket_capacity: 0,
            refill_per_us: 0.0,
            max_depth: 1,
            ..AdmissionConfig::default()
        });
        q.offer(req(1, Priority::Interactive, 0, 0)).unwrap();
        let (_, error) = *q.offer(req(2, Priority::Interactive, 0, 0)).unwrap_err();
        assert!(matches!(error, ServeError::Overloaded { .. }));
    }
}
